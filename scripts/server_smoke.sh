#!/usr/bin/env bash
# Server smoke gate: boot the real `colarm serve` binary on an ephemeral
# port with two named indexes, run a 3-query drill-down over HTTP against
# a tenant session, and diff every answer's rules against in-process
# execution of the same query (`colarm query --json`). Finishes with a
# SIGTERM and asserts the graceful drain exits 0. Exercises the full
# stack the unit and e2e tests can't: the CLI arg parsing, the snapshot
# load, the worker-pool socket loop, and the signal path of the released
# binary.
#
#   scripts/server_smoke.sh [path/to/colarm]
set -euo pipefail
cd "$(dirname "$0")/.."

COLARM="${1:-target/release/colarm-cli}"
SNAP="tests/fixtures/salary_index_v2.snap"
PORT="$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')"

"$COLARM" serve --index "$SNAP" --index "mirror=$SNAP" \
    --addr "127.0.0.1:$PORT" --workers 2 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$PORT/health" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -sf "http://127.0.0.1:$PORT/health" >/dev/null || {
    echo "server_smoke: server never became healthy" >&2
    exit 1
}

# Table 1 drill-down: Seattle, then Seattle women, then the paper's
# thresholds — each query refines the last, driving the session's
# subset/column reuse path.
QUERIES=(
    "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = (Seattle) HAVING minsupport = 50% AND minconfidence = 50%;"
    "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = (Seattle), Gender = (F) HAVING minsupport = 50% AND minconfidence = 50%;"
    "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = (Seattle), Gender = (F) HAVING minsupport = 75% AND minconfidence = 90%;"
)

curl -sf -X POST -d '{"id": "smoke"}' "http://127.0.0.1:$PORT/sessions" >/dev/null

for query in "${QUERIES[@]}"; do
    body="$(jq -cn --arg text "$query" '{text: $text}')"
    wire="$(curl -sf -X POST -d "$body" "http://127.0.0.1:$PORT/sessions/smoke/query" | jq -cS .rules)"
    local_rules="$("$COLARM" query --index "$SNAP" --json "$query" | jq -cS .rules)"
    if [[ "$wire" != "$local_rules" ]]; then
        echo "server_smoke: wire answer diverged from in-process execution" >&2
        echo "  query: $query" >&2
        echo "  wire:  $wire" >&2
        echo "  local: $local_rules" >&2
        exit 1
    fi
    # The same snapshot served under the named `/indexes/mirror/...`
    # prefix must answer one-shot queries identically.
    mirror="$(curl -sf -X POST -d "$body" "http://127.0.0.1:$PORT/indexes/mirror/query" | jq -cS .rules)"
    if [[ "$mirror" != "$local_rules" ]]; then
        echo "server_smoke: /indexes/mirror/query diverged from in-process" >&2
        echo "  query:  $query" >&2
        echo "  mirror: $mirror" >&2
        echo "  local:  $local_rules" >&2
        exit 1
    fi
done

# The third query must have reused session state derived from earlier
# ones — the point of routing drill-downs through a tenant session.
derived="$(curl -sf "http://127.0.0.1:$PORT/sessions/smoke" | jq '.subsets_derived + .answer_hits + .subset_hits')"
if [[ "$derived" -lt 1 ]]; then
    echo "server_smoke: session showed no reuse across the drill-down" >&2
    exit 1
fi

# Graceful drain: SIGTERM must stop the acceptor, join every transport
# thread, and exit 0 — not die on the signal (which would report 143).
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
trap - EXIT
if [[ "$STATUS" -ne 0 ]]; then
    echo "server_smoke: SIGTERM drain exited $STATUS, expected 0" >&2
    exit 1
fi

echo "server_smoke: 3-query drill-down bit-identical to in-process on both routes, graceful drain exited 0 (reuse events: $derived)"
