#!/usr/bin/env bash
# Tier-1 verification plus lint, as run by CI.
#
#   scripts/ci.sh            # build + test + clippy
#   scripts/ci.sh --bench    # also regenerate BENCH_tidset.json,
#                            # BENCH_snapshot.json + BENCH_engine.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Format stability: the committed v1 golden fixture must keep loading and
# answering Table 1. Redundant with the full test run above, but kept as a
# named gate so a format break is called out explicitly.
echo "==> snapshot format stability (tests/fixtures/salary_index_v1.snap)"
cargo test -q --test snapshot_format golden_fixture_loads_and_answers_table1

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> bench_tidset (kernel microbenchmark)"
    cargo run --release --bin bench_tidset
    echo "==> bench_snapshot (binary vs JSON snapshot)"
    cargo run --release --bin bench_snapshot
    echo "==> bench_engine (operator-engine dispatch overhead)"
    cargo run --release --bin bench_engine
fi

echo "ci: all green"
