#!/usr/bin/env bash
# Tier-1 verification plus lint, as run by CI.
#
#   scripts/ci.sh            # build + test + clippy
#   scripts/ci.sh --bench    # also regenerate BENCH_tidset.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> bench_tidset (kernel microbenchmark)"
    cargo run --release --bin bench_tidset
fi

echo "ci: all green"
