#!/usr/bin/env bash
# Tier-1 verification plus lint, as run by CI.
#
#   scripts/ci.sh            # build + test + clippy + unsafe audit
#   scripts/ci.sh --bench    # also gate on BENCH_tidset.json,
#                            # BENCH_server.json, BENCH_optimizer.json +
#                            # BENCH_coldstart.json thresholds (--check)
#                            # and regenerate BENCH_snapshot.json,
#                            # BENCH_engine.json + BENCH_session.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Format stability: all committed golden fixtures (v1 sparse/dense, v2
# container payloads, v3 statistics catalog, v4 mmap layout) must keep
# loading and answering Table 1 on all six plans. Redundant with the
# full test run above, but kept as a named gate so a format break is
# called out explicitly.
echo "==> snapshot format stability (tests/fixtures/salary_index_v{1,2,3,4}.snap)"
cargo test -q --test snapshot_format golden_fixtures_load_and_answer_table1_on_all_plans

# Concurrent sessions over one shared system must stay bit-identical both
# when the test harness serializes them and when it runs them alongside
# everything else — the worker pool sees both contention shapes.
echo "==> concurrent-session determinism (serialized + default harness)"
RUST_TEST_THREADS=1 cargo test -q --test parallel_determinism \
    concurrent_sessions_share_one_system_deterministically
cargo test -q --test parallel_determinism \
    concurrent_sessions_share_one_system_deterministically

# The persistent pool's park/unpark and handoff paths behave differently
# under optimization; run its unit tests in release too.
echo "==> worker-pool tests (release)"
cargo test --release -q -p colarm-data par::

# The execute*/explain_analyze* matrix is deprecated in favor of the
# unified QueryRequest/QueryOutcome path; nothing in-repo may still call
# it except the forwarder module itself (compat.rs carries the only
# #![allow(deprecated)]).
echo "==> no in-repo callers of the deprecated method matrix (-D deprecated)"
RUSTFLAGS="-D deprecated" cargo check --workspace --all-targets

# Boot the released `colarm serve` binary on an ephemeral port, run a
# 3-query drill-down over HTTP, and diff every answer against in-process
# execution. Covers the CLI + socket loop the in-process tests skip.
echo "==> server smoke (colarm serve vs in-process, scripts/server_smoke.sh)"
scripts/server_smoke.sh

# Unsafe audit: `unsafe` is confined to four audited modules (the worker
# pool's channel internals, the CLI's signal(2) shim, the server's
# poll(2) shim, and the snapshot mmap layer), each of which documents its
# obligations, and every crate root carries #![deny(unsafe_op_in_unsafe_fn)].
# A new `unsafe` block anywhere else fails CI until it is audited and
# added here.
echo "==> unsafe audit (allowlist + unsafe_op_in_unsafe_fn)"
UNSAFE_ALLOWLIST=$'crates/data/src/par.rs\ncrates/cli/src/main.rs\ncrates/colarm/src/server/http.rs\ncrates/colarm/src/persist/mmap.rs'
UNSAFE_FILES=$(grep -rEl "unsafe (fn|impl|extern)|unsafe \{" crates --include="*.rs" | sort)
if [[ "$UNSAFE_FILES" != "$(sort <<<"$UNSAFE_ALLOWLIST")" ]]; then
    echo "unsafe audit FAILED: unsafe code outside the audited allowlist" >&2
    diff <(sort <<<"$UNSAFE_ALLOWLIST") <(echo "$UNSAFE_FILES") >&2 || true
    exit 1
fi
for root in crates/data/src/lib.rs crates/mine/src/lib.rs crates/rtree/src/lib.rs \
            crates/colarm/src/lib.rs crates/bench/src/lib.rs crates/cli/src/main.rs; do
    grep -q 'deny(unsafe_op_in_unsafe_fn)' "$root" \
        || { echo "unsafe audit FAILED: $root lacks #![deny(unsafe_op_in_unsafe_fn)]" >&2; exit 1; }
done

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

if [[ "${1:-}" == "--bench" ]]; then
    # bench_tidset enforces the per-scenario min_speedup thresholds
    # recorded in BENCH_tidset.json and exits nonzero below any of them,
    # so this step is a hard gate, not just a report. --check re-measures
    # without rewriting the committed JSON.
    echo "==> bench_tidset (kernel microbenchmark + threshold gate)"
    cargo run --release -p colarm-bench --bin bench_tidset -- /tmp/bench_tidset_ci.json --check
    echo "==> bench_snapshot (binary vs JSON snapshot)"
    cargo run --release -p colarm-bench --bin bench_snapshot
    echo "==> bench_engine (operator-engine dispatch overhead)"
    cargo run --release -p colarm-bench --bin bench_engine
    echo "==> bench_session (drill-down reuse + persistent pool)"
    cargo run --release -p colarm-bench --bin bench_session
    # bench_server enforces the min_qps / max_p99_ms acceptance floors
    # recorded in BENCH_server.json and exits nonzero below them — a
    # hard gate on the worker-pool transport, same pattern as
    # bench_tidset above.
    echo "==> bench_server (concurrent HTTP drill-down clients + threshold gate)"
    cargo run --release -p colarm-bench --bin bench_server -- /tmp/bench_server_ci.json --check
    # bench_optimizer gates the cost model: catalog-driven prediction
    # accuracy and mispick rate vs the global-average baseline, per the
    # thresholds recorded in BENCH_optimizer.json.
    echo "==> bench_optimizer (cost-model accuracy + mispick threshold gate)"
    cargo run --release -p colarm-bench --bin bench_optimizer -- /tmp/bench_optimizer_ci.json --check
    # bench_coldstart enforces the min_ttfq_speedup floor recorded in
    # BENCH_coldstart.json: time-to-first-query through the lazily
    # validated mmap path must stay ≥10× faster than the owned v3
    # decode at production scale.
    echo "==> bench_coldstart (mmap TTFQ vs owned decode + threshold gate)"
    cargo run --release -p colarm-bench --bin bench_coldstart -- /tmp/bench_coldstart_ci.json --check
fi

echo "ci: all green"
