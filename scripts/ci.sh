#!/usr/bin/env bash
# Tier-1 verification plus lint, as run by CI.
#
#   scripts/ci.sh            # build + test + clippy
#   scripts/ci.sh --bench    # also gate on BENCH_tidset.json,
#                            # BENCH_server.json + BENCH_optimizer.json
#                            # thresholds (--check) and regenerate
#                            # BENCH_snapshot.json, BENCH_engine.json +
#                            # BENCH_session.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Format stability: all committed golden fixtures (v1 sparse/dense, v2
# container payloads, v3 statistics catalog) must keep loading and
# answering Table 1 on all six plans. Redundant with the full test run
# above, but kept as a named gate so a format break is called out
# explicitly.
echo "==> snapshot format stability (tests/fixtures/salary_index_v{1,2,3}.snap)"
cargo test -q --test snapshot_format golden_fixtures_load_and_answer_table1_on_all_plans

# Concurrent sessions over one shared system must stay bit-identical both
# when the test harness serializes them and when it runs them alongside
# everything else — the worker pool sees both contention shapes.
echo "==> concurrent-session determinism (serialized + default harness)"
RUST_TEST_THREADS=1 cargo test -q --test parallel_determinism \
    concurrent_sessions_share_one_system_deterministically
cargo test -q --test parallel_determinism \
    concurrent_sessions_share_one_system_deterministically

# The persistent pool's park/unpark and handoff paths behave differently
# under optimization; run its unit tests in release too.
echo "==> worker-pool tests (release)"
cargo test --release -q -p colarm-data par::

# The execute*/explain_analyze* matrix is deprecated in favor of the
# unified QueryRequest/QueryOutcome path; nothing in-repo may still call
# it except the forwarder module itself (compat.rs carries the only
# #![allow(deprecated)]).
echo "==> no in-repo callers of the deprecated method matrix (-D deprecated)"
RUSTFLAGS="-D deprecated" cargo check --workspace --all-targets

# Boot the released `colarm serve` binary on an ephemeral port, run a
# 3-query drill-down over HTTP, and diff every answer against in-process
# execution. Covers the CLI + socket loop the in-process tests skip.
echo "==> server smoke (colarm serve vs in-process, scripts/server_smoke.sh)"
scripts/server_smoke.sh

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

if [[ "${1:-}" == "--bench" ]]; then
    # bench_tidset enforces the per-scenario min_speedup thresholds
    # recorded in BENCH_tidset.json and exits nonzero below any of them,
    # so this step is a hard gate, not just a report. --check re-measures
    # without rewriting the committed JSON.
    echo "==> bench_tidset (kernel microbenchmark + threshold gate)"
    cargo run --release -p colarm-bench --bin bench_tidset -- /tmp/bench_tidset_ci.json --check
    echo "==> bench_snapshot (binary vs JSON snapshot)"
    cargo run --release -p colarm-bench --bin bench_snapshot
    echo "==> bench_engine (operator-engine dispatch overhead)"
    cargo run --release -p colarm-bench --bin bench_engine
    echo "==> bench_session (drill-down reuse + persistent pool)"
    cargo run --release -p colarm-bench --bin bench_session
    # bench_server enforces the min_qps / max_p99_ms acceptance floors
    # recorded in BENCH_server.json and exits nonzero below them — a
    # hard gate on the worker-pool transport, same pattern as
    # bench_tidset above.
    echo "==> bench_server (concurrent HTTP drill-down clients + threshold gate)"
    cargo run --release -p colarm-bench --bin bench_server -- /tmp/bench_server_ci.json --check
    # bench_optimizer gates the cost model: catalog-driven prediction
    # accuracy and mispick rate vs the global-average baseline, per the
    # thresholds recorded in BENCH_optimizer.json.
    echo "==> bench_optimizer (cost-model accuracy + mispick threshold gate)"
    cargo run --release -p colarm-bench --bin bench_optimizer -- /tmp/bench_optimizer_ci.json --check
fi

echo "ci: all green"
