//! Minimal offline shim of the serde serialization framework.
//!
//! Implements the subset of serde's public API that this repository uses:
//! the `Serialize`/`Deserialize` traits, the visitor-based deserialization
//! data model, `Serializer`/`Deserializer` with seq/map/struct/enum
//! composition, and impls for the std types that appear in the codebase.
//! See `vendor/README.md` for the full story.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
