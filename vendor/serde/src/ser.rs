//! Serialization half of the shim: `Serialize`, `Serializer`, and the
//! compound-type builder traits.

use std::fmt::Display;

/// A serialization error type constructible from a message.
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde format.
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serde output format.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Builder for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Builder for tuples (and arrays).
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Builder for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Builder for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(v as f64)
    }
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error> {
        let _ = name;
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        let _ = name;
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Sequence builder.
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple builder.
pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map builder.
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct builder.
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// --- impls for std types -------------------------------------------------

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident as $cast:ty,)*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        }
    )*};
}

primitive_serialize! {
    bool => serialize_bool as bool,
    i8 => serialize_i8 as i8,
    i16 => serialize_i16 as i16,
    i32 => serialize_i32 as i32,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u8 as u8,
    u16 => serialize_u16 as u16,
    u32 => serialize_u32 as u32,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f32 as f32,
    f64 => serialize_f64 as f64,
    char => serialize_char as char,
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

fn serialize_iter<S: Serializer, T: Serialize>(
    serializer: S,
    len: usize,
    it: impl Iterator<Item = T>,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(len))?;
    for v in it {
        seq.serialize_element(&v)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for v in self {
            tup.serialize_element(v)?;
        }
        tup.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

macro_rules! tuple_serialize {
    ($(($($name:ident . $idx:tt),+) as $len:expr,)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(SerializeTuple::serialize_element(&mut tup, &self.$idx)?;)+
                tup.end()
            }
        }
    )*};
}

tuple_serialize! {
    (A.0) as 1,
    (A.0, B.1) as 2,
    (A.0, B.1, C.2) as 3,
    (A.0, B.1, C.2, D.3) as 4,
    (A.0, B.1, C.2, D.3, E.4) as 5,
    (A.0, B.1, C.2, D.3, E.4, F.5) as 6,
}

/// Matches serde's std impl: a `Duration` serializes as a struct with
/// `secs` and `nanos` fields.
impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Duration", 2)?;
        st.serialize_field("secs", &self.as_secs())?;
        st.serialize_field("nanos", &self.subsec_nanos())?;
        st.end()
    }
}
