//! Deserialization half of the shim: `Deserialize`, `Deserializer`, the
//! visitor data model, and seq/map/enum access traits.

use std::fmt::{self, Display};

/// A deserialization error type constructible from a message.
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// An enum variant name was not recognized.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A value had the wrong type for the visitor.
    fn invalid_type(unexpected: &str, expected: &dyn Expected) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {expected}"
        ))
    }
}

/// Object-safe view of a visitor's `expecting` message.
pub trait Expected {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, T: Visitor<'de>> Expected for T {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, f)
    }
}

/// A data structure deserializable from any serde format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A serde input format. Formats in this shim are self-describing, so every
/// hinted method defaults to `deserialize_any`.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        let _ = len;
        self.deserialize_any(visitor)
    }
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        let _ = (name, fields);
        self.deserialize_any(visitor)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        let _ = name;
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        let _ = (name, variants);
        self.deserialize_any(visitor)
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
}

macro_rules! visit_default {
    ($($method:ident => $ty:ty as $unexpected:expr,)*) => {$(
        fn $method<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::invalid_type($unexpected, &self))
        }
    )*};
}

/// Drives deserialization: the format calls back into the visitor with
/// whatever shape the input holds.
pub trait Visitor<'de>: Sized {
    type Value;

    /// What this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visit_default! {
        visit_bool => bool as "a boolean",
        visit_i64 => i64 as "an integer",
        visit_f64 => f64 as "a float",
        visit_char => char as "a character",
    }

    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        if v <= i64::MAX as u64 {
            self.visit_i64(v as i64)
        } else {
            Err(Error::invalid_type("an integer", &self))
        }
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::invalid_type("a string", &self))
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::invalid_type("a unit", &self))
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::invalid_type("an option", &self))
    }

    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("an option", &self))
    }

    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("a newtype struct", &self))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::invalid_type("a sequence", &self))
    }

    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::invalid_type("a map", &self))
    }

    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::invalid_type("an enum", &self))
    }
}

/// Access to the elements of a sequence being deserialized.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map being deserialized.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>;
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>;

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error>;
}

/// Access to the payload of an enum variant being deserialized.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error>;
}

/// Accepts and discards any value — used to skip unknown struct fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoredAny;

impl<'de> Visitor<'de> for IgnoredAny {
    type Value = IgnoredAny;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("anything")
    }

    fn visit_bool<E: Error>(self, _: bool) -> Result<Self::Value, E> {
        Ok(IgnoredAny)
    }
    fn visit_i64<E: Error>(self, _: i64) -> Result<Self::Value, E> {
        Ok(IgnoredAny)
    }
    fn visit_u64<E: Error>(self, _: u64) -> Result<Self::Value, E> {
        Ok(IgnoredAny)
    }
    fn visit_f64<E: Error>(self, _: f64) -> Result<Self::Value, E> {
        Ok(IgnoredAny)
    }
    fn visit_char<E: Error>(self, _: char) -> Result<Self::Value, E> {
        Ok(IgnoredAny)
    }
    fn visit_str<E: Error>(self, _: &str) -> Result<Self::Value, E> {
        Ok(IgnoredAny)
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Ok(IgnoredAny)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Ok(IgnoredAny)
    }
    fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Self::Value, D::Error> {
        d.deserialize_ignored_any(IgnoredAny)
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(self, d: D) -> Result<Self::Value, D::Error> {
        d.deserialize_ignored_any(IgnoredAny)
    }
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
        while seq.next_element::<IgnoredAny>()?.is_some() {}
        Ok(IgnoredAny)
    }
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
        while map.next_entry::<IgnoredAny, IgnoredAny>()?.is_some() {}
        Ok(IgnoredAny)
    }
}

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
}

// --- impls for std types -------------------------------------------------

struct BoolVisitor;
impl<'de> Visitor<'de> for BoolVisitor {
    type Value = bool;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a boolean")
    }
    fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
        Ok(v)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bool(BoolVisitor)
    }
}

macro_rules! int_deserialize {
    ($($ty:ident),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(concat!("a ", stringify!($ty)))
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                "integer {v} out of range for {}", stringify!($ty)
                            ))
                        })
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                "integer {v} out of range for {}", stringify!($ty)
                            ))
                        })
                    }
                }
                deserializer.deserialize_u64(V)
            }
        }
    )*};
}

int_deserialize!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_deserialize {
    ($($ty:ident),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a float")
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                }
                deserializer.deserialize_f64(V)
            }
        }
    )*};
}

float_deserialize!(f32, f64);

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a character")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single character")),
                }
            }
        }
        deserializer.deserialize_char(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Self::Value, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(V(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(v) = seq.next_element()? {
                    out.push(v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into_iter().collect())
    }
}

impl<'de, T> Deserialize<'de> for std::collections::HashSet<T>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into_iter().collect())
    }
}

fn deserialize_map_entries<'de, D, K, V>(deserializer: D) -> Result<Vec<(K, V)>, D::Error>
where
    D: Deserializer<'de>,
    K: Deserialize<'de>,
    V: Deserialize<'de>,
{
    struct Vis<K, V>(std::marker::PhantomData<(K, V)>);
    impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
        type Value = Vec<(K, V)>;
        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("a map")
        }
        fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
            let mut out = Vec::with_capacity(map.size_hint().unwrap_or(0));
            while let Some(entry) = map.next_entry()? {
                out.push(entry);
            }
            Ok(out)
        }
    }
    deserializer.deserialize_map(Vis(std::marker::PhantomData))
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(deserialize_map_entries(deserializer)?.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(deserialize_map_entries(deserializer)?.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Vec::into_boxed_slice)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                while out.len() < N {
                    match seq.next_element()? {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                out.try_into()
                    .map_err(|_| A::Error::custom(format!("expected an array of length {N}")))
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::rc::Rc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

macro_rules! tuple_deserialize {
    ($(($($name:ident),+) as $len:expr,)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                struct V<$($name),+>(std::marker::PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<__A: SeqAccess<'de>>(
                        self,
                        mut seq: __A,
                    ) -> Result<Self::Value, __A::Error> {
                        $(
                            let $name = seq
                                .next_element()?
                                .ok_or_else(|| Error::custom("tuple too short"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(std::marker::PhantomData))
            }
        }
    )*};
}

tuple_deserialize! {
    (TA) as 1,
    (TA, TB) as 2,
    (TA, TB, TC) as 3,
    (TA, TB, TC, TD) as 4,
}

/// Matches serde's std impl: a `Duration` deserializes from a struct with
/// `secs` and `nanos` fields.
impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = std::time::Duration;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Duration")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let (mut secs, mut nanos) = (None::<u64>, None::<u32>);
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "secs" => secs = Some(map.next_value()?),
                        "nanos" => nanos = Some(map.next_value()?),
                        _ => {
                            map.next_value::<IgnoredAny>()?;
                        }
                    }
                }
                Ok(std::time::Duration::new(
                    secs.ok_or_else(|| Error::missing_field("secs"))?,
                    nanos.ok_or_else(|| Error::missing_field("nanos"))?,
                ))
            }
        }
        deserializer.deserialize_struct("Duration", &["secs", "nanos"], V)
    }
}
