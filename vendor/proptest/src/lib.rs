//! Minimal offline shim of `proptest`: the `proptest!` macro, `prop_assert*`
//! assertions, and range/tuple/`collection::vec` strategies over a
//! deterministic per-test RNG.
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! the full `Debug` rendering of its inputs), and the value stream is a
//! different (still deterministic) sequence, so case N here is not case N
//! under real proptest. Tests in this repository only rely on the sampled
//! coverage, not on specific sampled values.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic value source handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn for_test(name: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        TestRng { state: hasher.finish() ^ 0x5851_F42D_4C95_7F2D }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Produces values of one shape for the test runner.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
}

/// Always produces the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element count for `vec`: a fixed length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property test: repeatedly samples the strategy and applies the
/// body until `config.cases` cases pass, a case fails (panic with inputs),
/// or the rejection budget (20× cases) is exhausted.
pub fn run_cases<S: Strategy>(
    config: ProptestConfig,
    strategy: S,
    test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    name: &str,
) {
    let mut rng = TestRng::for_test(name);
    let cases = config.cases.max(1);
    let max_attempts = cases.saturating_mul(20);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    while passed < cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest shim: {name} rejected too many cases ({passed}/{cases} passed \
             after {max_attempts} attempts)"
        );
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest case failed: {msg}\n  test: {name} (case {attempts})\n  input: {rendered}"
            ),
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                __config,
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
                stringify!($name),
            );
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                __left,
                __right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
    pub use crate::Just;
}

#[cfg(test)]
mod tests {
    proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..17, y in -4i64..4, v in crate::collection::vec(0u8..3, 0..9)) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn tuples_and_fixed_len(pair in (0u16..10, 3usize..5), v in crate::collection::vec(0u32..2, 3)) {
            prop_assert!(pair.0 < 10);
            prop_assert!((3..5).contains(&pair.1));
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_case_panics_with_input() {
        crate::run_cases(
            crate::ProptestConfig::with_cases(8),
            (0u32..4,),
            |(x,)| {
                crate::prop_assert!(x < 2, "x was {}", x);
                Ok(())
            },
            "failing_case_panics_with_input",
        );
    }
}
