//! Minimal offline shim of `rand 0.8`.
//!
//! Deterministic per seed, but the stream differs from the real crate's
//! ChaCha-based `StdRng`; nothing committed in this repository depends on
//! the exact stream (see `vendor/README.md`).

use std::ops::{Range, RangeInclusive};

/// Core randomness source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore>(rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased-enough multiply-shift; bias is at
                // most span / 2^64, far below anything observable here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == 0 && end == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $ty
            }
        }
    )*};
}

sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($ty:ty as $unsigned:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $ty
            }
        }
    )*};
}

sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Random helpers on slices.
pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = rng.gen_range(0..self.len());
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit PRNG (xorshift-multiply over a SplitMix64-
    /// initialized state — the stream differs from real rand's ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state = state.rotate_left(17) ^ u64::from_le_bytes(bytes);
            }
            StdRng { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            // One scramble round so nearby seeds land far apart.
            let mut s = state ^ 0xA076_1D64_78BD_642F;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} looks biased");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
