//! Minimal offline shim of `serde_json`: a `Value` tree, a recursive-descent
//! parser, compact/pretty writers, the `json!` macro, and `Serializer` /
//! `Deserializer` bridges into the vendored `serde` shim.
//!
//! Matches real serde_json behavior where this repository can observe it:
//! objects are sorted-key maps (serde_json's default `Map` is a `BTreeMap`),
//! integer map keys serialize as strings and parse back through typed key
//! deserialization, unit enum variants are plain strings, newtype variants
//! are one-entry objects, and non-finite floats serialize as `null`.

use serde::de::{
    self, Deserialize, DeserializeOwned, Deserializer, EnumAccess, MapAccess, SeqAccess,
    VariantAccess, Visitor,
};
use serde::ser::{
    self, Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeTuple, Serializer,
};
use std::collections::BTreeMap;
use std::fmt;

/// Object representation; sorted keys, like serde_json's default `Map`.
pub type Map<K, V> = BTreeMap<K, V>;

/// Any JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

/// A JSON number: unsigned, signed, or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(v) => Some(v),
            N::I(v) => u64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(v) => i64::try_from(v).ok(),
            N::I(v) => Some(v),
            N::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::U(v) => Some(v as f64),
            N::I(v) => Some(v as f64),
            N::F(v) => Some(v),
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number(N::U(v))
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Number(N::U(v as u64))
        } else {
            Number(N::I(v))
        }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number(N::F(v))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(v) => write!(f, "{v}"),
            N::I(v) => write!(f, "{v}"),
            N::F(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}

// --- error ---------------------------------------------------------------

/// Parse or data-model mismatch error.
pub struct Error(String);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// --- public entry points -------------------------------------------------

/// Serialize any value into a `Value` tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_compact(&mut out, &v);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_pretty(&mut out, &v, 0);
    Ok(out)
}

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize(value)
}

/// Deserialize any type from an already-parsed `Value`.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Build a `Value` from a literal object/array shape or any serializable
/// expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $( __map.insert(($key).to_string(), $crate::json!($value)); )*
        $crate::Value::Object(__map)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($value) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

// --- writers -------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n.0 {
        N::F(f) if !f.is_finite() => out.push_str("null"),
        _ => out.push_str(&n.to_string()),
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(out: &mut String, v: &Value, level: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_pretty(out, item, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

// --- parser --------------------------------------------------------------

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((hi as u32 - 0xD800) << 10)
                                    + (lo as u32).wrapping_sub(0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input was a &str, so this is safe
                    // to do bytewise by finding the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::U(v))));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number(N::I(v))));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number(N::F(v))))
            .map_err(|_| self.err("invalid number"))
    }
}

// --- Serialize / Deserialize for Value itself ----------------------------

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(n) => match n.0 {
                N::U(v) => serializer.serialize_u64(v),
                N::I(v) => serializer.serialize_i64(v),
                N::F(v) => serializer.serialize_f64(v),
            },
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = Value;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("any JSON value")
            }
            fn visit_bool<E: de::Error>(self, v: bool) -> Result<Value, E> {
                Ok(Value::Bool(v))
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<Value, E> {
                Ok(Value::Number(Number::from(v)))
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<Value, E> {
                Ok(Value::Number(Number::from(v)))
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<Value, E> {
                Ok(Value::Number(Number::from(v)))
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<Value, E> {
                Ok(Value::String(v.to_owned()))
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<Value, E> {
                Ok(Value::String(v))
            }
            fn visit_unit<E: de::Error>(self) -> Result<Value, E> {
                Ok(Value::Null)
            }
            fn visit_none<E: de::Error>(self) -> Result<Value, E> {
                Ok(Value::Null)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Value, D::Error> {
                Value::deserialize(d)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Value, A::Error> {
                let mut items = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(v) = seq.next_element()? {
                    items.push(v);
                }
                Ok(Value::Array(items))
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Value, A::Error> {
                let mut entries = Map::new();
                while let Some((k, v)) = map.next_entry::<String, Value>()? {
                    entries.insert(k, v);
                }
                Ok(Value::Object(entries))
            }
        }
        deserializer.deserialize_any(V)
    }
}

// --- Serializer producing Value ------------------------------------------

struct ValueSerializer;

/// Unconstructible compound type for serializers that reject composites.
enum Impossible {}

impl SerializeSeq for Impossible {
    type Ok = String;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, _: &T) -> Result<(), Error> {
        match *self {}
    }
    fn end(self) -> Result<String, Error> {
        match self {}
    }
}

impl SerializeTuple for Impossible {
    type Ok = String;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, _: &T) -> Result<(), Error> {
        match *self {}
    }
    fn end(self) -> Result<String, Error> {
        match self {}
    }
}

impl SerializeMap for Impossible {
    type Ok = String;
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, _: &T) -> Result<(), Error> {
        match *self {}
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, _: &T) -> Result<(), Error> {
        match *self {}
    }
    fn end(self) -> Result<String, Error> {
        match self {}
    }
}

impl SerializeStruct for Impossible {
    type Ok = String;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _: &'static str,
        _: &T,
    ) -> Result<(), Error> {
        match *self {}
    }
    fn end(self) -> Result<String, Error> {
        match self {}
    }
}

struct SeqValueSerializer {
    items: Vec<Value>,
}

impl SerializeSeq for SeqValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(to_value(value)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

impl SerializeTuple for SeqValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(to_value(value)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

struct MapValueSerializer {
    entries: Map<String, Value>,
    next_key: Option<String>,
}

impl SerializeMap for MapValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        self.next_key = Some(key.serialize(KeySerializer)?);
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        let key = self
            .next_key
            .take()
            .ok_or_else(|| Error("serialize_value called before serialize_key".into()))?;
        self.entries.insert(key, to_value(value)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.entries))
    }
}

impl SerializeStruct for MapValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries.insert(key.to_owned(), to_value(value)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.entries))
    }
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqValueSerializer;
    type SerializeTuple = SeqValueSerializer;
    type SerializeMap = MapValueSerializer;
    type SerializeStruct = MapValueSerializer;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(Number::from(v)))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::from(v)))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Number(Number::from(v)))
    }
    fn serialize_char(self, v: char) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_owned()))
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        let mut entries = Map::new();
        entries.insert(variant.to_owned(), to_value(value)?);
        Ok(Value::Object(entries))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqValueSerializer, Error> {
        Ok(SeqValueSerializer { items: Vec::with_capacity(len.unwrap_or(0)) })
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqValueSerializer, Error> {
        Ok(SeqValueSerializer { items: Vec::with_capacity(len) })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<MapValueSerializer, Error> {
        Ok(MapValueSerializer { entries: Map::new(), next_key: None })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<MapValueSerializer, Error> {
        Ok(MapValueSerializer { entries: Map::new(), next_key: None })
    }
}

/// Serializes map keys: strings pass through, integers and bools become
/// strings (matching serde_json), everything else errors.
struct KeySerializer;

impl Serializer for KeySerializer {
    type Ok = String;
    type Error = Error;
    type SerializeSeq = Impossible;
    type SerializeTuple = Impossible;
    type SerializeMap = Impossible;
    type SerializeStruct = Impossible;

    fn serialize_bool(self, v: bool) -> Result<String, Error> {
        Ok(v.to_string())
    }
    fn serialize_i64(self, v: i64) -> Result<String, Error> {
        Ok(v.to_string())
    }
    fn serialize_u64(self, v: u64) -> Result<String, Error> {
        Ok(v.to_string())
    }
    fn serialize_f64(self, _v: f64) -> Result<String, Error> {
        Err(Error("float JSON map keys are not supported".into()))
    }
    fn serialize_char(self, v: char) -> Result<String, Error> {
        Ok(v.to_string())
    }
    fn serialize_str(self, v: &str) -> Result<String, Error> {
        Ok(v.to_owned())
    }
    fn serialize_none(self) -> Result<String, Error> {
        Err(Error("null JSON map keys are not supported".into()))
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<String, Error> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<String, Error> {
        Err(Error("unit JSON map keys are not supported".into()))
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<String, Error> {
        Ok(variant.to_owned())
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<String, Error> {
        Err(Error("newtype-variant JSON map keys are not supported".into()))
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Impossible, Error> {
        Err(Error("sequence JSON map keys are not supported".into()))
    }
    fn serialize_tuple(self, _len: usize) -> Result<Impossible, Error> {
        Err(Error("tuple JSON map keys are not supported".into()))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Impossible, Error> {
        Err(Error("map JSON map keys are not supported".into()))
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Impossible, Error> {
        Err(Error("struct JSON map keys are not supported".into()))
    }
}

// --- Deserializer over Value ---------------------------------------------

impl<'de> Deserializer<'de> for Value {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(n) => match n.0 {
                N::U(v) => visitor.visit_u64(v),
                N::I(v) => visitor.visit_i64(v),
                N::F(v) => visitor.visit_f64(v),
            },
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqValueAccess {
                len: items.len(),
                iter: items.into_iter(),
            }),
            Value::Object(entries) => visitor.visit_map(MapValueAccess {
                len: entries.len(),
                iter: entries.into_iter(),
                value: None,
            }),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(other),
        }
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self {
            Value::String(tag) => visitor.visit_enum(EnumValueAccess { tag, payload: None }),
            Value::Object(entries) => {
                let mut iter = entries.into_iter();
                let (tag, payload) = iter
                    .next()
                    .ok_or_else(|| Error("expected enum object with one entry".into()))?;
                if iter.next().is_some() {
                    return Err(Error("expected enum object with exactly one entry".into()));
                }
                visitor.visit_enum(EnumValueAccess { tag, payload: Some(payload) })
            }
            _ => Err(Error("expected string or object for enum".into())),
        }
    }
}

struct SeqValueAccess {
    len: usize,
    iter: std::vec::IntoIter<Value>,
}

impl<'de> SeqAccess<'de> for SeqValueAccess {
    type Error = Error;
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.iter.next() {
            Some(v) => T::deserialize(v).map(Some),
            None => Ok(None),
        }
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.len)
    }
}

struct MapValueAccess {
    len: usize,
    iter: std::collections::btree_map::IntoIter<String, Value>,
    value: Option<Value>,
}

impl<'de> MapAccess<'de> for MapValueAccess {
    type Error = Error;
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Error> {
        match self.iter.next() {
            Some((k, v)) => {
                self.value = Some(v);
                K::deserialize(MapKeyDeserializer(k)).map(Some)
            }
            None => Ok(None),
        }
    }
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Error> {
        let value = self
            .value
            .take()
            .ok_or_else(|| Error("next_value called before next_key".into()))?;
        V::deserialize(value)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.len)
    }
}

/// Deserializes a typed map key out of its JSON string form: numeric key
/// types parse the string back to a number (serde_json's behavior for
/// integer-keyed maps).
struct MapKeyDeserializer(String);

impl<'de> Deserializer<'de> for MapKeyDeserializer {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_string(self.0)
    }

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        if let Ok(v) = self.0.parse::<u64>() {
            return visitor.visit_u64(v);
        }
        if let Ok(v) = self.0.parse::<i64>() {
            return visitor.visit_i64(v);
        }
        Err(Error(format!("invalid numeric map key `{}`", self.0)))
    }

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_u64(visitor)
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0.parse::<f64>() {
            Ok(v) => visitor.visit_f64(v),
            Err(_) => Err(Error(format!("invalid float map key `{}`", self.0))),
        }
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0.as_str() {
            "true" => visitor.visit_bool(true),
            "false" => visitor.visit_bool(false),
            _ => Err(Error(format!("invalid bool map key `{}`", self.0))),
        }
    }
}

struct EnumValueAccess {
    tag: String,
    payload: Option<Value>,
}

impl<'de> EnumAccess<'de> for EnumValueAccess {
    type Error = Error;
    type Variant = VariantValueAccess;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, VariantValueAccess), Error> {
        let tag = V::deserialize(Value::String(self.tag))?;
        Ok((tag, VariantValueAccess { payload: self.payload }))
    }
}

struct VariantValueAccess {
    payload: Option<Value>,
}

impl<'de> VariantAccess<'de> for VariantValueAccess {
    type Error = Error;

    fn unit_variant(self) -> Result<(), Error> {
        match self.payload {
            None | Some(Value::Null) => Ok(()),
            Some(_) => Err(Error("unexpected payload for unit enum variant".into())),
        }
    }

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Error> {
        let payload = self
            .payload
            .ok_or_else(|| Error("missing payload for newtype enum variant".into()))?;
        T::deserialize(payload)
    }
}
