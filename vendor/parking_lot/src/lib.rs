//! Minimal offline shim of `parking_lot`: `Mutex` and `RwLock` façades over
//! `std::sync` with parking_lot's poison-free API (`lock()` returns the
//! guard directly; a poisoned std lock is treated as still usable, matching
//! parking_lot's behavior of not tracking poisoning at all).

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
