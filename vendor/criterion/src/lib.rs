//! Minimal offline shim of the criterion bench harness: runs each benchmark
//! closure for the configured warm-up and measurement windows and prints the
//! median per-iteration time. No statistics, baselines, or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &name.into(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates the per-iteration cost so the measurement
        // loop can batch fast routines.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / batch as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        warm_up_time,
        measurement_time,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{name}: no samples (closure never called iter)");
        return;
    }
    bencher
        .samples_ns
        .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let median = bencher.samples_ns[bencher.samples_ns.len() / 2];
    println!("{name}: median {}", format_ns(median));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
