//! Minimal offline shim of serde's derive macros.
//!
//! Parses the item declaration by walking the raw token stream (no `syn`)
//! and emits the impl as formatted source text parsed back into a
//! `TokenStream`. Supports exactly the shapes this repository uses: named
//! structs, one-field newtype structs, enums with unit or newtype variants,
//! plain type-parameter generics, and the `#[serde(try_from = "..")]` /
//! `#[serde(into = "..")]` container attributes. Anything else panics with
//! a descriptive message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

struct Item {
    name: String,
    /// Type-parameter idents, in declaration order.
    params: Vec<String>,
    shape: Shape,
    try_from: Option<String>,
    into: Option<String>,
}

enum Shape {
    /// Named-field struct; the field names in declaration order.
    Struct(Vec<String>),
    /// One-field tuple struct.
    Newtype,
    /// Enum; `(variant name, has newtype payload)` in declaration order.
    Enum(Vec<(String, bool)>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand(gen_serialize(&item))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand(gen_deserialize(&item))
}

fn expand(source: String) -> TokenStream {
    TokenStream::from_str(&source)
        .unwrap_or_else(|e| panic!("serde_derive shim: generated code failed to parse: {e}\n{source}"))
}

// --- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut try_from = None;
    let mut into = None;

    while is_punct(tokens.get(i), '#') {
        match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) => parse_attr(g.stream(), &mut try_from, &mut into),
            other => panic!("serde_derive shim: expected attribute body, got {other:?}"),
        }
        i += 2;
    }

    if is_ident(tokens.get(i), "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kw = expect_ident(tokens.get(i));
    i += 1;
    if kw != "struct" && kw != "enum" {
        panic!("serde_derive shim: expected `struct` or `enum`, found `{kw}`");
    }
    let name = expect_ident(tokens.get(i));
    i += 1;

    let mut params = Vec::new();
    if is_punct(tokens.get(i), '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => expect_param = true,
                    '\'' => panic!("serde_derive shim: lifetime generics are not supported"),
                    _ => {}
                },
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if depth == 1 && expect_param {
                        if s == "const" {
                            panic!("serde_derive shim: const generics are not supported");
                        }
                        params.push(s);
                        expect_param = false;
                    }
                }
                Some(_) => {}
                None => panic!("serde_derive shim: unterminated generic parameter list"),
            }
            i += 1;
        }
    }

    if is_ident(tokens.get(i), "where") {
        panic!("serde_derive shim: where-clauses are not supported");
    }

    let shape = match (kw.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Struct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = count_tuple_fields(g.stream());
            if fields != 1 {
                panic!(
                    "serde_derive shim: tuple struct `{name}` has {fields} fields; \
                     only one-field newtype structs are supported"
                );
            }
            Shape::Newtype
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream(), &name))
        }
        _ => panic!("serde_derive shim: unsupported body for `{name}`"),
    };

    Item { name, params, shape, try_from, into }
}

fn parse_attr(stream: TokenStream, try_from: &mut Option<String>, into: &mut Option<String>) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if !is_ident(tokens.first(), "serde") {
        return; // #[doc], #[cfg], #[repr], ... — not ours.
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde_derive shim: malformed #[serde] attribute: {other:?}"),
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        let key = expect_ident(inner.get(i));
        if !is_punct(inner.get(i + 1), '=') {
            panic!("serde_derive shim: unsupported serde attribute `{key}`");
        }
        let value = match inner.get(i + 2) {
            Some(TokenTree::Literal(lit)) => unquote(&lit.to_string()),
            other => panic!("serde_derive shim: expected string value for `{key}`, got {other:?}"),
        };
        match key.as_str() {
            "try_from" => *try_from = Some(value),
            "into" => *into = Some(value),
            _ => panic!("serde_derive shim: unsupported serde attribute `{key}`"),
        }
        i += 3;
        if is_punct(inner.get(i), ',') {
            i += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while is_punct(tokens.get(i), '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        if is_ident(tokens.get(i), "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        fields.push(expect_ident(tokens.get(i)));
        i += 1;
        if !is_punct(tokens.get(i), ':') {
            panic!("serde_derive shim: expected `:` after field `{}`", fields.last().unwrap());
        }
        i += 1;
        // Skip the type: everything up to a comma outside angle brackets.
        // Parens/brackets/braces arrive as single Group tokens, so only
        // `<`/`>` need depth tracking.
        let mut depth = 0usize;
        while i < tokens.len() {
            if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut depth = 0usize;
    let mut trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        fields += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    fields
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while is_punct(tokens.get(i), '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens.get(i));
        i += 1;
        let payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                true
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => panic!(
                "serde_derive shim: struct variant `{enum_name}::{name}` is not supported"
            ),
            _ => false,
        };
        if is_punct(tokens.get(i), '=') {
            panic!("serde_derive shim: explicit discriminants are not supported");
        }
        variants.push((name, payload));
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
    }
    variants
}

fn is_punct(tok: Option<&TokenTree>, ch: char) -> bool {
    matches!(tok, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn is_ident(tok: Option<&TokenTree>, name: &str) -> bool {
    matches!(tok, Some(TokenTree::Ident(id)) if id.to_string() == name)
}

fn expect_ident(tok: Option<&TokenTree>) -> String {
    match tok {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected identifier, got {other:?}"),
    }
}

fn unquote(lit: &str) -> String {
    lit.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde_derive shim: expected string literal, got {lit}"))
        .to_owned()
}

// --- codegen helpers -----------------------------------------------------

/// `impl<T: serde::Serialize> serde::Serialize for Name<T>` pieces:
/// returns `(impl_generics, type_generics)`.
fn ser_generics(params: &[String]) -> (String, String) {
    if params.is_empty() {
        (String::new(), String::new())
    } else {
        let bounds: Vec<String> = params.iter().map(|p| format!("{p}: serde::Serialize")).collect();
        (format!("<{}>", bounds.join(", ")), format!("<{}>", params.join(", ")))
    }
}

/// Deserialize pieces: `(impl_generics, type_generics)` where impl generics
/// always lead with the `'de` lifetime.
fn de_generics(params: &[String]) -> (String, String) {
    if params.is_empty() {
        ("<'de>".to_owned(), String::new())
    } else {
        let bounds: Vec<String> =
            params.iter().map(|p| format!("{p}: serde::Deserialize<'de>")).collect();
        (
            format!("<'de, {}>", bounds.join(", ")),
            format!("<{}>", params.join(", ")),
        )
    }
}

// --- Serialize -----------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let (impl_generics, ty_generics) = ser_generics(&item.params);

    if let Some(proxy) = &item.into {
        if !item.params.is_empty() {
            panic!("serde_derive shim: #[serde(into)] on generic types is not supported");
        }
        return format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, serializer: __S) \
                     -> std::result::Result<__S::Ok, __S::Error> {{\n\
                     let __proxy: {proxy} = std::convert::Into::into(std::clone::Clone::clone(self));\n\
                     serde::Serialize::serialize(&__proxy, serializer)\n\
                 }}\n\
             }}\n"
        );
    }

    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut b = format!(
                "let mut __state = serde::Serializer::serialize_struct(serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                b.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                ));
            }
            b.push_str("serde::ser::SerializeStruct::end(__state)\n");
            b
        }
        Shape::Newtype => format!(
            "serde::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)\n"
        ),
        Shape::Enum(variants) => {
            let mut b = String::from("match self {\n");
            for (idx, (variant, payload)) in variants.iter().enumerate() {
                if *payload {
                    b.push_str(&format!(
                        "{name}::{variant}(__v) => serde::Serializer::serialize_newtype_variant(\
                             serializer, \"{name}\", {idx}u32, \"{variant}\", __v),\n"
                    ));
                } else {
                    b.push_str(&format!(
                        "{name}::{variant} => serde::Serializer::serialize_unit_variant(\
                             serializer, \"{name}\", {idx}u32, \"{variant}\"),\n"
                    ));
                }
            }
            b.push_str("}\n");
            b
        }
    };

    format!(
        "impl{impl_generics} serde::Serialize for {name}{ty_generics} {{\n\
             fn serialize<__S: serde::Serializer>(&self, serializer: __S) \
                 -> std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\
             }}\n\
         }}\n"
    )
}

// --- Deserialize ---------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let (impl_generics, ty_generics) = de_generics(&item.params);

    if let Some(proxy) = &item.try_from {
        if !item.params.is_empty() {
            panic!("serde_derive shim: #[serde(try_from)] on generic types is not supported");
        }
        return format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(deserializer: __D) \
                     -> std::result::Result<Self, __D::Error> {{\n\
                     let __proxy: {proxy} = serde::Deserialize::deserialize(deserializer)?;\n\
                     std::convert::TryFrom::try_from(__proxy)\
                         .map_err(<__D::Error as serde::de::Error>::custom)\n\
                 }}\n\
             }}\n"
        );
    }

    match &item.shape {
        Shape::Newtype => format!(
            "impl{impl_generics} serde::Deserialize<'de> for {name}{ty_generics} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(deserializer: __D) \
                     -> std::result::Result<Self, __D::Error> {{\n\
                     std::result::Result::Ok({name}(serde::Deserialize::deserialize(deserializer)?))\n\
                 }}\n\
             }}\n"
        ),
        Shape::Struct(fields) => gen_deserialize_struct(item, fields, &impl_generics, &ty_generics),
        Shape::Enum(variants) => gen_deserialize_enum(item, variants, &impl_generics, &ty_generics),
    }
}

/// Visitor declaration + instantiation expressions, generic-aware.
fn visitor_decl(params: &[String]) -> (String, String) {
    if params.is_empty() {
        ("struct __Visitor;".to_owned(), "__Visitor".to_owned())
    } else {
        let tuple = format!("({},)", params.join(", "));
        (
            format!("struct __Visitor<{}>(std::marker::PhantomData<{tuple}>);", params.join(", ")),
            "__Visitor(std::marker::PhantomData)".to_owned(),
        )
    }
}

fn gen_deserialize_struct(
    item: &Item,
    fields: &[String],
    impl_generics: &str,
    ty_generics: &str,
) -> String {
    let name = &item.name;
    let (visitor_struct, visitor_expr) = visitor_decl(&item.params);
    let field_list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
    let field_list = field_list.join(", ");

    let mut slots = String::new();
    let mut arms = String::new();
    let mut build = String::new();
    for f in fields {
        slots.push_str(&format!("let mut __field_{f} = std::option::Option::None;\n"));
        arms.push_str(&format!(
            "\"{f}\" => {{ __field_{f} = std::option::Option::Some(\
                 <__A as serde::de::MapAccess<'de>>::next_value(&mut __map)?); }}\n"
        ));
        build.push_str(&format!(
            "{f}: __field_{f}.ok_or_else(|| \
                 <__A::Error as serde::de::Error>::missing_field(\"{f}\"))?,\n"
        ));
    }

    format!(
        "impl{impl_generics} serde::Deserialize<'de> for {name}{ty_generics} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(deserializer: __D) \
                 -> std::result::Result<Self, __D::Error> {{\n\
                 {visitor_struct}\n\
                 impl{impl_generics} serde::de::Visitor<'de> for __Visitor{ty_generics} {{\n\
                     type Value = {name}{ty_generics};\n\
                     fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                         __f.write_str(\"struct {name}\")\n\
                     }}\n\
                     fn visit_map<__A: serde::de::MapAccess<'de>>(self, mut __map: __A) \
                         -> std::result::Result<Self::Value, __A::Error> {{\n\
                         {slots}\
                         while let std::option::Option::Some(__key) = \
                             <__A as serde::de::MapAccess<'de>>::next_key::<std::string::String>(&mut __map)? {{\n\
                             match __key.as_str() {{\n\
                                 {arms}\
                                 _ => {{ <__A as serde::de::MapAccess<'de>>\
                                     ::next_value::<serde::de::IgnoredAny>(&mut __map)?; }}\n\
                             }}\n\
                         }}\n\
                         std::result::Result::Ok({name} {{\n\
                             {build}\
                         }})\n\
                     }}\n\
                 }}\n\
                 serde::Deserializer::deserialize_struct(\
                     deserializer, \"{name}\", &[{field_list}], {visitor_expr})\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize_enum(
    item: &Item,
    variants: &[(String, bool)],
    impl_generics: &str,
    ty_generics: &str,
) -> String {
    let name = &item.name;
    let (visitor_struct, visitor_expr) = visitor_decl(&item.params);
    let variant_list: Vec<String> = variants.iter().map(|(v, _)| format!("\"{v}\"")).collect();
    let variant_list = variant_list.join(", ");

    let mut arms = String::new();
    for (variant, payload) in variants {
        if *payload {
            arms.push_str(&format!(
                "\"{variant}\" => std::result::Result::Ok({name}::{variant}(\
                     serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
            ));
        } else {
            arms.push_str(&format!(
                "\"{variant}\" => {{ serde::de::VariantAccess::unit_variant(__variant)?; \
                     std::result::Result::Ok({name}::{variant}) }}\n"
            ));
        }
    }

    format!(
        "impl{impl_generics} serde::Deserialize<'de> for {name}{ty_generics} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(deserializer: __D) \
                 -> std::result::Result<Self, __D::Error> {{\n\
                 {visitor_struct}\n\
                 impl{impl_generics} serde::de::Visitor<'de> for __Visitor{ty_generics} {{\n\
                     type Value = {name}{ty_generics};\n\
                     fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                         __f.write_str(\"enum {name}\")\n\
                     }}\n\
                     fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
                         -> std::result::Result<Self::Value, __A::Error> {{\n\
                         let (__tag, __variant): (std::string::String, __A::Variant) = \
                             serde::de::EnumAccess::variant(__data)?;\n\
                         match __tag.as_str() {{\n\
                             {arms}\
                             _ => std::result::Result::Err(<__A::Error as serde::de::Error>\
                                 ::unknown_variant(&__tag, &[{variant_list}])),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 serde::Deserializer::deserialize_enum(\
                     deserializer, \"{name}\", &[{variant_list}], {visitor_expr})\n\
             }}\n\
         }}\n"
    )
}
