//! A realistic analyst session over a synthetic retail-workforce dataset:
//! discretize quantitative columns, build the index, explore regions with
//! progressively narrower localized queries — the interactive
//! preprocess-once / query-many workflow COLARM was designed for.
//!
//! ```sh
//! cargo run --release --example market_analysis
//! ```

use colarm::{Colarm, LocalizedQuery, MipIndexConfig};
use colarm::data::discretize::{discretize, Binning};
use colarm::data::{DatasetBuilder, SchemaBuilder};
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    // ---- 1. raw data with quantitative columns --------------------------
    // Synthetic sales staff: region and channel are nominal; age and basket
    // value are quantitative and must be discretized first (paper §2.1).
    let mut rng = StdRng::seed_from_u64(2026);
    let n = 4000usize;
    let regions = ["North", "South", "East", "West"];
    let channels = ["Store", "Online", "Phone"];
    let mut region_col = Vec::with_capacity(n);
    let mut channel_col = Vec::with_capacity(n);
    let mut age_col = Vec::with_capacity(n);
    let mut basket_col = Vec::with_capacity(n);
    for _ in 0..n {
        let region = rng.gen_range(0..regions.len());
        let channel = rng.gen_range(0..channels.len());
        let age: f64 = rng.gen_range(18.0..70.0);
        // Embed a localized trend: young online shoppers in the West spend
        // big; everyone else is mildly age-correlated.
        let basket = if region == 3 && channel == 1 && age < 35.0 {
            rng.gen_range(180.0..260.0)
        } else {
            40.0 + age * 1.2 + rng.gen_range(-20.0..20.0)
        };
        region_col.push(region as u16);
        channel_col.push(channel as u16);
        age_col.push(age);
        basket_col.push(basket);
    }
    let age_bins = discretize("Age", &age_col, 5, Binning::EqualFrequency).expect("age bins");
    let basket_bins =
        discretize("Basket", &basket_col, 5, Binning::EqualWidth).expect("basket bins");
    println!(
        "Discretized Age into {:?}",
        age_bins.attribute.values()
    );
    println!(
        "Discretized Basket into {:?}\n",
        basket_bins.attribute.values()
    );

    // ---- 2. assemble the relational dataset ------------------------------
    let schema = SchemaBuilder::new()
        .attribute("Region", regions)
        .attribute("Channel", channels)
        .attribute("Age", age_bins.attribute.values().to_vec())
        .attribute("Basket", basket_bins.attribute.values().to_vec())
        .build()
        .expect("schema builds");
    let mut builder = DatasetBuilder::new(schema.clone());
    for i in 0..n {
        builder
            .push(&[
                region_col[i],
                channel_col[i],
                age_bins.codes[i],
                basket_bins.codes[i],
            ])
            .expect("row in domain");
    }
    let dataset = builder.build();

    // ---- 3. preprocess once ----------------------------------------------
    let colarm = Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: 0.02,
            ..Default::default()
        },
    )
    .expect("index builds");
    println!(
        "Indexed {} records → {} MIPs.\n",
        colarm.index().dataset().num_records(),
        colarm.index().num_mips()
    );

    // ---- 4. query many ----------------------------------------------------
    let sessions: [(&str, LocalizedQuery); 3] = [
        (
            "All regions, what sells with what",
            LocalizedQuery::builder().minsupp(0.25).minconf(0.7).build().expect("valid query"),
        ),
        (
            "West region only",
            LocalizedQuery::builder()
                .range_named(&schema, "Region", &["West"])
                .expect("attr")
                .minsupp(0.2)
                .minconf(0.7)
                .build().expect("valid query"),
        ),
        (
            "West + Online: the hidden local trend",
            LocalizedQuery::builder()
                .range_named(&schema, "Region", &["West"])
                .expect("attr")
                .range_named(&schema, "Channel", &["Online"])
                .expect("attr")
                .item_attrs_named(&schema, &["Age", "Basket"])
                .expect("attrs")
                .minsupp(0.15)
                .minconf(0.6)
                .build().expect("valid query"),
        ),
    ];
    for (label, query) in sessions {
        let out = colarm
            .run(&colarm::QueryRequest::query(&query).with_trace(true))
            .expect("query runs");
        println!(
            "▸ {label}: plan {}, {} records, {} rules, {:?}",
            out.plan.name(),
            out.subset_size,
            out.rules.len(),
            out.trace.as_ref().expect("trace requested").total
        );
        for rule in out.rules.iter().take(4) {
            println!("    {}", rule.display(&schema));
        }
        println!();
    }
    println!(
        "The narrowed query surfaces the embedded young-online-West big-basket \
         rule that is invisible at the global level — Simpson's paradox in a \
         retail setting."
    );
}
