//! Quickstart: the paper's §1.1 walkthrough on the Table 1 salary dataset.
//!
//! Builds a MIP-index over the eleven salary records, mines the global
//! trend `RG = (Age=20-30 → Salary=90K-120K)`, then asks COLARM for the
//! localized rules of female employees in Seattle — surfacing
//! `RL = (Age=30-40 → Salary=90K-120K)`, a rule hidden globally.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use colarm::{Colarm, LocalizedQuery, MipIndexConfig, QueryRequest};

fn main() {
    // ---- offline phase: preprocess once --------------------------------
    let dataset = colarm::data::synth::salary();
    let schema = dataset.schema().clone();
    println!(
        "Salary dataset: {} records × {} attributes (paper Table 1)\n",
        dataset.num_records(),
        schema.num_attributes()
    );
    let colarm = Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: 2.0 / 11.0, // prestore everything with ≥2 records
            ..Default::default()
        },
    )
    .expect("salary index builds");
    println!(
        "MIP-index: {} closed frequent itemsets, R-tree height {}\n",
        colarm.index().num_mips(),
        colarm.index().rtree().height()
    );

    // ---- global context: the trend every analyst sees -------------------
    let global = LocalizedQuery::builder()
        .minsupp(0.45)
        .minconf(0.8)
        .build().expect("valid query");
    let answer = colarm
        .run(&QueryRequest::query(&global))
        .expect("global query runs");
    println!("Global rules (minsupp 45%, minconf 80%):");
    for rule in &answer.rules {
        println!("  {}", rule.display(&schema));
    }

    // ---- localized context: female employees in Seattle -----------------
    let local = LocalizedQuery::builder()
        .range_named(&schema, "Location", &["Seattle"])
        .expect("known attribute")
        .range_named(&schema, "Gender", &["F"])
        .expect("known attribute")
        .minsupp(0.75)
        .minconf(0.9)
        .build().expect("valid query");
    let out = colarm
        .run(&QueryRequest::query(&local).with_trace(true))
        .expect("localized query runs");
    println!(
        "\nLocalized rules for Location=Seattle AND Gender=F \
         (|DQ| = {}, minsupp 75%, minconf 90%):",
        out.subset_size
    );
    for rule in &out.rules {
        println!("  {}", rule.display(&schema));
    }

    // ---- what the optimizer did ------------------------------------------
    let choice = out.choice.as_ref().expect("optimizer ran");
    println!("\nOptimizer decision (plan: estimated cost):");
    for est in &choice.estimates {
        let marker = if est.plan == choice.chosen { "→" } else { " " };
        println!("  {marker} {:<9} {:.3e} s", est.plan.name(), est.total());
    }
    let trace = out.trace.as_ref().expect("trace requested");
    println!(
        "\nExecuted {} in {:?} via operators: {}",
        out.plan.name(),
        trace.total,
        trace
            .ops
            .iter()
            .map(|o| o.name())
            .collect::<Vec<_>>()
            .join(" → ")
    );
}
