//! The paper's query language (§2.2) end to end.
//!
//! Parses `REPORT LOCALIZED ASSOCIATION RULES …` statements against the
//! salary schema and executes them, demonstrating range selections with
//! multiple values, the `ITEM ATTRIBUTES` clause, and percentage
//! thresholds.
//!
//! ```sh
//! cargo run --release --example query_language
//! ```

use colarm::{Colarm, MipIndexConfig};

fn main() {
    let colarm = Colarm::build(
        colarm::data::synth::salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .expect("salary index builds");
    let schema = colarm.index().dataset().schema().clone();

    let statements = [
        // The paper's running example: Seattle women.
        "REPORT LOCALIZED ASSOCIATION RULES \
         FROM Dataset salary \
         WHERE RANGE Location = (Seattle), Gender = (F) \
         HAVING minsupport = 75% AND minconfidence = 90%;",
        // Young IBM-or-Google employees, rules over Age/Salary only.
        "REPORT LOCALIZED ASSOCIATION RULES \
         WHERE RANGE Company = (IBM, Google), Age = (20-30, 30-40) \
         AND ITEM ATTRIBUTES Age, Salary \
         HAVING minsupport = 0.6 AND minconfidence = 0.8;",
        // Boston, low thresholds: lots of local structure.
        "REPORT LOCALIZED ASSOCIATION RULES \
         WHERE RANGE Location = (Boston) \
         HAVING minsupport = 50% AND minconfidence = 80%;",
    ];

    for (i, text) in statements.iter().enumerate() {
        println!("── query {} ────────────────────────────────────────────", i + 1);
        println!("{}\n", text.split_whitespace().collect::<Vec<_>>().join(" "));
        match colarm.run_text(text) {
            Ok(out) => {
                println!(
                    "plan {} over {} records → {} rules:",
                    out.plan.name(),
                    out.subset_size,
                    out.rules.len()
                );
                for rule in out.rules.iter().take(8) {
                    println!("  {}", rule.display(&schema));
                }
                if out.rules.len() > 8 {
                    println!("  … and {} more", out.rules.len() - 8);
                }
            }
            Err(e) => println!("error: {e}"),
        }
        println!();
    }

    // Errors are typed and positioned.
    let bad = "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Bogus = (x) \
               HAVING minsupport = 0.5 AND minconfidence = 0.5";
    println!("── malformed query ─────────────────────────────────────");
    match colarm.run_text(bad) {
        Ok(_) => unreachable!("must fail"),
        Err(e) => println!("rejected as expected [{}]: {e}", e.code()),
    }
}
