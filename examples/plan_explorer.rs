//! Plan explorer: run all six mining plans on one localized query over the
//! mushroom analog and compare the optimizer's estimates with measured
//! per-operator costs (the shape of paper Figures 9–11 for a single query).
//!
//! ```sh
//! cargo run --release --example plan_explorer
//! ```

use colarm::{LocalizedQuery, PlanKind};
use colarm_bench::{build_system, mushroom_spec, random_subset_spec, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = mushroom_spec(Scale::Fast);
    println!(
        "Building the {} analog MIP-index (primary support {:.0}%)…",
        spec.name,
        spec.primary * 100.0
    );
    let system = build_system(&spec);
    println!(
        "{} MIPs prestored over {} records.\n",
        system.index().num_mips(),
        system.index().dataset().num_records()
    );

    // A ~10% focal subset "somewhere" in the dataset.
    let mut rng = StdRng::seed_from_u64(7);
    let (range, subset) = random_subset_spec(
        system.index().dataset(),
        system.index().vertical(),
        0.10,
        &mut rng,
    );
    let query = LocalizedQuery::builder()
        .range(range.clone())
        .minsupp(spec.minsupps[0])
        .minconf(spec.minconf)
        .build().expect("valid query");
    println!(
        "Focal subset: {} — {} records ({:.1}% of D); minsupp {:.0}%, minconf {:.0}%\n",
        range.display(system.index().dataset().schema()),
        subset.len(),
        subset.fraction() * 100.0,
        query.minsupp * 100.0,
        query.minconf * 100.0
    );

    let choice = system.optimizer().choose(system.index(), &query, &subset);
    println!(
        "{:<10} {:>12} {:>12} {:>7}   operator breakdown",
        "plan", "estimated", "measured", "rules"
    );
    let mut fastest: Option<(PlanKind, f64)> = None;
    for plan in PlanKind::ALL {
        let answer = colarm::execute_plan(system.index(), &query, &subset, plan)
            .expect("query is valid");
        let measured = answer.trace.total.as_secs_f64();
        let estimated = choice.estimate_for(plan).total();
        let ops: Vec<String> = answer
            .trace
            .ops
            .iter()
            .map(|o| format!("{} {:.1}ms ({}→{})", o.kind, o.duration.as_secs_f64() * 1e3, o.input, o.output))
            .collect();
        let marker = if plan == choice.chosen { "→" } else { " " };
        println!(
            "{marker}{:<9} {:>10.3}ms {:>10.3}ms {:>7}   {}",
            plan.name(),
            estimated * 1e3,
            measured * 1e3,
            answer.rules.len(),
            ops.join("  ")
        );
        if fastest.is_none_or(|(_, t)| measured < t) {
            fastest = Some((plan, measured));
        }
    }
    let (fastest_plan, _) = fastest.expect("six plans ran");
    println!(
        "\nOptimizer chose {}; measured fastest was {}{}",
        choice.chosen.name(),
        fastest_plan.name(),
        if choice.chosen == fastest_plan {
            " — correct pick."
        } else {
            "."
        }
    );
}
