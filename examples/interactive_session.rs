//! Multi-query session + index persistence: an analyst workflow across
//! process restarts (paper §7 future-work item (b), plus snapshotting).
//!
//! 1. Build the MIP-index over the mushroom analog, snapshot it to disk
//!    in the checksummed binary format (atomic temp-file + rename).
//! 2. "Restart": restore the index from the snapshot (no re-mining).
//! 3. Explore one region with a burst of threshold refinements through a
//!    caching [`colarm::QuerySession`] and show the cache doing its job.
//!
//! ```sh
//! cargo run --release --example interactive_session
//! ```

use colarm::{Colarm, LocalizedQuery, QuerySession};
use colarm_bench::{build_system, mushroom_spec, random_subset_spec, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // ---- day one: offline preprocessing -------------------------------
    let spec = mushroom_spec(Scale::Fast);
    let t = Instant::now();
    let system = build_system(&spec);
    println!(
        "Mined + indexed {} MIPs in {:.2?}.",
        system.index().num_mips(),
        t.elapsed()
    );
    let snapshot_path = std::env::temp_dir().join(format!(
        "colarm-interactive-session-{}.snap",
        std::process::id()
    ));
    let t = Instant::now();
    let bytes = system
        .save_index_snapshot(&snapshot_path)
        .expect("snapshot saves");
    println!(
        "Snapshot: {:.1} MiB of binary (format v{}) in {:.2?}.",
        bytes as f64 / (1024.0 * 1024.0),
        colarm::persist::FORMAT_VERSION,
        t.elapsed()
    );

    // ---- day two: restore without re-mining ----------------------------
    let t = Instant::now();
    let restored = Colarm::load_index_snapshot(&snapshot_path)
        .expect("snapshot restores")
        .into_shared();
    let _ = std::fs::remove_file(&snapshot_path);
    println!(
        "Restored {} MIPs in {:.2?} (no CHARM run).\n",
        restored.index().num_mips(),
        t.elapsed()
    );

    // ---- the analyst session -------------------------------------------
    let session = QuerySession::new(restored.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let (range, subset) = random_subset_spec(
        restored.index().dataset(),
        restored.index().vertical(),
        0.15,
        &mut rng,
    );
    println!(
        "Exploring {} ({} records, {:.1}% of D):",
        range.display(restored.index().dataset().schema()),
        subset.len(),
        subset.fraction() * 100.0
    );
    for (minsupp, minconf) in [(0.70, 0.85), (0.75, 0.85), (0.80, 0.90), (0.70, 0.85)] {
        let q = LocalizedQuery::builder()
            .range(range.clone())
            .minsupp(minsupp)
            .minconf(minconf)
            .build().expect("valid query");
        let t = Instant::now();
        let answer = session.execute(&q).expect("query runs");
        println!(
            "  minsupp {:.0}% minconf {:.0}% → {:>6} rules via {:<9} in {:>9.3?}",
            minsupp * 100.0,
            minconf * 100.0,
            answer.rules.len(),
            answer.plan.name(),
            t.elapsed()
        );
    }
    let stats = session.stats();
    println!(
        "\nSession cache: the region was resolved once ({} hit(s) after), and \
         the repeated query was served from the answer cache ({} hit).",
        stats.subset_hits, stats.answer_hits
    );
}
