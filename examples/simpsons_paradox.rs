//! Simpson's-paradox hunting (paper §1.1 and §5.3).
//!
//! Uses the parameter advisor (the paper's future-work extension) to find
//! the most paradox-rich single-attribute subsets of the mushroom analog,
//! then runs the paradox analyzer on the best one: which rules appear only
//! locally, and which global trends break inside the subset.
//!
//! ```sh
//! cargo run --release --example simpsons_paradox
//! ```

use colarm::advisor::{advise, AdvisorConfig};
use colarm::paradox;
use colarm::LocalizedQuery;
use colarm_bench::{build_system, mushroom_spec, Scale};
use colarm::data::RangeSpec;

fn main() {
    let spec = mushroom_spec(Scale::Fast);
    println!("Building the {} analog MIP-index…\n", spec.name);
    let system = build_system(&spec);
    let schema = system.index().dataset().schema().clone();

    // 1. Let the advisor mine thresholds and subset candidates from data.
    let advice = advise(system.index(), &AdvisorConfig::default()).expect("advisor runs");
    println!(
        "Advisor suggests minsupp {:.0}%, minconf {:.0}%; paradox-rich subsets:",
        advice.minsupp * 100.0,
        advice.minconf * 100.0
    );
    for r in &advice.ranges {
        println!(
            "  {:<22} ({} records) — {} locally-frequent itemsets invisible globally",
            r.label, r.subset_size, r.fresh_local_cfis
        );
    }
    let Some(best) = advice.ranges.first() else {
        println!("no paradox-rich subsets at these thresholds");
        return;
    };

    // 2. Analyze the best candidate in depth.
    let query = LocalizedQuery::builder()
        .range(RangeSpec::all().with(best.attribute, [best.value]))
        .minsupp(advice.minsupp)
        .minconf(advice.minconf)
        .build().expect("valid query");
    println!("\nAnalyzing {} …", best.label);
    let report = paradox::analyze(system.index(), &query).expect("analysis runs");

    println!(
        "\nItemset view (Figure 13 statistic): {} fresh-local vs {} repeated-global \
         frequent itemsets ({:.0}% fresh)",
        report.cfi_counts.fresh_local,
        report.cfi_counts.repeated_global,
        report.cfi_counts.fresh_fraction() * 100.0
    );

    println!(
        "\n{} rules hold ONLY inside {} (showing up to 5):",
        report.fresh_local_rules.len(),
        best.label
    );
    for c in report.fresh_local_rules.iter().take(5) {
        println!(
            "  {}   [globally: supp {:.1}%, conf {:.1}%]",
            c.rule.display(&schema),
            c.other_support * 100.0,
            c.other_confidence * 100.0
        );
    }

    println!(
        "\n{} global rules BREAK inside {} (showing up to 5):",
        report.vanished_global_rules.len(),
        best.label
    );
    for c in report.vanished_global_rules.iter().take(5) {
        println!(
            "  {}   [locally: supp {:.1}%, conf {:.1}%]",
            c.rule.display(&schema),
            c.other_support * 100.0,
            c.other_confidence * 100.0
        );
    }
}
