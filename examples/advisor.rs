//! Parameter advisor (paper future-work item (a), §7): mine good query
//! parameters — minsupport, minconfidence and focal ranges — from the
//! chess analog automatically, then run the advised query.
//!
//! ```sh
//! cargo run --release --example advisor
//! ```

use colarm::advisor::{advise, AdvisorConfig};
use colarm_bench::{build_system, chess_spec, Scale};

fn main() {
    let spec = chess_spec(Scale::Fast);
    println!(
        "Building the {} analog (primary support {:.0}%)…",
        spec.name,
        spec.primary * 100.0
    );
    let system = build_system(&spec);
    println!("{} MIPs prestored.\n", system.index().num_mips());

    for target in [50usize, 500] {
        let advice = advise(
            system.index(),
            &AdvisorConfig {
                target_itemsets: target,
                top_ranges: 5,
                ..Default::default()
            },
        )
        .expect("advisor runs");
        println!(
            "Targeting ~{target} qualifying itemsets → advised minsupp {:.1}%, minconf {:.1}%",
            advice.minsupp * 100.0,
            advice.minconf * 100.0
        );
        for r in &advice.ranges {
            println!(
                "   candidate subset {:<14} ({:>5} records): {:>5} fresh-local itemsets",
                r.label, r.subset_size, r.fresh_local_cfis
            );
        }
        if let Some(best) = advice.ranges.first() {
            let query = best.to_query(&advice).expect("advised query is valid");
            let out = system
                .run(&colarm::QueryRequest::query(&query).with_trace(true))
                .expect("advised query runs");
            println!(
                "   → executed advised query on {}: plan {}, {} rules in {:?}\n",
                best.label,
                out.plan.name(),
                out.rules.len(),
                out.trace.as_ref().expect("trace requested").total
            );
        } else {
            println!("   → nothing fresh at this setting\n");
        }
    }
}
