//! Umbrella crate of the COLARM reproduction: re-exports the system and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`). The implementation lives in the `crates/` workspace:
//! `colarm` (core), `colarm-data`, `colarm-mine`, `colarm-rtree`,
//! `colarm-bench`.

pub use colarm::*;
