//! Typed errors for the COLARM framework.

use crate::ops::OpKind;
use colarm_data::DataError;
use std::fmt;

/// Errors raised while building the MIP-index or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum ColarmError {
    /// A threshold was outside `(0, 1]`.
    InvalidThreshold { name: &'static str, value: f64 },
    /// The query referenced attributes or values not in the schema.
    Data(DataError),
    /// The focal subset selected no records.
    EmptySubset,
    /// An `ITEM ATTRIBUTES` clause listed no attributes.
    EmptyItemAttributes,
    /// Query-language parse failure.
    QueryParse { position: usize, message: String },
    /// An index snapshot could not be written, read, or verified: I/O
    /// failure, unknown format, truncation, checksum mismatch, or a
    /// version/field this build does not understand. Snapshot problems
    /// never masquerade as query errors (they previously surfaced as
    /// `QueryParse`, which the CLI reported as "parse error at offset 0").
    Snapshot { message: String },
    /// Unrestricted semantics can only be served by the from-scratch ARM
    /// plan; the MIP-index plans are bound to the primary threshold
    /// (paper footnote 2).
    UnrestrictedRequiresArm { requested: &'static str },
    /// The query was stopped by its deadline, cost budget, or an explicit
    /// cancel before completing. The engine checks at batch boundaries,
    /// so cancellation is prompt (within one batch) and never yields a
    /// silent partial answer: the whole execution fails with this error.
    Canceled {
        /// Cost units already consumed when the execution stopped.
        after_units: f64,
        /// The operator that was running (or about to run) at the check.
        op: OpKind,
    },
}

impl ColarmError {
    /// Stable machine-readable error code, one per variant. This is the
    /// `code` field of the server's JSON error body and the `[code]` tag
    /// in REPL error output; clients dispatch on it, so the strings are
    /// part of the wire contract and must never change (pinned by the
    /// golden wire-format tests).
    pub fn code(&self) -> &'static str {
        match self {
            ColarmError::InvalidThreshold { .. } => "invalid_threshold",
            ColarmError::Data(_) => "bad_reference",
            ColarmError::EmptySubset => "empty_subset",
            ColarmError::EmptyItemAttributes => "empty_item_attributes",
            ColarmError::QueryParse { .. } => "query_parse",
            ColarmError::Snapshot { .. } => "snapshot",
            ColarmError::UnrestrictedRequiresArm { .. } => "unrestricted_requires_arm",
            ColarmError::Canceled { .. } => "canceled",
        }
    }
}

impl fmt::Display for ColarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColarmError::InvalidThreshold { name, value } => {
                write!(f, "{name} must be in (0, 1], got {value}")
            }
            ColarmError::Data(e) => write!(f, "{e}"),
            ColarmError::EmptySubset => write!(f, "the focal subset selects no records"),
            ColarmError::EmptyItemAttributes => {
                write!(f, "ITEM ATTRIBUTES clause must list at least one attribute")
            }
            ColarmError::QueryParse { position, message } => {
                write!(f, "query parse error at offset {position}: {message}")
            }
            ColarmError::Snapshot { message } => {
                write!(f, "index snapshot error: {message}")
            }
            ColarmError::UnrestrictedRequiresArm { requested } => write!(
                f,
                "Semantics::Unrestricted reports rules invisible to the MIP-index; \
                 only the ARM plan can serve it (requested plan: {requested})"
            ),
            ColarmError::Canceled { after_units, op } => write!(
                f,
                "query canceled in {op} after {after_units:.0} cost units"
            ),
        }
    }
}

impl std::error::Error for ColarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColarmError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for ColarmError {
    fn from(e: DataError) -> Self {
        ColarmError::Data(e)
    }
}
