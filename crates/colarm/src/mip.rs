//! The MIP-index: COLARM's two-level offline structure (paper §3).
//!
//! Offline construction (the preprocess-once half of POQM):
//!
//! 1. mine all closed frequent itemsets at the **primary support
//!    threshold** with CHARM;
//! 2. store them in a closed IT-tree (feature *b*: the items composing
//!    each itemset, plus its exact global tidset);
//! 3. store each itemset's **multidimensional bounding box** — the single
//!    selected value on the attributes it constrains, the full domain on
//!    the rest (paper Figure 1) — in a packed *Supported R-tree* whose
//!    entry weights are global support counts (feature *a*);
//! 4. gather the index statistics the cost-based optimizer needs.

use crate::cost::{IndexStats, QueryProfile};
use crate::error::ColarmError;
use crate::query::LocalizedQuery;
use crate::stats::StatsCatalog;
use colarm_data::{Dataset, FocalSubset, Itemset, RangeSpec, VerticalIndex};
use colarm_mine::vertical::full_vertical;
use colarm_mine::{charm_par, CfiId, ClosedItTree};
use colarm_rtree::{bulk, Rect, RTree};

/// How the R-tree is constructed offline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Packing {
    /// Sort-Tile-Recursive packing (default; any dimensionality).
    #[default]
    Str,
    /// Kamel–Faloutsos Hilbert packing; falls back to STR when the
    /// Hilbert key would exceed 128 bits.
    Hilbert,
    /// One-by-one Guttman insertion (kept for packing-benefit ablations).
    Insertion,
}

/// MIP-index build configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MipIndexConfig {
    /// The primary support threshold (fraction of `|D|`) used for offline
    /// CFI mining — paper's "domain-specific primary support".
    pub primary_support: f64,
    /// R-tree fanout.
    pub fanout: usize,
    /// R-tree construction scheme.
    pub packing: Packing,
    /// Worker threads for the offline CHARM mining fan-out: `0` uses the
    /// session default ([`colarm_data::par::max_threads`]), `1` forces the
    /// sequential path. The mined CFI vector — and therefore CFI ids,
    /// R-tree layout and snapshots — is bit-identical at any setting.
    pub threads: usize,
    /// Collect the per-attribute/per-CFI-group [`StatsCatalog`] at build
    /// time (default). `false` (`colarm index --no-stats`) builds a
    /// stats-absent index whose estimates use the global-average fallback
    /// — the A/B baseline for the catalog. A build knob, not an index
    /// property: it is **not persisted**; a snapshot records the catalog
    /// itself (or its absence), and restores never recompute it.
    pub collect_stats: bool,
}

impl Default for MipIndexConfig {
    fn default() -> Self {
        MipIndexConfig {
            primary_support: 0.1,
            fanout: colarm_rtree::tree::DEFAULT_MAX_ENTRIES,
            packing: Packing::Str,
            threads: 0,
            collect_stats: true,
        }
    }
}

/// The two-level MIP-index plus the dataset it indexes.
#[derive(Debug)]
pub struct MipIndex {
    dataset: Dataset,
    vertical: VerticalIndex,
    ittree: ClosedItTree,
    rtree: RTree<CfiId>,
    stats: IndexStats,
    catalog: Option<StatsCatalog>,
    config: MipIndexConfig,
    primary_count: usize,
    domains: Vec<u32>,
    /// The mapped snapshot this index borrows its tidsets / records
    /// from, when loaded through the zero-copy path. Holding the `Arc`
    /// here is what keeps the mapping alive for as long as any clone of
    /// the index generation is pinned (e.g. by in-flight server
    /// sessions); it also carries the deferred-CRC state consulted by
    /// [`MipIndex::ensure_validated`].
    backing: Option<std::sync::Arc<crate::persist::mmap::SnapshotMap>>,
}

impl MipIndex {
    /// Offline preprocessing: mine CFIs at the primary threshold and build
    /// both index levels.
    pub fn build(dataset: Dataset, config: MipIndexConfig) -> Result<Self, ColarmError> {
        if !(config.primary_support > 0.0 && config.primary_support <= 1.0) {
            return Err(ColarmError::InvalidThreshold {
                name: "primary_support",
                value: config.primary_support,
            });
        }
        let vertical = VerticalIndex::build(&dataset);
        let m = dataset.num_records();
        let primary_count =
            (((config.primary_support * m as f64) - 1e-9).ceil().max(1.0)) as usize;
        let cfis = charm_par(&full_vertical(&vertical), primary_count, config.threads);
        let with_catalog = config.collect_stats;
        Self::assemble(dataset, config, cfis, vertical, with_catalog)
    }

    /// Rebuild an index from already-mined CFIs (snapshot restore): all
    /// derived structures are reconstructed, the miner is skipped. The
    /// statistics catalog is **not** recomputed — a restored snapshot
    /// reproduces exactly the optimizer inputs it was saved with (the
    /// loader attaches a persisted catalog via `set_catalog`; v1/v2
    /// snapshots and `--no-stats` builds restore stats-absent).
    pub fn from_parts(
        dataset: Dataset,
        config: MipIndexConfig,
        cfis: Vec<colarm_mine::ClosedItemset>,
    ) -> Result<Self, ColarmError> {
        if !(config.primary_support > 0.0 && config.primary_support <= 1.0) {
            return Err(ColarmError::InvalidThreshold {
                name: "primary_support",
                value: config.primary_support,
            });
        }
        let vertical = VerticalIndex::build(&dataset);
        Self::assemble(dataset, config, cfis, vertical, false)
    }

    /// [`MipIndex::from_parts`] for the mapped snapshot path: the
    /// vertical index was persisted (no rebuild) and the tidsets / record
    /// matrix borrow from `backing`, which the index keeps alive.
    pub(crate) fn from_mapped_parts(
        dataset: Dataset,
        config: MipIndexConfig,
        cfis: Vec<colarm_mine::ClosedItemset>,
        vertical: VerticalIndex,
        backing: std::sync::Arc<crate::persist::mmap::SnapshotMap>,
    ) -> Result<Self, ColarmError> {
        if !(config.primary_support > 0.0 && config.primary_support <= 1.0) {
            return Err(ColarmError::InvalidThreshold {
                name: "primary_support",
                value: config.primary_support,
            });
        }
        let mut index = Self::assemble(dataset, config, cfis, vertical, false)?;
        index.backing = Some(backing);
        Ok(index)
    }

    fn assemble(
        dataset: Dataset,
        config: MipIndexConfig,
        cfis: Vec<colarm_mine::ClosedItemset>,
        vertical: VerticalIndex,
        with_catalog: bool,
    ) -> Result<Self, ColarmError> {
        let schema = dataset.schema().clone();
        let domains: Vec<u32> = schema.dimensions().map(|(_, d)| d as u32).collect();
        let m = dataset.num_records();
        let primary_count =
            (((config.primary_support * m as f64) - 1e-9).ceil().max(1.0)) as usize;
        // R-tree entries: bounding box + global support weight + CFI id.
        let entries: Vec<(Rect, u32, CfiId)> = cfis
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    itemset_rect(&schema, &c.itemset),
                    c.tids.len() as u32,
                    CfiId(i as u32),
                )
            })
            .collect();
        let dims = domains.len();
        let rtree = match config.packing {
            Packing::Str => bulk::bulk_load_str(dims, config.fanout, entries),
            Packing::Hilbert if bulk::hilbert_packable(&domains) => {
                bulk::bulk_load_hilbert(dims, config.fanout, &domains, entries)
            }
            Packing::Hilbert => bulk::bulk_load_str(dims, config.fanout, entries),
            Packing::Insertion => {
                let mut t = RTree::with_fanout(dims, config.fanout);
                for (rect, w, id) in entries {
                    t.insert(rect, w, id);
                }
                t
            }
        };
        let cfi_lens: Vec<usize> = cfis.iter().map(|c| c.itemset.len()).collect();
        let cfi_supports: Vec<u32> = cfis.iter().map(|c| c.tids.len() as u32).collect();
        let cfi_attr_presence: Vec<Vec<bool>> = cfis
            .iter()
            .map(|c| {
                let mut p = vec![false; schema.num_attributes()];
                for &item in c.itemset.items() {
                    p[schema.item_attribute(item).index()] = true;
                }
                p
            })
            .collect();
        let item_supports: Vec<u32> = (0..schema.num_items() as u32)
            .map(|i| vertical.tids(colarm_data::ItemId(i)).len() as u32)
            .collect();
        let cfi_min_item_supports: Vec<u32> = cfis
            .iter()
            .map(|c| {
                c.itemset
                    .items()
                    .iter()
                    .map(|i| item_supports[i.index()])
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        let stats = IndexStats::collect(
            &rtree,
            &domains,
            &cfi_lens,
            &cfi_supports,
            &cfi_attr_presence,
            &item_supports,
            &cfi_min_item_supports,
            cfis.iter().flat_map(|c| c.tids.chunk_stats()),
            m,
            primary_count,
        );
        let catalog = if with_catalog {
            StatsCatalog::collect(
                &dataset,
                &item_supports,
                &cfi_lens,
                &cfi_supports,
                &cfi_attr_presence,
                &cfi_min_item_supports,
            )
        } else {
            None
        };
        let ittree = ClosedItTree::build(cfis, schema.num_items(), m as u32);
        Ok(MipIndex {
            dataset,
            vertical,
            ittree,
            rtree,
            stats,
            catalog,
            config,
            primary_count,
            domains,
            backing: None,
        })
    }

    /// Complete **all** deferred (lazy) validation of the mapped
    /// snapshot backing this index — the remaining section CRCs *and*
    /// the per-value domain sweep of the record matrix (deferred by the
    /// mapped load because no query plan reads record values). A no-op
    /// for built / owned-decoded indexes; for a lazily-validated map the
    /// first call pays the remaining passes and later calls are a couple
    /// of atomic loads. The query path triggers the tidset CRC pass
    /// automatically ([`MipIndex::resolve_subset`]) and the snapshot
    /// save/capture paths call this in full; call it yourself before
    /// reading rows straight off [`MipIndex::dataset`] on a
    /// lazily-loaded index.
    pub fn ensure_validated(&self) -> Result<(), ColarmError> {
        let Some(map) = &self.backing else {
            return Ok(());
        };
        map.validate_pending()?;
        if !map.domains_checked() {
            // Runs after the RECORDS16 CRC passed, so a failure here
            // means the snapshot *writer* emitted out-of-domain values
            // (or the checksum itself was forged around tampered bytes).
            self.dataset.validate_domains().map_err(|e| ColarmError::Snapshot {
                message: format!(
                    "record matrix: {e} (detected on deferred domain sweep of snapshot {})",
                    map.path().display()
                ),
            })?;
            map.set_domains_checked();
        }
        Ok(())
    }

    /// Deferred validation of every mapped section a query reads (all
    /// but the record matrix, which no plan touches). Hooked at subset
    /// resolution so no answer is derived from unvalidated bytes.
    pub(crate) fn ensure_query_validated(&self) -> Result<(), ColarmError> {
        match &self.backing {
            Some(map) => map.validate_query_sections(),
            None => Ok(()),
        }
    }


    /// The indexed dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The dataset's vertical (per-item tid-list) index.
    pub fn vertical(&self) -> &VerticalIndex {
        &self.vertical
    }

    /// The closed IT-tree level of the index.
    pub fn ittree(&self) -> &ClosedItTree {
        &self.ittree
    }

    /// The supported R-tree level of the index.
    pub fn rtree(&self) -> &RTree<CfiId> {
        &self.rtree
    }

    /// Index statistics for the cost model.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The statistics catalog, when this index carries one (built with
    /// `collect_stats`, or restored from a v3 snapshot's `STATS` section).
    pub fn catalog(&self) -> Option<&StatsCatalog> {
        self.catalog.as_ref()
    }

    /// Attach (or clear) the statistics catalog — used by the snapshot
    /// loader, which restores the persisted catalog instead of
    /// recomputing one.
    pub(crate) fn set_catalog(&mut self, catalog: Option<StatsCatalog>) {
        self.catalog = catalog;
    }

    /// Build configuration.
    pub fn config(&self) -> &MipIndexConfig {
        &self.config
    }

    /// Primary support threshold as an absolute count.
    pub fn primary_count(&self) -> usize {
        self.primary_count
    }

    /// Number of prestored closed frequent itemsets (MIPs).
    pub fn num_mips(&self) -> usize {
        self.ittree.len()
    }

    /// Domain sizes per attribute.
    pub fn domains(&self) -> &[u32] {
        &self.domains
    }

    /// Resolve a range spec into a focal subset (tidset + size).
    pub fn resolve_subset(&self, spec: RangeSpec) -> Result<FocalSubset, ColarmError> {
        self.ensure_query_validated()?;
        Ok(FocalSubset::resolve(spec, &self.dataset, &self.vertical)?)
    }

    /// The hull rectangle of a range spec in the index's space.
    pub fn range_rect(&self, spec: &RangeSpec) -> Rect {
        let hull = spec.hull(self.dataset.schema());
        let lo: Vec<u32> = hull.iter().map(|&(l, _)| l as u32).collect();
        let hi: Vec<u32> = hull.iter().map(|&(_, h)| h as u32).collect();
        Rect::new(lo, hi)
    }

    /// Bounding box of an itemset (paper Figure 1 semantics).
    pub fn itemset_rect(&self, itemset: &Itemset) -> Rect {
        itemset_rect(self.dataset.schema(), itemset)
    }

    /// The constant-time query profile feeding the cost model.
    pub fn query_profile(&self, query: &LocalizedQuery, subset: &FocalSubset) -> QueryProfile {
        let schema = self.dataset.schema();
        let dq_rect = self.range_rect(subset.spec());
        // Estimated fraction of candidates fully contained in DQ: for each
        // constrained attribute that does not span its domain, the
        // candidate must pin it (probability = the attribute's CFI
        // coverage) to an admitted value (probability ≈ selection share).
        // With a catalog the share comes from the equi-depth histogram's
        // record mass instead of the uniform |values|/|domain|, and each
        // share beyond the most selective one is damped toward 1 by its
        // measured dependence on the attributes already applied — two
        // correlated predicates select nearly the same records, so their
        // shares must not multiply as if independent (a standard
        // exponential-backoff heuristic).
        let contained_frac = match &self.catalog {
            Some(cat) => {
                let mut terms: Vec<(usize, f64)> = Vec::new();
                let mut frac = 1.0f64;
                for (&aid, values) in subset.spec().selections() {
                    let dom = schema.attribute(aid).domain_size();
                    if values.len() >= dom {
                        continue;
                    }
                    frac *= self.stats.attr_coverage[aid.index()];
                    let share = cat.mass_share(aid.index(), values.iter().copied());
                    terms.push((aid.index(), share));
                }
                terms.sort_by(|a, b| a.1.total_cmp(&b.1));
                let mut applied: Vec<usize> = Vec::new();
                for (attr, share) in terms {
                    let independence = if applied.is_empty() {
                        1.0
                    } else {
                        applied
                            .iter()
                            .map(|&o| cat.pair_independence(attr, o))
                            .sum::<f64>()
                            / applied.len() as f64
                    };
                    frac *= share.powf(independence);
                    applied.push(attr);
                }
                frac.clamp(0.0, 1.0)
            }
            None => {
                let mut frac = 1.0f64;
                for (&aid, values) in subset.spec().selections() {
                    let dom = schema.attribute(aid).domain_size();
                    if values.len() >= dom {
                        continue;
                    }
                    let share = values.len() as f64 / dom as f64;
                    frac *= self.stats.attr_coverage[aid.index()] * share;
                }
                frac
            }
        };
        let item_attrs = match &query.item_attrs {
            None => schema.num_attributes(),
            Some(a) => a.len(),
        };
        let minsupp_count = query.minsupp_count(subset.len());
        // Conditional shape statistics for the admitted item attributes.
        let catalog = self.catalog.as_ref().map(|cat| {
            let admitted_mask = match &query.item_attrs {
                None => u64::MAX,
                Some(attrs) => attrs
                    .iter()
                    .fold(0u64, |m, a| m | (1u64 << (a.index() as u64 & 63))),
            };
            let local_frac_threshold = ((minsupp_count as f64 / (subset.len() as f64).max(1.0))
                * self.stats.num_records as f64) as usize;
            cat.hints(admitted_mask, local_frac_threshold)
        });
        // Exact ARM mining-volume profile: one bounded pass computing which
        // items stay locally frequent (the same record-level granularity
        // the paper's formulas use for |DQ|), then counting the prestored
        // CFIs composed purely of such items — exactly the itemsets the
        // ARM plan would re-mine. Skipped for very large item × subset
        // products, where the min-item-support histogram serves instead.
        let (arm_mined, arm_clone_units) = if (schema.num_items() as u64)
            * (subset.len() as u64)
            <= 16_000_000
        {
            let mut locally_frequent = vec![false; schema.num_items()];
            let mut clone_units = 0.0f64;
            for i in 0..schema.num_items() as u32 {
                let item = colarm_data::ItemId(i);
                if !query.admits_attribute(schema.item_attribute(item)) {
                    continue;
                }
                let tids = self.vertical.tids(item);
                if tids.intersect_count(subset.tids()) >= minsupp_count {
                    locally_frequent[item.index()] = true;
                    clone_units += tids.len() as f64;
                }
            }
            let mined = self
                .ittree
                .iter()
                .filter(|(_, c)| {
                    c.itemset
                        .items()
                        .iter()
                        .all(|i| locally_frequent[i.index()])
                })
                .count();
            (Some(mined.max(1) as f64), clone_units)
        } else {
            // Histogram fallback: clone volume ≈ restricted item share of
            // the total item tid volume.
            let total_tid_volume: f64 =
                self.stats.item_supports.iter().map(|&s| s as f64).sum();
            let ilf = self.stats.item_selectivity(minsupp_count);
            (None, total_tid_volume * ilf)
        };
        QueryProfile {
            dq_rect,
            dq_len: subset.len(),
            minsupp_count,
            item_attrs,
            contained_frac,
            arm_mined,
            arm_clone_units,
            // Standalone profiles assume a fresh SELECT; sessions override
            // this from their column cache before estimating.
            select_reuse: crate::cost::SelectReuse::Fresh,
            catalog,
        }
    }
}

/// Bounding box of an itemset: point extent on constrained attributes,
/// full domain elsewhere.
pub fn itemset_rect(schema: &colarm_data::Schema, itemset: &Itemset) -> Rect {
    let mut lo: Vec<u32> = vec![0; schema.num_attributes()];
    let mut hi: Vec<u32> = schema
        .dimensions()
        .map(|(_, d)| (d as u32).saturating_sub(1))
        .collect();
    for &item in itemset.items() {
        let it = schema.decode(item);
        lo[it.attribute.index()] = it.value as u32;
        hi[it.attribute.index()] = it.value as u32;
    }
    Rect::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary;
    use colarm_data::Overlap;

    fn index(primary: f64) -> MipIndex {
        MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: primary,
                ..MipIndexConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn build_validates_primary_support() {
        assert!(matches!(
            MipIndex::build(
                salary(),
                MipIndexConfig {
                    primary_support: 0.0,
                    ..MipIndexConfig::default()
                }
            ),
            Err(ColarmError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn rtree_and_ittree_agree() {
        let idx = index(2.0 / 11.0);
        assert_eq!(idx.rtree().len(), idx.ittree().len());
        assert!(idx.num_mips() > 10);
        // Every R-tree payload id resolves and its rect matches its itemset.
        idx.rtree().for_each(|rect, weight, &id| {
            let cfi = idx.ittree().get(id);
            assert_eq!(rect, &idx.itemset_rect(&cfi.itemset));
            assert_eq!(weight as usize, cfi.support());
        });
    }

    #[test]
    fn itemset_rect_pins_item_attributes_only() {
        let idx = index(0.2);
        let s = idx.dataset().schema();
        let iset = Itemset::from_items([
            s.encode_named("Age", "20-30").unwrap(),
            s.encode_named("Salary", "90K-120K").unwrap(),
        ]);
        let rect = idx.itemset_rect(&iset);
        // Age is attribute 4 (value 0), Salary attribute 5 (value 2).
        assert_eq!(rect.lo()[4], 0);
        assert_eq!(rect.hi()[4], 0);
        assert_eq!(rect.lo()[5], 2);
        assert_eq!(rect.hi()[5], 2);
        // Company (attr 0, domain 4) spans fully.
        assert_eq!(rect.lo()[0], 0);
        assert_eq!(rect.hi()[0], 3);
    }

    #[test]
    fn rtree_search_finds_every_range_relevant_mip() {
        // Exhaustive cross-check on the salary index: R-tree hull hits ⊇
        // itemsets classified non-disjoint by the exact range test.
        let idx = index(2.0 / 11.0);
        let s = idx.dataset().schema();
        let spec = RangeSpec::all()
            .with_named(s, "Location", &["Seattle"])
            .unwrap()
            .with_named(s, "Gender", &["F"])
            .unwrap();
        let (hits, _) = idx.rtree().query(&idx.range_rect(&spec), 0);
        let hit_ids: std::collections::HashSet<u32> =
            hits.iter().map(|h| h.payload.0).collect();
        for (id, cfi) in idx.ittree().iter() {
            if spec.classify(s, &cfi.itemset) != Overlap::Disjoint {
                assert!(
                    hit_ids.contains(&id.0),
                    "R-tree missed {}",
                    cfi.itemset
                );
            }
        }
    }

    #[test]
    fn all_packings_store_the_same_entries() {
        for packing in [Packing::Str, Packing::Hilbert, Packing::Insertion] {
            let idx = MipIndex::build(
                salary(),
                MipIndexConfig {
                    primary_support: 0.2,
                    packing,
                    ..MipIndexConfig::default()
                },
            )
            .unwrap();
            idx.rtree().check_invariants();
            assert_eq!(idx.rtree().len(), idx.ittree().len(), "{packing:?}");
        }
    }

    #[test]
    fn query_profile_reflects_subset() {
        let idx = index(0.2);
        let s = idx.dataset().schema().clone();
        let spec = RangeSpec::all().with_named(&s, "Location", &["Seattle"]).unwrap();
        let subset = idx.resolve_subset(spec).unwrap();
        let q = LocalizedQuery::builder().minsupp(0.75).build().unwrap();
        let p = idx.query_profile(&q, &subset);
        assert_eq!(p.dq_len, 4);
        assert_eq!(p.minsupp_count, 3);
        assert_eq!(p.item_attrs, 6);
        assert!(p.contained_frac > 0.0 && p.contained_frac <= 1.0);
    }

    #[test]
    fn collect_stats_flag_gates_the_catalog() {
        let with = index(0.2);
        assert!(with.catalog().is_some());
        let without = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 0.2,
                collect_stats: false,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        assert!(without.catalog().is_none());
        // Profiles inherit the catalog's presence.
        let s = with.dataset().schema().clone();
        let spec = RangeSpec::all().with_named(&s, "Location", &["Seattle"]).unwrap();
        let q = LocalizedQuery::builder().minsupp(0.75).build().unwrap();
        let subset = with.resolve_subset(spec.clone()).unwrap();
        let hinted = with.query_profile(&q, &subset);
        assert!(hinted.catalog.is_some());
        assert!(hinted.contained_frac > 0.0 && hinted.contained_frac <= 1.0);
        // Unrestricted queries admit every CFI: no restriction discount.
        let h = hinted.catalog.unwrap();
        assert!((h.item_restriction_frac - 1.0).abs() < 1e-12);
        let subset = without.resolve_subset(spec).unwrap();
        assert!(without.query_profile(&q, &subset).catalog.is_none());
    }

    #[test]
    fn primary_count_rounds_up() {
        let idx = index(0.5);
        assert_eq!(idx.primary_count(), 6); // ceil(0.5 × 11)
        for (_, cfi) in idx.ittree().iter() {
            assert!(cfi.support() >= 6);
        }
    }
}
