//! Simpson's-paradox analysis: local vs. global itemsets and rules
//! (paper §1.1 and §5.3, Figure 13).
//!
//! The paper quantifies the paradox two ways, both reproduced here:
//!
//! * **Fresh-local vs repeated-global CFIs** (Figure 13) — among the
//!   itemsets frequent *within* the focal subset, how many are fresh
//!   (below the global minsupport, hence invisible to global mining) vs
//!   repeats of globally frequent itemsets.
//! * **Rule reversals** — localized rules that fail globally (`RL` of the
//!   salary example) and global rules that fail locally (`RG` restricted
//!   to Seattle women).

use crate::error::ColarmError;
use crate::mip::MipIndex;
use crate::plan::{execute_plan, PlanKind};
use crate::query::LocalizedQuery;
use colarm_data::{FocalSubset, RangeSpec};
use colarm_mine::rules::{Rule, SupportOracle};
use colarm_mine::ittree::ClosureSupportOracle;

/// Figure 13 counts for one focal subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalGlobalCounts {
    /// Locally frequent CFIs that are **not** globally frequent at the
    /// reference global minsupport — the itemsets global mining hides.
    pub fresh_local: usize,
    /// Locally frequent CFIs that are also globally frequent.
    pub repeated_global: usize,
    /// `|DQ|`.
    pub subset_size: usize,
}

impl LocalGlobalCounts {
    /// Total locally frequent CFIs examined.
    pub fn local_total(&self) -> usize {
        self.fresh_local + self.repeated_global
    }

    /// Fraction of local CFIs that are fresh (hidden globally).
    pub fn fresh_fraction(&self) -> f64 {
        let total = self.local_total();
        if total == 0 {
            0.0
        } else {
            self.fresh_local as f64 / total as f64
        }
    }
}

/// Count fresh-local vs repeated-global CFIs for a subset: a stored CFI is
/// *locally frequent* when its support within `DQ` reaches `local_minsupp`
/// and *globally frequent* when its dataset-wide support reaches
/// `global_minsupp`.
pub fn local_vs_global_cfis(
    index: &MipIndex,
    subset: &FocalSubset,
    local_minsupp: f64,
    global_minsupp: f64,
) -> LocalGlobalCounts {
    let local_min = ((local_minsupp * subset.len() as f64) - 1e-9).ceil().max(1.0) as usize;
    let global_min = ((global_minsupp * index.dataset().num_records() as f64) - 1e-9)
        .ceil()
        .max(1.0) as usize;
    let (mut fresh, mut repeated) = (0usize, 0usize);
    for (_, cfi) in index.ittree().iter() {
        let local = cfi.tids.intersect_count(subset.tids());
        if local < local_min {
            continue;
        }
        if cfi.support() >= global_min {
            repeated += 1;
        } else {
            fresh += 1;
        }
    }
    LocalGlobalCounts {
        fresh_local: fresh,
        repeated_global: repeated,
        subset_size: subset.len(),
    }
}

/// A localized rule annotated with its global behaviour (or vice versa).
#[derive(Debug, Clone, PartialEq)]
pub struct ContrastedRule {
    /// The rule, with counts from the context where it *holds*.
    pub rule: Rule,
    /// Its support in the other context.
    pub other_support: f64,
    /// Its confidence in the other context.
    pub other_confidence: f64,
}

/// Full Simpson's-paradox report for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParadoxReport {
    /// Rules valid in the focal subset but failing the same thresholds
    /// globally — hidden from any global mining run.
    pub fresh_local_rules: Vec<ContrastedRule>,
    /// Rules valid globally but failing in the focal subset — global
    /// trends that do not hold for this subpopulation.
    pub vanished_global_rules: Vec<ContrastedRule>,
    /// Figure 13 itemset counts at the query's thresholds.
    pub cfi_counts: LocalGlobalCounts,
}

/// Analyze Simpson's paradox for a localized query: compare the localized
/// answer with the global answer at identical thresholds.
pub fn analyze(index: &MipIndex, query: &LocalizedQuery) -> Result<ParadoxReport, ColarmError> {
    let subset = index.resolve_subset(query.range.clone())?;
    if subset.is_empty() {
        return Err(ColarmError::EmptySubset);
    }
    let local = execute_plan(index, query, &subset, PlanKind::SsEuv)?;
    let mut global_query = query.clone();
    global_query.range = RangeSpec::all();
    let everything = index.resolve_subset(RangeSpec::all())?;
    let global = execute_plan(index, &global_query, &everything, PlanKind::SsEuv)?;

    let m = index.dataset().num_records();
    let mut global_oracle = ClosureSupportOracle::new(index.ittree(), None);
    let fresh_local_rules = local
        .rules
        .iter()
        .filter_map(|r| {
            let body = r.body();
            let body_g = global_oracle.support_count(&body)? as f64;
            let ante_g = global_oracle.support_count(&r.antecedent)? as f64;
            let supp_g = body_g / m as f64;
            let conf_g = if ante_g == 0.0 { 0.0 } else { body_g / ante_g };
            (supp_g + 1e-9 < query.minsupp || conf_g + 1e-9 < query.minconf).then(|| {
                ContrastedRule {
                    rule: r.clone(),
                    other_support: supp_g,
                    other_confidence: conf_g,
                }
            })
        })
        .collect();

    let mut local_oracle = ClosureSupportOracle::new(index.ittree(), Some(subset.tids()));
    let dq = subset.len();
    let vanished_global_rules = global
        .rules
        .iter()
        .filter_map(|r| {
            let body = r.body();
            let body_l = local_oracle.support_count(&body)? as f64;
            let ante_l = local_oracle.support_count(&r.antecedent)? as f64;
            let supp_l = body_l / dq as f64;
            let conf_l = if ante_l == 0.0 { 0.0 } else { body_l / ante_l };
            (supp_l + 1e-9 < query.minsupp || conf_l + 1e-9 < query.minconf).then(|| {
                ContrastedRule {
                    rule: r.clone(),
                    other_support: supp_l,
                    other_confidence: conf_l,
                }
            })
        })
        .collect();

    let cfi_counts = local_vs_global_cfis(index, &subset, query.minsupp, query.minsupp);
    Ok(ParadoxReport {
        fresh_local_rules,
        vanished_global_rules,
        cfi_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn index() -> MipIndex {
        MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn the_paper_walkthrough_is_a_paradox() {
        // RL holds for Seattle women (75 % / 100 %) but fails globally; RG
        // holds globally (45 % / 83 %) but fails in the subset.
        let index = index();
        let schema = index.dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.45)
            .minconf(0.8)
            .build().unwrap();
        let report = analyze(&index, &query).unwrap();
        let a1 = schema.encode_named("Age", "30-40").unwrap();
        let a0 = schema.encode_named("Age", "20-30").unwrap();
        assert!(
            report
                .fresh_local_rules
                .iter()
                .any(|c| c.rule.antecedent.contains(a1)),
            "RL must be fresh-local"
        );
        assert!(
            report
                .vanished_global_rules
                .iter()
                .any(|c| c.rule.antecedent.contains(a0)),
            "RG must vanish locally"
        );
        // The contrast numbers for RG: local support of (A0,S2) is 0/4.
        let rg = report
            .vanished_global_rules
            .iter()
            .find(|c| c.rule.antecedent.contains(a0))
            .unwrap();
        assert_eq!(rg.other_support, 0.0);
    }

    #[test]
    fn cfi_counts_partition_local_itemsets() {
        let index = index();
        let schema = index.dataset().schema().clone();
        let spec = colarm_data::RangeSpec::all()
            .with_named(&schema, "Location", &["Seattle"])
            .unwrap();
        let subset = index.resolve_subset(spec).unwrap();
        let counts = local_vs_global_cfis(&index, &subset, 0.5, 0.5);
        assert_eq!(counts.subset_size, 4);
        assert!(counts.local_total() > 0);
        assert!(counts.fresh_local > 0, "Seattle has its own patterns");
        assert!(counts.fresh_fraction() > 0.0 && counts.fresh_fraction() <= 1.0);
    }

    #[test]
    fn global_subset_has_no_fresh_cfis() {
        let index = index();
        let subset = index.resolve_subset(colarm_data::RangeSpec::all()).unwrap();
        let counts = local_vs_global_cfis(&index, &subset, 0.4, 0.4);
        assert_eq!(counts.fresh_local, 0, "DQ = D cannot hide anything");
    }
}
