//! # COLARM — Cost-based Optimization for Localized Association Rule Mining
//!
//! A from-scratch Rust implementation of the COLARM system (Mukherji,
//! Rundensteiner & Ward, *EDBT 2014*): online mining of association rules
//! that hold inside a user-chosen **focal subset** of a relational dataset
//! — rules that are locally significant yet hidden in the global context
//! (Simpson's paradox).
//!
//! ## Architecture (paper Figure 2)
//!
//! * **Offline**: [`mip::MipIndex::build`] mines closed frequent itemsets
//!   at a *primary support threshold* (CHARM) and stores each itemset's
//!   multidimensional bounding box in a packed **Supported R-tree** and
//!   its composition + tidset in a **closed IT-tree**, together with the
//!   index statistics the cost model needs.
//! * **Online**: a [`query::LocalizedQuery`] (built fluently or parsed
//!   from the paper's `REPORT LOCALIZED ASSOCIATION RULES …` language) is
//!   executed by one of **six plans** ([`plan::PlanKind`]) pipelining the
//!   isolated operators of [`ops`]; the [`optimizer::Optimizer`] picks the
//!   plan with the lowest estimated cost from the formulae in [`cost`].
//!
//! ## Quickstart
//!
//! ```
//! use colarm::{Colarm, MipIndexConfig};
//!
//! // Offline: index the paper's Table 1 salary dataset.
//! let colarm = Colarm::build(
//!     colarm::data::synth::salary(),
//!     MipIndexConfig { primary_support: 2.0 / 11.0, ..Default::default() },
//! )
//! .unwrap();
//!
//! // Online: localized rules for female employees in Seattle.
//! let out = colarm
//!     .run_text(
//!         "REPORT LOCALIZED ASSOCIATION RULES FROM Dataset salary \
//!          WHERE RANGE Location = (Seattle), Gender = (F) \
//!          HAVING minsupport = 75% AND minconfidence = 90%;",
//!     )
//!     .unwrap();
//! assert!(!out.rules.is_empty()); // RL = (Age=30-40 → Salary=90K-120K)
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod advisor;
pub mod compat;
pub mod cost;
pub mod engine;
pub mod error;
pub mod explain;
pub mod framework;
pub mod lru;
pub mod mip;
pub mod ops;
pub mod optimizer;
pub mod paradox;
pub mod persist;
pub mod parse;
pub mod plan;
pub mod query;
pub mod request;
pub mod reuse;
pub mod server;
pub mod session;
pub mod stats;

pub use cost::{CostEstimate, CostTerm, SelectReuse};
pub use engine::{pipeline_ops, Batch, CancelToken, Ctx, PlanOp, QueryLimits, ENGINE_BATCH};
pub use error::ColarmError;
pub use explain::{explain, AnalyzeReport, AnalyzedAnswer, AnalyzedOp, Explanation};
pub use framework::{Colarm, OptimizedAnswer};
pub use mip::{MipIndex, MipIndexConfig, Packing};
pub use optimizer::{FeedbackEntry, FeedbackLog, Mispick, Optimizer, PlanChoice};
pub use parse::parse_query;
pub use persist::{
    load_index, load_index_with_constants, load_index_with_mode, save_index,
    save_index_v3_with_constants, save_index_with_constants, IndexSnapshot, SnapshotHeader,
    SnapshotReader, SnapshotStats, SnapshotWriter, ValidationMode,
};
pub use stats::{CatalogHints, StatsCatalog, StatsSource};
pub use ops::{ExecOptions, OpKind, OpTrace};
pub use plan::{
    execute_plan, execute_plan_hooked, execute_plan_limited, execute_plan_with, ExecutionTrace,
    PlanKind, QueryAnswer,
};
pub use query::{LocalizedQuery, Semantics};
pub use request::{QueryOutcome, QueryRequest};
pub use server::{
    Clock, ColarmServer, MockClock, ServerConfig, ServerHandle, SystemClock, TransportConfig,
    TransportStats, DEFAULT_INDEX,
};
pub use reuse::{ColumnReuse, ColumnStore};
pub use session::{QuerySession, SessionConfig, SessionStats};

pub use colarm_data::metrics::OpMetrics;
pub use colarm_data::par::{pool_stats, PoolStats};

// Re-export the substrate crates so downstream users need only `colarm`.
pub use colarm_data as data;
pub use colarm_mine as mine;
pub use colarm_rtree as rtree;
