//! The isolated online-mining operators (paper §4).
//!
//! Each step of localized rule mining is an operator with precise inputs
//! and outputs, so plans can pipeline them differently and the cost model
//! can be validated operator by operator. Every operator returns an
//! [`OpTrace`] carrying cardinalities, raw cost units (the quantities the
//! cost formulae count) and wall-clock duration.
//!
//! * [`search`] — `S[Arange, R-tree] → {I_S^Q}`: hull range search.
//! * [`supported_search`] — `SS[Arange, minsupp] → {I_SS^Q}`: range search
//!   with the supported R-tree bound of Lemma 4.4.
//! * [`classify`] — splits candidates into contained / partial (exact,
//!   per §3.4) and drops hull false positives; used by SS-E-U-V.
//! * [`eliminate`] — `E[{I}, Aitem, minsupp] → {I_E^Q}`: `Aitem`
//!   projection plus record-level local-support checks.
//! * [`verify`] — `V[{I_E^Q}, minconf] → {R^Q}`: rule generation +
//!   confidence verification through IT-tree closure lookups.
//! * [`supported_verify`] — `VS[...]`: ELIMINATE merged into VERIFY
//!   (selection push-up, §4.2).
//! * [`union_lists`] — `U`: constant-time merge of disjoint lists.
//! * [`select`] / [`arm`] — the traditional plan: extract `DQ`, mine it
//!   from scratch, generate rules.
//!
//! ## Body semantics (see DESIGN.md)
//!
//! Rule bodies are the itemsets the MIP-index prestores, restricted to the
//! query's item attributes: itemsets that are **closed within the `Aitem`
//! projection of the whole dataset** (`B = closure_G(B) ∩ Aitem`) and meet
//! the primary support threshold (paper footnote 2 — the POQM contract).
//! The index plans derive them by projecting each hull-candidate CFI onto
//! `Aitem` and canonicalizing through one IT-tree closure lookup (the
//! closure's tidset *is* the body's global tidset, so local supports are
//! one tidset intersection); the ARM plan mines every locally frequent
//! itemset from scratch (trie-based Apriori — the "traditional two-step"
//! `εAR`) and keeps exactly the bodies passing the same
//! projection-closure + primary tests. Every rule antecedent `X ⊆ B` has
//! `supp_G(X) ≥ supp_G(B) ≥ primary`, so local antecedent supports always
//! resolve through prestored tidsets.

use crate::mip::MipIndex;
use crate::query::{LocalizedQuery, Semantics};
use colarm_data::metrics::{Meter, OpMetrics};
use colarm_data::{FocalSubset, ItemId, Itemset, Overlap, Tidset};
use colarm_mine::ittree::ClosureSupportOracle;
use colarm_mine::rules::{rules_for_itemset, Rule, SupportOracle};
use colarm_mine::vertical::{derive_restricted_par, restricted_vertical_par, ItemTids};
use colarm_mine::CfiId;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// The nine mining operators, as a typed key. `Display` (and
/// [`OpKind::name`]) render exactly the names the cost model's term
/// names and the pre-engine string traces used, so rendered output is
/// unchanged — but trace and cost-term lookups compare this enum, never
/// display strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// `S`: hull range search.
    Search,
    /// `SS`: range search with the Lemma 4.4 support bound.
    SupportedSearch,
    /// Contained/partial split (SS-E-U-V); priced into its neighbours.
    Classify,
    /// `E`: projection + record-level local-support checks.
    Eliminate,
    /// `U`: constant-time merge of disjoint candidate lists.
    Union,
    /// `V`: rule generation + confidence verification.
    Verify,
    /// `VS`: ELIMINATE merged into VERIFY (selection push-up).
    SupportedVerify,
    /// `σ`: focal-subset extraction for the traditional plan.
    Select,
    /// `εAR`: from-scratch mining over the subset.
    Arm,
}

impl OpKind {
    /// All operators, in a fixed order.
    pub const ALL: [OpKind; 9] = [
        OpKind::Search,
        OpKind::SupportedSearch,
        OpKind::Classify,
        OpKind::Eliminate,
        OpKind::Union,
        OpKind::Verify,
        OpKind::SupportedVerify,
        OpKind::Select,
        OpKind::Arm,
    ];

    /// The operator's name — identical to the pre-`OpKind` trace strings
    /// and to the cost model's term names.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Search => "SEARCH",
            OpKind::SupportedSearch => "SUPPORTED-SEARCH",
            OpKind::Classify => "CLASSIFY",
            OpKind::Eliminate => "ELIMINATE",
            OpKind::Union => "UNION",
            OpKind::Verify => "VERIFY",
            OpKind::SupportedVerify => "SUPPORTED-VERIFY",
            OpKind::Select => "SELECT",
            OpKind::Arm => "ARM",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Serialized reports (EXPLAIN ANALYZE JSON) carried plain name strings
// before the typed key existed; keep the wire format identical.
impl serde::Serialize for OpKind {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.name())
    }
}

impl OpKind {
    /// The inverse of [`OpKind::name`] — resolves the wire name string
    /// back to the typed operator.
    pub fn from_name(name: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

// The typed key deserializes from the same name strings it serializes
// as, so analyze reports and wire traces round-trip through JSON.
impl<'de> serde::Deserialize<'de> for OpKind {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl serde::de::Visitor<'_> for V {
            type Value = OpKind;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("an operator name string")
            }
            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<OpKind, E> {
                OpKind::from_name(v)
                    .ok_or_else(|| E::custom(format!("unknown operator name `{v}`")))
            }
        }
        deserializer.deserialize_str(V)
    }
}

/// Instrumentation for one operator execution. Part of the server wire
/// format (`QueryOutcome::trace`), so the field names are wire-stable.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpTrace {
    /// Which operator ran (its [`OpKind::name`] matches the cost model's
    /// term names).
    pub kind: OpKind,
    /// Input cardinality.
    pub input: usize,
    /// Output cardinality.
    pub output: usize,
    /// Raw cost units consumed (the quantity the cost formulae count:
    /// node accesses, record checks, …). Used for calibration.
    pub units: f64,
    /// Wall-clock time.
    pub duration: Duration,
    /// Execution counters (`Some` unless the executor stripped them
    /// because metrics reporting was disabled; see
    /// [`ExecOptions::with_metrics`]). Counter totals are bit-identical
    /// at every thread count — they fold in input order, and VERIFY's
    /// memo chunking depends only on input size.
    pub metrics: Option<OpMetrics>,
}

impl OpTrace {
    /// The operator's display name (`self.kind.name()`).
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

/// Execution options for the operators that can spread their per-candidate
/// work across threads (`eliminate`, `verify`, `supported_verify`,
/// `select`, `arm`).
///
/// `threads == 0` defers to the session default
/// ([`colarm_data::par::max_threads`], overridable via the
/// `COLARM_THREADS` environment variable or
/// [`colarm_data::par::set_max_threads`]); `threads == 1` forces the
/// sequential path. Outputs — rule sets, candidate lists, and `OpTrace`
/// unit totals — are bit-identical at every setting; only wall-clock
/// durations vary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker-thread cap (`0` = session default, `1` = sequential).
    pub threads: usize,
    /// Report execution counters in each [`OpTrace`] (`false` = strip
    /// them). The counters themselves ride on work that dwarfs them —
    /// an integer add per tidset intersection or node visit — so the
    /// flag controls *reporting*, not a separate collection pass; the
    /// disabled path costs the same within measurement noise.
    pub metrics: bool,
}

impl ExecOptions {
    /// Options pinned to a specific thread count.
    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    /// Toggle execution-counter reporting.
    pub fn with_metrics(mut self, metrics: bool) -> ExecOptions {
        self.metrics = metrics;
        self
    }
}

/// Below this many candidates the per-candidate work is cheaper than
/// spawning scoped threads, so the operators stay sequential.
pub(crate) const PAR_MIN_CANDIDATES: usize = 32;

/// A candidate body flowing between operators: the projection-closed
/// itemset plus the stored CFI whose tidset equals the body's global
/// tidset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The rule body.
    pub body: Itemset,
    /// A stored CFI whose tidset equals the body's global tidset.
    pub closure: CfiId,
    /// Local support count w.r.t. `DQ`, once established (by ELIMINATE,
    /// or for free by Lemma 4.5 on contained candidates).
    pub local_count: Option<usize>,
}

/// SEARCH: hull range search over the R-tree, no support bound. Outputs
/// raw candidate CFI ids ({I_S^Q} may contain false positives, never
/// false negatives).
pub fn search(index: &MipIndex, subset: &FocalSubset) -> (Vec<CfiId>, OpTrace) {
    run_search(OpKind::Search, index, subset, 0)
}

/// SUPPORTED-SEARCH: range search pruned by the global-support bound
/// `⌈minsupp · |DQ|⌉` (Lemma 4.4).
pub fn supported_search(
    index: &MipIndex,
    subset: &FocalSubset,
    minsupp_count: usize,
) -> (Vec<CfiId>, OpTrace) {
    run_search(OpKind::SupportedSearch, index, subset, minsupp_count as u32)
}

fn run_search(
    kind: OpKind,
    index: &MipIndex,
    subset: &FocalSubset,
    min_weight: u32,
) -> (Vec<CfiId>, OpTrace) {
    let start = Instant::now();
    let rect = index.range_rect(subset.spec());
    let (hits, counters) = index.rtree().query(&rect, min_weight);
    let out: Vec<CfiId> = hits.iter().map(|h| *h.payload).collect();
    let trace = OpTrace {
        kind,
        input: index.num_mips(),
        output: out.len(),
        units: counters.nodes_visited as f64,
        duration: start.elapsed(),
        metrics: Some(OpMetrics {
            scanned: index.num_mips() as u64,
            emitted: out.len() as u64,
            rtree_nodes: counters.nodes_visited as u64,
            ..OpMetrics::default()
        }),
    };
    (out, trace)
}

/// Project raw candidates onto `Aitem`, canonicalize through a closure
/// lookup, and deduplicate. Internal to ELIMINATE / SUPPORTED-VERIFY /
/// CLASSIFY (their traces absorb this work, as the paper folds the
/// `Aitem` filter into those operators).
fn project_bodies(
    index: &MipIndex,
    query: &LocalizedQuery,
    candidates: Vec<CfiId>,
) -> Vec<Candidate> {
    let mut seen: HashSet<Itemset> = HashSet::with_capacity(candidates.len());
    let mut out = Vec::with_capacity(candidates.len());
    project_bodies_into(index, query, &candidates, &mut seen, &mut out);
    out
}

/// Batch-friendly core of [`project_bodies`]: the dedup set persists
/// across calls, so a stream of candidate batches projects to exactly the
/// candidates (in the same order) one monolithic call would produce. The
/// engine's batched operators rely on this to stay bit-identical with the
/// free-function path.
pub(crate) fn project_bodies_into(
    index: &MipIndex,
    query: &LocalizedQuery,
    candidates: &[CfiId],
    seen: &mut HashSet<Itemset>,
    out: &mut Vec<Candidate>,
) {
    let schema = index.dataset().schema();
    let tree = index.ittree();
    for &id in candidates {
        let cfi = tree.get(id);
        let (body, closure) = match &query.item_attrs {
            None => (cfi.itemset.clone(), id),
            Some(_) => {
                let projected: Itemset = cfi
                    .itemset
                    .items()
                    .iter()
                    .copied()
                    .filter(|&i| query.admits_attribute(schema.item_attribute(i)))
                    .collect();
                if projected.is_empty() {
                    continue;
                }
                if projected.len() == cfi.itemset.len() {
                    (projected, id)
                } else {
                    // Canonicalize: body := closure(projection) ∩ Aitem.
                    let cl = tree
                        .closure(&projected)
                        .expect("projection of a stored CFI is covered");
                    let canonical: Itemset = tree
                        .get(cl)
                        .itemset
                        .items()
                        .iter()
                        .copied()
                        .filter(|&i| query.admits_attribute(schema.item_attribute(i)))
                        .collect();
                    (canonical, cl)
                }
            }
        };
        if seen.insert(body.clone()) {
            out.push(Candidate {
                body,
                closure,
                local_count: None,
            });
        }
    }
}

/// Split candidates into (contained, partial) per the exact §3.4 test,
/// dropping disjoint hull false positives. Contained candidates get their
/// local count for free (Lemma 4.5: `supp_Q = supp_G`).
pub fn classify(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    candidates: Vec<CfiId>,
) -> (Vec<Candidate>, Vec<Candidate>, OpTrace) {
    let start = Instant::now();
    let input = candidates.len();
    let bodies = project_bodies(index, query, candidates);
    let (mut contained, mut partial) = (Vec::new(), Vec::new());
    classify_bodies(index, subset, bodies, &mut contained, &mut partial);
    let trace = OpTrace {
        kind: OpKind::Classify,
        input,
        output: contained.len() + partial.len(),
        units: input as f64,
        duration: start.elapsed(),
        // Contained candidates leave with a free local count (Lemma 4.5) —
        // record checks the downstream ELIMINATE never has to pay.
        metrics: Some(OpMetrics {
            scanned: input as u64,
            emitted: (contained.len() + partial.len()) as u64,
            cache_hits: contained.len() as u64,
            ..OpMetrics::default()
        }),
    };
    (contained, partial, trace)
}

/// Batch-friendly core of [`classify`]: the contained/partial split over
/// already-projected bodies, appending to caller-held output lists so a
/// stream of body batches classifies to exactly what one monolithic call
/// would produce.
pub(crate) fn classify_bodies(
    index: &MipIndex,
    subset: &FocalSubset,
    bodies: Vec<Candidate>,
    contained: &mut Vec<Candidate>,
    partial: &mut Vec<Candidate>,
) {
    let schema = index.dataset().schema();
    for mut c in bodies {
        // Classification runs on the *closure's* full itemset: its box
        // bounds every record supporting the body, so containment makes
        // both the local support AND the local closure equal their global
        // counterparts (Lemma 4.5, extended) — no record-level work.
        match subset
            .spec()
            .classify(schema, &index.ittree().get(c.closure).itemset)
        {
            Overlap::Contained => {
                c.local_count = Some(index.ittree().get(c.closure).support());
                contained.push(c);
            }
            Overlap::Partial => partial.push(c),
            Overlap::Disjoint => {}
        }
    }
}

/// ELIMINATE over raw search output: `Aitem` projection plus record-level
/// local-support checks.
pub fn eliminate(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    candidates: Vec<CfiId>,
    minsupp_count: usize,
) -> (Vec<Candidate>, OpTrace) {
    eliminate_with(
        index,
        query,
        subset,
        candidates,
        minsupp_count,
        ExecOptions::default(),
    )
}

/// [`eliminate`] with explicit execution options.
pub fn eliminate_with(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    candidates: Vec<CfiId>,
    minsupp_count: usize,
    opts: ExecOptions,
) -> (Vec<Candidate>, OpTrace) {
    let start = Instant::now();
    let input = candidates.len();
    let bodies = project_bodies(index, query, candidates);
    let (out, meter) = eliminate_bodies(index, subset, bodies, minsupp_count, opts.threads);
    let trace = OpTrace {
        kind: OpKind::Eliminate,
        input,
        output: out.len(),
        units: meter.units,
        duration: start.elapsed(),
        metrics: Some(meter.metrics),
    };
    (out, trace)
}

/// ELIMINATE over already-projected candidates (the SS-E-U-V path, where
/// CLASSIFY projected them while splitting contained from partial).
pub fn eliminate_projected(
    index: &MipIndex,
    subset: &FocalSubset,
    candidates: Vec<Candidate>,
    minsupp_count: usize,
) -> (Vec<Candidate>, OpTrace) {
    eliminate_projected_with(index, subset, candidates, minsupp_count, ExecOptions::default())
}

/// [`eliminate_projected`] with explicit execution options.
pub fn eliminate_projected_with(
    index: &MipIndex,
    subset: &FocalSubset,
    candidates: Vec<Candidate>,
    minsupp_count: usize,
    opts: ExecOptions,
) -> (Vec<Candidate>, OpTrace) {
    let start = Instant::now();
    let input = candidates.len();
    let (out, meter) = eliminate_bodies(index, subset, candidates, minsupp_count, opts.threads);
    let trace = OpTrace {
        kind: OpKind::Eliminate,
        input,
        output: out.len(),
        units: meter.units,
        duration: start.elapsed(),
        metrics: Some(meter.metrics),
    };
    (out, trace)
}

/// Per-candidate support check: the qualifying local count (if the
/// candidate survives the threshold) and the cost units charged. Pure in
/// the candidate, so ELIMINATE can fan checks out across threads.
fn check_body(
    index: &MipIndex,
    subset: &FocalSubset,
    c: &Candidate,
    minsupp_count: usize,
) -> (Option<usize>, Meter) {
    let mut meter = Meter::default();
    meter.metrics.scanned = 1;
    if let Some(local) = c.local_count {
        // Contained candidate: Lemma 4.5 already finalized it.
        meter.metrics.cache_hits = 1;
        let verdict = if local >= minsupp_count { Some(local) } else { None };
        return (verdict, meter);
    }
    // Record-level check: |t(body) ∩ t(DQ)|. The paper charges |DQ|
    // per candidate; the galloping intersection is cheaper but remains
    // the record-level term of the model.
    let tids = &index.ittree().get(c.closure).tids;
    meter.metrics.note_intersection(tids, subset.tids());
    let local = tids.intersect_count(subset.tids());
    meter.units = subset.len() as f64;
    let verdict = if local >= minsupp_count { Some(local) } else { None };
    (verdict, meter)
}

pub(crate) fn eliminate_bodies(
    index: &MipIndex,
    subset: &FocalSubset,
    bodies: Vec<Candidate>,
    minsupp_count: usize,
    threads: usize,
) -> (Vec<Candidate>, Meter) {
    let threads = if bodies.len() < PAR_MIN_CANDIDATES {
        1
    } else {
        colarm_data::par::resolve_threads(threads)
    };
    // In-order fold of per-candidate verdicts and charges. Every unit
    // increment is an integer-valued f64 far below 2^53, so the sum is
    // exact — the same bits — at any thread count, and the counter block
    // folds fieldwise the same way.
    let (checks, mut meter) = colarm_data::par::parallel_map_fold(&bodies, threads, |_, c| {
        check_body(index, subset, c, minsupp_count)
    });
    let mut out = Vec::new();
    for (mut c, verdict) in bodies.into_iter().zip(checks) {
        if let Some(local) = verdict {
            c.local_count = Some(local);
            out.push(c);
        }
    }
    meter.metrics.emitted = out.len() as u64;
    (out, meter)
}

/// VERIFY: generate rules from qualified candidates and keep those whose
/// local confidence meets `minconf`. Local antecedent supports come from
/// IT-tree closure lookups intersected with `DQ` (shared memo cache).
pub fn verify(
    index: &MipIndex,
    subset: &FocalSubset,
    candidates: &[Candidate],
    minconf: f64,
) -> (Vec<Rule>, OpTrace) {
    verify_with(index, subset, candidates, minconf, ExecOptions::default())
}

/// [`verify`] with explicit execution options.
pub fn verify_with(
    index: &MipIndex,
    subset: &FocalSubset,
    candidates: &[Candidate],
    minconf: f64,
    opts: ExecOptions,
) -> (Vec<Rule>, OpTrace) {
    let start = Instant::now();
    let (rules, meter) = verify_candidates(index, subset, candidates, minconf, opts.threads);
    let trace = OpTrace {
        kind: OpKind::Verify,
        input: candidates.len(),
        output: rules.len(),
        units: meter.units,
        duration: start.elapsed(),
        metrics: Some(meter.metrics),
    };
    (rules, trace)
}

/// How many candidates share one closure-lookup memo in VERIFY. Chunk
/// boundaries are a function of input size **only** — never the thread
/// count — so each memo's hit/miss sequence (and the intersections the
/// misses trigger) is part of the deterministic output, not a scheduling
/// artifact. A sequential run executes the exact same chunks in order.
pub(crate) const VERIFY_MEMO_SPAN: usize = 32;

/// Shared VERIFY core: rule generation + confidence checks over qualified
/// candidates, optionally chunked across threads. Each chunk runs its own
/// [`ClosureSupportOracle`] (the memo only affects speed, never values);
/// rules, unit sums and counters merge in candidate order, so the output —
/// ordering and metrics included — is bit-identical at every thread count.
pub(crate) fn verify_candidates(
    index: &MipIndex,
    subset: &FocalSubset,
    candidates: &[Candidate],
    minconf: f64,
    threads: usize,
) -> (Vec<Rule>, Meter) {
    let threads = if candidates.len() < PAR_MIN_CANDIDATES {
        1
    } else {
        colarm_data::par::resolve_threads(threads)
    };
    let run_chunk = |chunk: &[Candidate]| -> (Vec<Rule>, Meter) {
        let mut oracle = ClosureSupportOracle::new(index.ittree(), Some(subset.tids()));
        let mut rules = Vec::new();
        let mut meter = Meter::default();
        for c in chunk {
            let local = c
                .local_count
                .expect("VERIFY requires established local counts");
            meter.units += (c.body.len() * subset.len()) as f64;
            rules_for_itemset(&c.body, local, &mut oracle, minconf, &mut rules);
        }
        meter.metrics = oracle.metrics();
        meter.metrics.scanned = chunk.len() as u64;
        meter.metrics.emitted = rules.len() as u64;
        (rules, meter)
    };
    if candidates.len() <= VERIFY_MEMO_SPAN {
        return run_chunk(candidates);
    }
    // Chunks amortize each memo over VERIFY_MEMO_SPAN candidates; spans
    // far shorter than the input keep skewed chunks balanced across
    // workers. The same chunking runs sequentially when threads == 1.
    let chunks: Vec<&[Candidate]> = candidates.chunks(VERIFY_MEMO_SPAN).collect();
    let (rule_blocks, meter) =
        colarm_data::par::parallel_map_fold(&chunks, threads, |_, chunk| run_chunk(chunk));
    (rule_blocks.into_iter().flatten().collect(), meter)
}

/// SUPPORTED-VERIFY: ELIMINATE merged into VERIFY (selection push-up).
/// Takes raw search output, projects onto `Aitem`, computes local
/// supports, checks `minsupp`, and generates/checks rules in one pass.
pub fn supported_verify(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    candidates: Vec<CfiId>,
    minsupp_count: usize,
    minconf: f64,
) -> (Vec<Rule>, OpTrace) {
    supported_verify_with(
        index,
        query,
        subset,
        candidates,
        minsupp_count,
        minconf,
        ExecOptions::default(),
    )
}

/// [`supported_verify`] with explicit execution options.
pub fn supported_verify_with(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    candidates: Vec<CfiId>,
    minsupp_count: usize,
    minconf: f64,
    opts: ExecOptions,
) -> (Vec<Rule>, OpTrace) {
    let start = Instant::now();
    let input = candidates.len();
    let bodies = project_bodies(index, query, candidates);
    let (qualified, eliminate_meter) =
        eliminate_bodies(index, subset, bodies, minsupp_count, opts.threads);
    let (rules, verify_meter) =
        verify_candidates(index, subset, &qualified, minconf, opts.threads);
    let mut metrics = eliminate_meter.metrics + verify_meter.metrics;
    // The fused operator's interface counts are its own ends, not the
    // internal hand-off between the eliminate and verify halves.
    metrics.scanned = input as u64;
    metrics.emitted = rules.len() as u64;
    let trace = OpTrace {
        kind: OpKind::SupportedVerify,
        input,
        output: rules.len(),
        units: eliminate_meter.units + verify_meter.units,
        duration: start.elapsed(),
        metrics: Some(metrics),
    };
    (rules, trace)
}

/// UNION: merge the contained and partial candidate lists (constant-time
/// bookkeeping — the two sets are mutually exclusive by construction, as
/// bodies are canonicalized and deduplicated before classification).
pub fn union_lists(mut a: Vec<Candidate>, mut b: Vec<Candidate>) -> (Vec<Candidate>, OpTrace) {
    let start = Instant::now();
    let input = a.len() + b.len();
    a.append(&mut b);
    let trace = OpTrace {
        kind: OpKind::Union,
        input,
        output: a.len(),
        units: 1.0,
        duration: start.elapsed(),
        metrics: Some(OpMetrics {
            scanned: input as u64,
            emitted: a.len() as u64,
            ..OpMetrics::default()
        }),
    };
    (a, trace)
}

/// SELECT (`σ`): extract the focal subset as a vertical database
/// restricted to the query's item attributes.
pub fn select(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
) -> (Vec<ItemTids>, OpTrace) {
    select_with(index, query, subset, ExecOptions::default())
}

/// [`select`] with explicit execution options.
pub fn select_with(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    opts: ExecOptions,
) -> (Vec<ItemTids>, OpTrace) {
    let start = Instant::now();
    let attrs: Option<Vec<colarm_data::AttributeId>> = query.item_attrs.clone();
    let columns = restricted_vertical_par(
        index.dataset(),
        index.vertical(),
        Some(subset.tids()),
        attrs.as_deref(),
        opts.threads,
    );
    let trace = OpTrace {
        kind: OpKind::Select,
        input: index.dataset().num_records(),
        output: subset.len(),
        units: subset.len() as f64 * index.dataset().schema().num_attributes() as f64,
        duration: start.elapsed(),
        // Every restricted column is produced by one vertical-index
        // intersection against the focal tidset.
        metrics: Some({
            let mut m = OpMetrics {
                scanned: index.dataset().num_records() as u64,
                emitted: columns.len() as u64,
                ..OpMetrics::default()
            };
            for c in &columns {
                m.note_intersection(index.vertical().tids(c.item), subset.tids());
            }
            m
        }),
    };
    (columns, trace)
}

/// SELECT served from a session's **exact** cached materialization: no
/// tid-list is touched. The trace keeps the fresh scan's `units` formula
/// so rule answers, budgets, and traces are independent of cache state;
/// only the metrics counters reveal the cache (every emitted column is a
/// `cache_hits` entry and no intersection runs).
pub fn select_cached(index: &MipIndex, subset: &FocalSubset, columns: &[ItemTids]) -> OpTrace {
    let start = Instant::now();
    OpTrace {
        kind: OpKind::Select,
        input: index.dataset().num_records(),
        output: subset.len(),
        units: subset.len() as f64 * index.dataset().schema().num_attributes() as f64,
        duration: start.elapsed(),
        metrics: Some(OpMetrics {
            scanned: index.dataset().num_records() as u64,
            emitted: columns.len() as u64,
            cache_hits: columns.len() as u64,
            ..OpMetrics::default()
        }),
    }
}

/// SELECT **derived** from a cached parent materialization (drill-down
/// reuse): every parent column is intersected with the refined subset —
/// output bit-identical to the fresh scan (the
/// [`derive_restricted_par`] contract), same `units` formula, while the
/// metrics show the derivation: `cache_hits` counts reused parent
/// columns and the intersection counters classify the
/// parent-column ∩ subset kernels actually run.
pub fn select_derived(
    index: &MipIndex,
    subset: &FocalSubset,
    parent: &[ItemTids],
    opts: ExecOptions,
) -> (Vec<ItemTids>, OpTrace) {
    let start = Instant::now();
    let columns = derive_restricted_par(parent, subset.tids(), opts.threads);
    let trace = OpTrace {
        kind: OpKind::Select,
        input: index.dataset().num_records(),
        output: subset.len(),
        units: subset.len() as f64 * index.dataset().schema().num_attributes() as f64,
        duration: start.elapsed(),
        metrics: Some({
            let mut m = OpMetrics {
                scanned: index.dataset().num_records() as u64,
                emitted: columns.len() as u64,
                cache_hits: parent.len() as u64,
                ..OpMetrics::default()
            };
            for c in parent {
                m.note_intersection(&c.tids, subset.tids());
            }
            m
        }),
    };
    (columns, trace)
}

/// ARM (`εAR`): the traditional plan — re-mine from scratch, without the
/// MIP-index.
///
/// Under [`Semantics::Strict`] it must produce the POQM answer contract
/// (projection-closed, primary-frequent bodies), so it re-runs the
/// *offline* mining per query: CHARM over the full dataset restricted to
/// the items that are locally frequent in `DQ` (any body item must be),
/// at the primary threshold, followed by local threshold verification
/// against a freshly built throw-away IT-tree. This is exactly the
/// "prohibitively costly" work the POQM paradigm prestores (paper §1.3) —
/// but it shrinks with selective queries, which is why ARM can win on
/// very dense indexes at high minsupport (the paper's PUMSB cases).
///
/// Under [`Semantics::Unrestricted`] it is the classic two-step pipeline
/// over the subset alone: locally-closed bodies, including those below
/// the primary threshold (invisible to the index).
pub fn arm(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    columns: &[ItemTids],
    minsupp_count: usize,
    minconf: f64,
) -> (Vec<Rule>, OpTrace) {
    arm_with(
        index,
        query,
        subset,
        columns,
        minsupp_count,
        minconf,
        ExecOptions::default(),
    )
}

/// [`arm`] with explicit execution options (the CHARM runs fan their
/// first-level branches out across threads).
pub fn arm_with(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    columns: &[ItemTids],
    minsupp_count: usize,
    minconf: f64,
    opts: ExecOptions,
) -> (Vec<Rule>, OpTrace) {
    let start = Instant::now();
    let mut rules = Vec::new();
    let mut units;
    let mut metrics = OpMetrics::default();
    match query.semantics {
        Semantics::Strict => {
            // `columns` are already restricted to DQ ∩ Aitem, so their
            // lengths are the local item supports.
            let miner_columns: Vec<ItemTids> = columns
                .iter()
                .filter(|c| c.tids.len() >= minsupp_count)
                .map(|c| ItemTids {
                    item: c.item,
                    tids: index.vertical().tids(c.item).clone(),
                })
                .collect();
            units = subset.len() as f64 * columns.len().max(1) as f64;
            units += miner_columns
                .iter()
                .map(|c| c.tids.len() as f64)
                .sum::<f64>();
            let mined =
                colarm_mine::charm_par(&miner_columns, index.primary_count(), opts.threads);
            // Mining work ∝ the tidset volume of what was enumerated.
            units += mined.iter().map(|c| c.tids.len() as f64).sum::<f64>();
            let schema = index.dataset().schema();
            let scratch_tree = colarm_mine::ClosedItTree::build(
                mined,
                schema.num_items(),
                index.dataset().num_records() as u32,
            );
            let mut oracle =
                ClosureSupportOracle::new(&scratch_tree, Some(subset.tids()));
            for (_, c) in scratch_tree.iter() {
                metrics.scanned += 1;
                if c.itemset.len() < 2 {
                    continue;
                }
                units += subset.len() as f64;
                metrics.note_intersection(&c.tids, subset.tids());
                let local = c.tids.intersect_count(subset.tids());
                if local >= minsupp_count {
                    rules_for_itemset(&c.itemset, local, &mut oracle, minconf, &mut rules);
                }
            }
            metrics += oracle.metrics();
        }
        Semantics::Unrestricted => {
            units = subset.len() as f64 * columns.len().max(1) as f64;
            // Classic two-step mining: closed local itemsets, then rules.
            let closed = colarm_mine::charm_par(columns, minsupp_count, opts.threads);
            units += closed.len() as f64;
            let mut oracle = SubsetOracle::new(columns, subset.len());
            for c in closed {
                metrics.scanned += 1;
                rules_for_itemset(&c.itemset, c.tids.len(), &mut oracle, minconf, &mut rules);
            }
            metrics += oracle.stats;
        }
    }
    metrics.emitted = rules.len() as u64;
    let trace = OpTrace {
        kind: OpKind::Arm,
        input: subset.len(),
        output: rules.len(),
        units,
        duration: start.elapsed(),
        metrics: Some(metrics),
    };
    (rules, trace)
}

/// Support oracle over an extracted subset's vertical columns (used by the
/// ARM plan: exact local supports, memoized).
struct SubsetOracle {
    tids: HashMap<ItemId, Tidset>,
    cache: HashMap<Itemset, Option<usize>>,
    universe: usize,
    stats: OpMetrics,
}

impl SubsetOracle {
    fn new(columns: &[ItemTids], universe: usize) -> Self {
        SubsetOracle {
            tids: columns.iter().map(|c| (c.item, c.tids.clone())).collect(),
            cache: HashMap::new(),
            universe,
            stats: OpMetrics::default(),
        }
    }
}

impl SupportOracle for SubsetOracle {
    fn support_count(&mut self, itemset: &Itemset) -> Option<usize> {
        self.stats.support_lookups += 1;
        if let Some(&c) = self.cache.get(itemset) {
            self.stats.cache_hits += 1;
            return c;
        }
        let mut lists: Vec<&Tidset> = Vec::with_capacity(itemset.len());
        for &item in itemset.items() {
            match self.tids.get(&item) {
                Some(t) => lists.push(t),
                None => {
                    self.cache.insert(itemset.clone(), Some(0));
                    return Some(0);
                }
            }
        }
        lists.sort_by_key(|t| t.len());
        let count = match lists.split_first() {
            None => self.universe,
            Some((first, rest)) => {
                let mut acc = (*first).clone();
                for t in rest {
                    if acc.is_empty() {
                        break;
                    }
                    self.stats.note_intersection(&acc, t);
                    acc = acc.intersect(t);
                }
                acc.len()
            }
        };
        self.cache.insert(itemset.clone(), Some(count));
        Some(count)
    }

    fn universe(&self) -> usize {
        self.universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn setup() -> (MipIndex, LocalizedQuery, FocalSubset) {
        let index = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let schema = index.dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build().unwrap();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        (index, query, subset)
    }

    fn rule_key(r: &Rule) -> (Itemset, Itemset) {
        (r.antecedent.clone(), r.consequent.clone())
    }

    #[test]
    fn search_returns_superset_of_supported_search() {
        let (index, query, subset) = setup();
        let (s, ts) = search(&index, &subset);
        let (ss, tss) = supported_search(&index, &subset, query.minsupp_count(subset.len()));
        assert!(ss.len() <= s.len());
        assert!(tss.units <= ts.units, "support bound prunes node accesses");
        let s_ids: HashSet<u32> = s.iter().map(|c| c.0).collect();
        assert!(ss.iter().all(|c| s_ids.contains(&c.0)));
    }

    #[test]
    fn eliminate_establishes_exact_local_counts() {
        let (index, query, subset) = setup();
        let (cands, _) = search(&index, &subset);
        let min = query.minsupp_count(subset.len());
        let (kept, trace) = eliminate(&index, &query, &subset, cands, min);
        assert!(!kept.is_empty());
        assert!(trace.output <= trace.input);
        for c in &kept {
            let truth = index
                .ittree()
                .get(c.closure)
                .tids
                .intersect_count(subset.tids());
            assert_eq!(c.local_count, Some(truth));
            assert!(truth >= min);
        }
    }

    #[test]
    fn classify_splits_and_lemma_4_5_holds() {
        let (index, query, subset) = setup();
        let (cands, _) = search(&index, &subset);
        let (contained, partial, _) = classify(&index, &query, &subset, cands);
        for c in &contained {
            let cfi = index.ittree().get(c.closure);
            // Lemma 4.5: contained ⇒ local count = global count.
            assert_eq!(c.local_count, Some(cfi.tids.intersect_count(subset.tids())));
            assert_eq!(c.local_count, Some(cfi.support()));
        }
        for c in &partial {
            assert!(c.local_count.is_none());
        }
    }

    #[test]
    fn verify_finds_the_paper_rl_rule() {
        let (index, query, subset) = setup();
        let min = query.minsupp_count(subset.len());
        let (cands, _) = search(&index, &subset);
        let (kept, _) = eliminate(&index, &query, &subset, cands, min);
        let (rules, trace) = verify(&index, &subset, &kept, query.minconf);
        assert_eq!(trace.output, rules.len());
        let s = index.dataset().schema();
        let a1 = s.encode_named("Age", "30-40").unwrap();
        let s2 = s.encode_named("Salary", "90K-120K").unwrap();
        let rl = rules
            .iter()
            .find(|r| r.antecedent.contains(a1) && r.consequent.contains(s2))
            .expect("RL = (A1 → S2) must be mined");
        assert!((rl.support() - 0.75).abs() < 1e-12);
        assert!((rl.confidence() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn supported_verify_equals_eliminate_plus_verify() {
        let (index, query, subset) = setup();
        let min = query.minsupp_count(subset.len());
        let (cands, _) = search(&index, &subset);
        let (kept, _) = eliminate(&index, &query, &subset, cands.clone(), min);
        let (mut via_ev, _) = verify(&index, &subset, &kept, query.minconf);
        let (mut via_vs, _) = supported_verify(&index, &query, &subset, cands, min, query.minconf);
        via_ev.sort_by_key(rule_key);
        via_vs.sort_by_key(rule_key);
        assert_eq!(via_ev, via_vs);
    }

    #[test]
    fn arm_strict_matches_index_pipeline() {
        let (index, query, subset) = setup();
        let min = query.minsupp_count(subset.len());
        let (cands, _) = search(&index, &subset);
        let (mut via_index, _) =
            supported_verify(&index, &query, &subset, cands, min, query.minconf);
        let (columns, _) = select(&index, &query, &subset);
        let (mut via_arm, _) = arm(&index, &query, &subset, &columns, min, query.minconf);
        via_index.sort_by_key(rule_key);
        via_arm.sort_by_key(rule_key);
        assert_eq!(via_index, via_arm);
    }

    #[test]
    fn item_attr_projection_yields_projection_closed_rules() {
        // With Aitem = {Age, Salary}, the Seattle women's (Age=30-40 →
        // Salary=90K-120K) rule must survive even though its *global*
        // closure also pins Location and Gender.
        let (index, _, _) = setup();
        let schema = index.dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .item_attrs_named(&schema, &["Age", "Salary"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build().unwrap();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        let min = query.minsupp_count(subset.len());
        let (cands, _) = search(&index, &subset);
        let (rules, _) = supported_verify(&index, &query, &subset, cands, min, query.minconf);
        assert!(!rules.is_empty(), "projection must not erase local rules");
        let age = schema.attribute_by_name("Age").unwrap();
        let sal = schema.attribute_by_name("Salary").unwrap();
        for r in &rules {
            for &item in r.body().items() {
                let a = schema.item_attribute(item);
                assert!(a == age || a == sal, "rule escaped Aitem: {r}");
            }
        }
        let a1 = schema.encode_named("Age", "30-40").unwrap();
        assert!(rules.iter().any(|r| r.antecedent.contains(a1)));
        // And ARM agrees under projection too.
        let (columns, _) = select(&index, &query, &subset);
        let (mut via_arm, _) = arm(&index, &query, &subset, &columns, min, query.minconf);
        let mut via_index = rules.clone();
        via_index.sort_by_key(rule_key);
        via_arm.sort_by_key(rule_key);
        assert_eq!(via_index, via_arm);
    }

    #[test]
    fn parallel_operators_are_bit_identical() {
        // A synthetic dataset dense enough that the candidate list crosses
        // PAR_MIN_CANDIDATES, so the parallel paths actually run.
        let config = colarm_data::synth::SynthConfig {
            name: "ops-par".into(),
            seed: 9,
            records: 400,
            domains: vec![3, 3, 4, 2, 3],
            top_mass: 0.6,
            skew: 1.0,
            clusters: 2,
            cluster_focus: 0.5,
            focus_strength: 0.9,
            templates: 3,
            template_len: 3,
            template_prob: 0.3,
        };
        let dataset = colarm_data::synth::generate(&config);
        let schema = dataset.schema().clone();
        let index = MipIndex::build(
            dataset,
            MipIndexConfig {
                primary_support: 0.02,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "a0", &["v0"])
            .unwrap()
            .minsupp(0.05)
            .minconf(0.5)
            .build().unwrap();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        let min = query.minsupp_count(subset.len());
        let (cands, _) = search(&index, &subset);
        assert!(
            cands.len() >= PAR_MIN_CANDIDATES,
            "need ≥{PAR_MIN_CANDIDATES} candidates to exercise the parallel path, got {}",
            cands.len()
        );
        let seq = ExecOptions::with_threads(1);
        let (kept_seq, el_seq) =
            eliminate_with(&index, &query, &subset, cands.clone(), min, seq);
        let (rules_seq, v_seq) = verify_with(&index, &subset, &kept_seq, query.minconf, seq);
        let (sv_rules_seq, sv_seq) = supported_verify_with(
            &index, &query, &subset, cands.clone(), min, query.minconf, seq,
        );
        assert!(!rules_seq.is_empty());
        for threads in [2, 3, 8] {
            let par = ExecOptions::with_threads(threads);
            let (kept_par, el_par) =
                eliminate_with(&index, &query, &subset, cands.clone(), min, par);
            assert_eq!(kept_par, kept_seq, "ELIMINATE diverged at {threads} threads");
            assert_eq!(el_par.units.to_bits(), el_seq.units.to_bits());
            let (rules_par, v_par) = verify_with(&index, &subset, &kept_par, query.minconf, par);
            assert_eq!(rules_par, rules_seq, "VERIFY diverged at {threads} threads");
            assert_eq!(v_par.units.to_bits(), v_seq.units.to_bits());
            let (sv_rules_par, sv_par) = supported_verify_with(
                &index, &query, &subset, cands.clone(), min, query.minconf, par,
            );
            assert_eq!(sv_rules_par, sv_rules_seq);
            assert_eq!(sv_par.units.to_bits(), sv_seq.units.to_bits());
        }
    }

    #[test]
    fn union_concatenates_disjoint_lists() {
        let mk = |id: u32| Candidate {
            body: Itemset::singleton(ItemId(id)),
            closure: CfiId(id),
            local_count: Some(3),
        };
        let (u, trace) = union_lists(vec![mk(1)], vec![mk(2)]);
        assert_eq!(u.len(), 2);
        assert_eq!(trace.input, 2);
        assert_eq!(trace.output, 2);
    }

    #[test]
    fn arm_unrestricted_can_find_more_rules() {
        // With a high primary threshold the index sees few itemsets; the
        // unrestricted ARM plan mines the subset without that blinder.
        let index = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 0.5,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let schema = index.dataset().schema().clone();
        let base = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9);
        let strict = base.clone().semantics(Semantics::Strict).build().unwrap();
        let unrestricted = base.semantics(Semantics::Unrestricted).build().unwrap();
        let subset = index.resolve_subset(strict.range.clone()).unwrap();
        let min = strict.minsupp_count(subset.len());
        let (columns, _) = select(&index, &strict, &subset);
        let (strict_rules, _) = arm(&index, &strict, &subset, &columns, min, strict.minconf);
        let (open_rules, _) = arm(
            &index,
            &unrestricted,
            &subset,
            &columns,
            min,
            unrestricted.minconf,
        );
        assert!(open_rules.len() >= strict_rules.len());
        assert!(
            !open_rules.is_empty(),
            "locally-closed rules exist in the Seattle subset"
        );
    }
}
