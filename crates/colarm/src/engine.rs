//! The streaming operator engine: ONE executor for all six mining plans.
//!
//! Before this module, the six [`PlanKind`] pipelines were six hand-wired
//! sequences of the free functions in [`crate::ops`], fully materializing
//! every intermediate `Vec` and duplicated across the executor, EXPLAIN
//! ANALYZE, and the sessions. Here each primitive (SEARCH,
//! SUPPORTED-SEARCH, CLASSIFY, ELIMINATE, ELIMINATE-PROJECTED, VERIFY,
//! SUPPORTED-VERIFY, UNION, SELECT, ARM) is a [`PlanOp`]; every plan
//! compiles to a declarative operator list ([`pipeline_ops`] — the single
//! wiring point); and [`execute`] threads one [`Ctx`] (execution options,
//! cost meter, budget, deadline, cancel token) through the operators.
//!
//! ## Batch flow
//!
//! Candidates stream through the per-candidate operators in bounded
//! batches of [`ENGINE_BATCH`], not monolithic `Vec`s: each batch is
//! projected/checked/verified, its meter folded in input order, and the
//! deadline/budget/cancel state re-checked before the next batch starts.
//! Cancellation therefore takes effect within one batch of the triggering
//! event and surfaces as [`ColarmError::Canceled`] naming the operator it
//! stopped in — never a panic, never a silently partial answer.
//!
//! ## Determinism
//!
//! Batching is bit-invisible in everything a plan reports. Batch
//! boundaries depend only on input size (never thread count or timing);
//! unit charges are exact integer-valued `f64`s and counters are `u64`s,
//! so per-batch folds sum to the same bits as one monolithic pass; the
//! projection dedup set and VERIFY's memo chunking (`ENGINE_BATCH` is a
//! multiple of the memo span, so per-batch chunk boundaries coincide with
//! global ones) persist across batches. Rules, traces, metrics and
//! `total_units()` are bit-identical to the pre-engine path at every
//! thread count — enforced by `tests/engine_equivalence.rs`.

use crate::error::ColarmError;
use crate::mip::MipIndex;
use crate::ops::{self, Candidate, ExecOptions, OpKind, OpTrace};
use crate::plan::{ExecutionTrace, PlanKind, QueryAnswer};
use crate::query::{LocalizedQuery, Semantics};
use crate::reuse::{ColumnReuse, ColumnStore};
use colarm_data::metrics::Meter;
use colarm_data::{FocalSubset, Itemset};
use colarm_mine::rules::Rule;
use colarm_mine::vertical::ItemTids;
use colarm_mine::CfiId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Candidates processed between two cancellation checks. A multiple of
/// VERIFY's memo span (`ops::VERIFY_MEMO_SPAN`), so the memo-chunk
/// boundaries inside a batch coincide exactly with the boundaries of one
/// unbatched run — batching changes when the engine *checks*, never what
/// it computes.
pub const ENGINE_BATCH: usize = 256;
const _: () = assert!(ENGINE_BATCH.is_multiple_of(ops::VERIFY_MEMO_SPAN));

/// A shareable cancellation flag. Cloning shares the flag; arming it
/// makes every execution holding a clone fail with
/// [`ColarmError::Canceled`] at its next batch boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-armed token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Arm the token: executions observing it cancel at their next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the token is armed.
    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Disarm the token so subsequent executions run normally.
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// Per-query execution limits. The default is unlimited: no deadline, no
/// budget, an un-armed token — exactly the pre-engine behaviour.
///
/// Limits are part of the [`crate::request::QueryRequest`] wire format:
/// they serialize through [`QueryLimitsWire`] (deadline as integer
/// nanoseconds, budget as raw units). The cancel token is process-local
/// state and does not cross the wire — a deserialized `QueryLimits`
/// carries a fresh, un-armed token.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
#[serde(into = "QueryLimitsWire", try_from = "QueryLimitsWire")]
pub struct QueryLimits {
    /// Wall-clock deadline, measured from the start of [`execute`].
    pub timeout: Option<Duration>,
    /// Maximum raw cost units (the [`OpTrace::units`] scale) the query
    /// may consume before it is canceled.
    pub budget_units: Option<f64>,
    /// Cooperative cancellation flag, shared with whoever may cancel.
    pub cancel: CancelToken,
}

impl QueryLimits {
    /// No limits (the default).
    pub fn none() -> QueryLimits {
        QueryLimits::default()
    }

    /// Limit wall-clock time.
    pub fn with_timeout(mut self, timeout: Duration) -> QueryLimits {
        self.timeout = Some(timeout);
        self
    }

    /// Limit raw cost units.
    pub fn with_budget_units(mut self, units: f64) -> QueryLimits {
        self.budget_units = Some(units);
        self
    }

    /// Attach a shared cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> QueryLimits {
        self.cancel = cancel;
        self
    }

    /// Clamp these limits by server-wide caps: the effective deadline and
    /// budget are the minimum of the request's and the cap's (a cap with
    /// no request value applies as-is). The cancel token is untouched.
    pub fn clamped(mut self, timeout_cap: Option<Duration>, budget_cap: Option<f64>) -> QueryLimits {
        self.timeout = match (self.timeout, timeout_cap) {
            (Some(t), Some(cap)) => Some(t.min(cap)),
            (t, cap) => t.or(cap),
        };
        self.budget_units = match (self.budget_units, budget_cap) {
            (Some(b), Some(cap)) => Some(b.min(cap)),
            (b, cap) => b.or(cap),
        };
        self
    }
}

/// The serialized shape of [`QueryLimits`]: deadline in integer
/// nanoseconds, budget in raw cost units. Pinned by the wire-format
/// golden fixtures — field renames break clients.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct QueryLimitsWire {
    /// Wall-clock deadline in nanoseconds (`None` = no deadline).
    pub timeout_ns: Option<u64>,
    /// Maximum raw cost units (`None` = no budget).
    pub budget_units: Option<f64>,
}

impl From<QueryLimits> for QueryLimitsWire {
    fn from(limits: QueryLimits) -> QueryLimitsWire {
        QueryLimitsWire {
            timeout_ns: limits
                .timeout
                .map(|t| u64::try_from(t.as_nanos()).unwrap_or(u64::MAX)),
            budget_units: limits.budget_units,
        }
    }
}

// Infallible by design, but the vendored serde_derive shim only supports
// `#[serde(try_from = "…")]`, not `#[serde(from = "…")]`.
#[allow(clippy::infallible_try_from)]
impl TryFrom<QueryLimitsWire> for QueryLimits {
    type Error = std::convert::Infallible;
    fn try_from(wire: QueryLimitsWire) -> Result<QueryLimits, Self::Error> {
        Ok(QueryLimits {
            timeout: wire.timeout_ns.map(Duration::from_nanos),
            budget_units: wire.budget_units,
            cancel: CancelToken::new(),
        })
    }
}

/// The execution context one plan run threads through its operators:
/// the query environment, execution options, the running cost meter, and
/// the deadline/budget/cancellation state checked at batch boundaries.
pub struct Ctx<'a> {
    /// The MIP-index being queried.
    pub index: &'a MipIndex,
    /// The localized query.
    pub query: &'a LocalizedQuery,
    /// The resolved focal subset `DQ`.
    pub subset: &'a FocalSubset,
    /// The local minimum support as an absolute count.
    pub minsupp_count: usize,
    /// Execution options (threads, metrics reporting).
    pub opts: ExecOptions,
    deadline: Option<Instant>,
    budget_units: Option<f64>,
    cancel: CancelToken,
    units: f64,
    traces: Vec<OpTrace>,
    /// Session column cache consulted by SELECT; `None` = always fresh.
    columns: Option<&'a dyn ColumnStore>,
}

impl<'a> Ctx<'a> {
    /// Open a context for one plan execution. The deadline clock starts
    /// here.
    pub fn new(
        index: &'a MipIndex,
        query: &'a LocalizedQuery,
        subset: &'a FocalSubset,
        opts: ExecOptions,
        limits: &QueryLimits,
    ) -> Ctx<'a> {
        Ctx {
            index,
            query,
            subset,
            minsupp_count: query.minsupp_count(subset.len()),
            opts,
            deadline: limits.timeout.and_then(|t| Instant::now().checked_add(t)),
            budget_units: limits.budget_units,
            cancel: limits.cancel.clone(),
            units: 0.0,
            traces: Vec::new(),
            columns: None,
        }
    }

    /// Attach a session's column store for SELECT reuse (`None` by
    /// default: every SELECT scans fresh).
    pub fn with_column_store(mut self, store: Option<&'a dyn ColumnStore>) -> Ctx<'a> {
        self.columns = store;
        self
    }

    /// Charge raw cost units against the budget.
    pub fn charge(&mut self, units: f64) {
        self.units += units;
    }

    /// Units consumed so far across all operators.
    pub fn units_spent(&self) -> f64 {
        self.units
    }

    /// The batch-boundary check: fail with [`ColarmError::Canceled`] when
    /// the token is armed, the deadline has passed, or the charged units
    /// exceed the budget. `op` is the operator the execution would stop in.
    pub fn check(&self, op: OpKind) -> Result<(), ColarmError> {
        let stop = self.cancel.is_canceled()
            || self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.budget_units.is_some_and(|b| self.units > b);
        if stop {
            Err(ColarmError::Canceled {
                after_units: self.units,
                op,
            })
        } else {
            Ok(())
        }
    }

    /// Record one completed operator's trace (does not charge units —
    /// operators charge per batch as they go).
    pub fn emit(&mut self, trace: OpTrace) {
        self.traces.push(trace);
    }

    /// The recorded traces, pipeline order.
    pub fn into_traces(self) -> Vec<OpTrace> {
        self.traces
    }
}

/// The value flowing between operators. Plans are wired so each operator
/// receives exactly the shape it consumes ([`pipeline_ops`] is the only
/// producer of pipelines, and its shapes are unit-tested).
#[derive(Debug, Clone)]
pub enum Batch {
    /// The pipeline seed: source operators (SEARCH, SELECT) take no input.
    Seed,
    /// Raw candidate CFI ids out of SEARCH / SUPPORTED-SEARCH.
    Ids(Vec<CfiId>),
    /// Projected candidate bodies.
    Candidates(Vec<Candidate>),
    /// CLASSIFY's differential split (SS-E-U-V).
    Split {
        /// Fully contained candidates (local count free by Lemma 4.5).
        contained: Vec<Candidate>,
        /// Partially overlapping candidates, pending ELIMINATE.
        partial: Vec<Candidate>,
    },
    /// SELECT's restricted vertical columns, shared so a session cache
    /// can retain the materialization without copying a tid-list.
    Columns(Arc<Vec<ItemTids>>),
    /// Final rules.
    Rules(Vec<Rule>),
}

impl Batch {
    /// Cardinality of the batch, as operators report input/output sizes.
    pub fn len(&self) -> usize {
        match self {
            Batch::Seed => 0,
            Batch::Ids(v) => v.len(),
            Batch::Candidates(v) => v.len(),
            Batch::Split { contained, partial } => contained.len() + partial.len(),
            Batch::Columns(v) => v.len(),
            Batch::Rules(v) => v.len(),
        }
    }

    /// True when the batch carries no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One mining operator in a compiled plan pipeline.
pub trait PlanOp: Send + Sync {
    /// The operator's typed key (trace name, cancellation report).
    fn kind(&self) -> OpKind;

    /// The cost-model term predicting this operator, or `None` when the
    /// model prices its work into neighbouring operators (CLASSIFY).
    fn cost_term(&self) -> Option<OpKind> {
        Some(self.kind())
    }

    /// Run the operator over its input, charging and checking `ctx` at
    /// batch boundaries and emitting exactly one [`OpTrace`] on success.
    fn run(&self, ctx: &mut Ctx<'_>, input: Batch) -> Result<Batch, ColarmError>;
}

/// Pipeline-wiring invariant violation: an operator received a batch
/// shape [`pipeline_ops`] never produces upstream of it.
fn shape_mismatch(op: OpKind, got: &Batch) -> ! {
    unreachable!("pipeline wiring bug: {op} received incompatible batch {got:?}")
}

/// Drain a `Vec` as owned batches of at most [`ENGINE_BATCH`] elements.
fn owned_batches<T>(items: Vec<T>) -> impl Iterator<Item = Vec<T>> {
    let mut it = items.into_iter();
    std::iter::from_fn(move || {
        let batch: Vec<T> = it.by_ref().take(ENGINE_BATCH).collect();
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    })
}

/// SEARCH: hull range search. One shot — the R-tree query is itself the
/// unit of work the cost model prices.
struct SearchOp;

impl PlanOp for SearchOp {
    fn kind(&self) -> OpKind {
        OpKind::Search
    }

    fn run(&self, ctx: &mut Ctx<'_>, _input: Batch) -> Result<Batch, ColarmError> {
        let (ids, trace) = ops::search(ctx.index, ctx.subset);
        ctx.charge(trace.units);
        ctx.emit(trace);
        Ok(Batch::Ids(ids))
    }
}

/// SUPPORTED-SEARCH: range search with the Lemma 4.4 support bound.
struct SupportedSearchOp;

impl PlanOp for SupportedSearchOp {
    fn kind(&self) -> OpKind {
        OpKind::SupportedSearch
    }

    fn run(&self, ctx: &mut Ctx<'_>, _input: Batch) -> Result<Batch, ColarmError> {
        let (ids, trace) = ops::supported_search(ctx.index, ctx.subset, ctx.minsupp_count);
        ctx.charge(trace.units);
        ctx.emit(trace);
        Ok(Batch::Ids(ids))
    }
}

/// CLASSIFY: contained/partial split, streamed per batch of raw ids. The
/// projection dedup set spans batches, so the split equals one monolithic
/// classification.
struct ClassifyOp;

impl PlanOp for ClassifyOp {
    fn kind(&self) -> OpKind {
        OpKind::Classify
    }

    fn cost_term(&self) -> Option<OpKind> {
        None // priced into the neighbouring ELIMINATE/VERIFY terms
    }

    fn run(&self, ctx: &mut Ctx<'_>, input: Batch) -> Result<Batch, ColarmError> {
        let Batch::Ids(ids) = input else {
            shape_mismatch(self.kind(), &input)
        };
        let start = Instant::now();
        let input_len = ids.len();
        let mut seen: HashSet<Itemset> = HashSet::with_capacity(ids.len());
        let (mut contained, mut partial) = (Vec::new(), Vec::new());
        for chunk in ids.chunks(ENGINE_BATCH) {
            let mut bodies = Vec::with_capacity(chunk.len());
            ops::project_bodies_into(ctx.index, ctx.query, chunk, &mut seen, &mut bodies);
            ops::classify_bodies(ctx.index, ctx.subset, bodies, &mut contained, &mut partial);
            ctx.charge(chunk.len() as f64);
            ctx.check(OpKind::Classify)?;
        }
        ctx.emit(OpTrace {
            kind: OpKind::Classify,
            input: input_len,
            output: contained.len() + partial.len(),
            units: input_len as f64,
            duration: start.elapsed(),
            metrics: Some(colarm_data::metrics::OpMetrics {
                scanned: input_len as u64,
                emitted: (contained.len() + partial.len()) as u64,
                cache_hits: contained.len() as u64,
                ..Default::default()
            }),
        });
        Ok(Batch::Split { contained, partial })
    }
}

/// ELIMINATE over raw ids: `Aitem` projection + record-level support
/// checks, streamed per batch with a shared dedup set.
struct EliminateOp;

impl PlanOp for EliminateOp {
    fn kind(&self) -> OpKind {
        OpKind::Eliminate
    }

    fn run(&self, ctx: &mut Ctx<'_>, input: Batch) -> Result<Batch, ColarmError> {
        let Batch::Ids(ids) = input else {
            shape_mismatch(self.kind(), &input)
        };
        let start = Instant::now();
        let input_len = ids.len();
        let mut seen: HashSet<Itemset> = HashSet::with_capacity(ids.len());
        let mut out = Vec::new();
        let mut meter = Meter::default();
        for chunk in ids.chunks(ENGINE_BATCH) {
            let mut bodies = Vec::with_capacity(chunk.len());
            ops::project_bodies_into(ctx.index, ctx.query, chunk, &mut seen, &mut bodies);
            let (kept, m) = ops::eliminate_bodies(
                ctx.index,
                ctx.subset,
                bodies,
                ctx.minsupp_count,
                ctx.opts.threads,
            );
            out.extend(kept);
            meter += m;
            ctx.charge(m.units);
            ctx.check(OpKind::Eliminate)?;
        }
        ctx.emit(OpTrace {
            kind: OpKind::Eliminate,
            input: input_len,
            output: out.len(),
            units: meter.units,
            duration: start.elapsed(),
            metrics: Some(meter.metrics),
        });
        Ok(Batch::Candidates(out))
    }
}

/// ELIMINATE over CLASSIFY's already-projected partial candidates
/// (SS-E-U-V); contained candidates pass through untouched.
struct EliminatePartialOp;

impl PlanOp for EliminatePartialOp {
    fn kind(&self) -> OpKind {
        OpKind::Eliminate
    }

    fn run(&self, ctx: &mut Ctx<'_>, input: Batch) -> Result<Batch, ColarmError> {
        let Batch::Split { contained, partial } = input else {
            shape_mismatch(self.kind(), &input)
        };
        let start = Instant::now();
        let input_len = partial.len();
        let mut kept = Vec::new();
        let mut meter = Meter::default();
        for batch in owned_batches(partial) {
            let (k, m) = ops::eliminate_bodies(
                ctx.index,
                ctx.subset,
                batch,
                ctx.minsupp_count,
                ctx.opts.threads,
            );
            kept.extend(k);
            meter += m;
            ctx.charge(m.units);
            ctx.check(OpKind::Eliminate)?;
        }
        ctx.emit(OpTrace {
            kind: OpKind::Eliminate,
            input: input_len,
            output: kept.len(),
            units: meter.units,
            duration: start.elapsed(),
            metrics: Some(meter.metrics),
        });
        Ok(Batch::Split {
            contained,
            partial: kept,
        })
    }
}

/// UNION: constant-time merge of the disjoint contained/partial lists.
struct UnionOp;

impl PlanOp for UnionOp {
    fn kind(&self) -> OpKind {
        OpKind::Union
    }

    fn run(&self, ctx: &mut Ctx<'_>, input: Batch) -> Result<Batch, ColarmError> {
        let Batch::Split { contained, partial } = input else {
            shape_mismatch(self.kind(), &input)
        };
        let (merged, trace) = ops::union_lists(contained, partial);
        ctx.charge(trace.units);
        ctx.emit(trace);
        Ok(Batch::Candidates(merged))
    }
}

/// VERIFY: rule generation + confidence checks, streamed per batch.
/// Batches subdivide into the same memo chunks a monolithic run uses
/// (`ENGINE_BATCH` is a multiple of the memo span), so counters match.
struct VerifyOp;

impl PlanOp for VerifyOp {
    fn kind(&self) -> OpKind {
        OpKind::Verify
    }

    fn run(&self, ctx: &mut Ctx<'_>, input: Batch) -> Result<Batch, ColarmError> {
        let Batch::Candidates(cands) = input else {
            shape_mismatch(self.kind(), &input)
        };
        let start = Instant::now();
        let mut rules = Vec::new();
        let mut meter = Meter::default();
        for chunk in cands.chunks(ENGINE_BATCH) {
            let (r, m) = ops::verify_candidates(
                ctx.index,
                ctx.subset,
                chunk,
                ctx.query.minconf,
                ctx.opts.threads,
            );
            rules.extend(r);
            meter += m;
            ctx.charge(m.units);
            ctx.check(OpKind::Verify)?;
        }
        ctx.emit(OpTrace {
            kind: OpKind::Verify,
            input: cands.len(),
            output: rules.len(),
            units: meter.units,
            duration: start.elapsed(),
            metrics: Some(meter.metrics),
        });
        Ok(Batch::Rules(rules))
    }
}

/// SUPPORTED-VERIFY: the fused ELIMINATE+VERIFY (selection push-up).
/// Streams the eliminate half per id batch, materializes the qualified
/// list (the verify half's memo chunking is a function of the *complete*
/// qualified sequence), then streams the verify half per candidate batch.
struct SupportedVerifyOp;

impl PlanOp for SupportedVerifyOp {
    fn kind(&self) -> OpKind {
        OpKind::SupportedVerify
    }

    fn run(&self, ctx: &mut Ctx<'_>, input: Batch) -> Result<Batch, ColarmError> {
        let Batch::Ids(ids) = input else {
            shape_mismatch(self.kind(), &input)
        };
        let start = Instant::now();
        let input_len = ids.len();
        let mut seen: HashSet<Itemset> = HashSet::with_capacity(ids.len());
        let mut qualified = Vec::new();
        let mut elim = Meter::default();
        for chunk in ids.chunks(ENGINE_BATCH) {
            let mut bodies = Vec::with_capacity(chunk.len());
            ops::project_bodies_into(ctx.index, ctx.query, chunk, &mut seen, &mut bodies);
            let (kept, m) = ops::eliminate_bodies(
                ctx.index,
                ctx.subset,
                bodies,
                ctx.minsupp_count,
                ctx.opts.threads,
            );
            qualified.extend(kept);
            elim += m;
            ctx.charge(m.units);
            ctx.check(OpKind::SupportedVerify)?;
        }
        let mut rules = Vec::new();
        let mut ver = Meter::default();
        for chunk in qualified.chunks(ENGINE_BATCH) {
            let (r, m) = ops::verify_candidates(
                ctx.index,
                ctx.subset,
                chunk,
                ctx.query.minconf,
                ctx.opts.threads,
            );
            rules.extend(r);
            ver += m;
            ctx.charge(m.units);
            ctx.check(OpKind::SupportedVerify)?;
        }
        // The fused operator's interface counts are its own ends, not the
        // internal hand-off between the eliminate and verify halves.
        let mut metrics = elim.metrics + ver.metrics;
        metrics.scanned = input_len as u64;
        metrics.emitted = rules.len() as u64;
        ctx.emit(OpTrace {
            kind: OpKind::SupportedVerify,
            input: input_len,
            output: rules.len(),
            units: elim.units + ver.units,
            duration: start.elapsed(),
            metrics: Some(metrics),
        });
        Ok(Batch::Rules(rules))
    }
}

/// SELECT: focal-subset extraction for the traditional plan. One shot —
/// a pipeline breaker by nature (ARM needs every column).
///
/// With a [`ColumnStore`] attached, the materialization may be served
/// from an exact cached entry or derived from a cached parent subset's
/// columns. All three paths emit the same trace `units` (the fresh-scan
/// formula), so rules, unit accounting, and budget behaviour are
/// independent of cache state; only the metrics counters reveal which
/// path ran. Publication happens strictly after complete
/// materialization (never-cache-partial).
struct SelectOp;

impl PlanOp for SelectOp {
    fn kind(&self) -> OpKind {
        OpKind::Select
    }

    fn run(&self, ctx: &mut Ctx<'_>, _input: Batch) -> Result<Batch, ColarmError> {
        let reuse = match ctx.columns {
            Some(store) => store.fetch(ctx.query, ctx.subset),
            None => ColumnReuse::Fresh,
        };
        let (columns, trace) = match reuse {
            ColumnReuse::Fresh => {
                let (cols, trace) = ops::select_with(ctx.index, ctx.query, ctx.subset, ctx.opts);
                let cols = Arc::new(cols);
                if let Some(store) = ctx.columns {
                    store.publish(ctx.query, ctx.subset, &cols, false);
                }
                (cols, trace)
            }
            ColumnReuse::Exact(cols) => {
                let trace = ops::select_cached(ctx.index, ctx.subset, &cols);
                (cols, trace)
            }
            ColumnReuse::Derive(parent) => {
                let (cols, trace) = ops::select_derived(ctx.index, ctx.subset, &parent, ctx.opts);
                let cols = Arc::new(cols);
                if let Some(store) = ctx.columns {
                    store.publish(ctx.query, ctx.subset, &cols, true);
                }
                (cols, trace)
            }
        };
        ctx.charge(trace.units);
        ctx.emit(trace);
        Ok(Batch::Columns(columns))
    }
}

/// ARM: from-scratch mining over the subset. One shot — CHARM's
/// enumeration is inherently a pipeline breaker.
struct ArmOp;

impl PlanOp for ArmOp {
    fn kind(&self) -> OpKind {
        OpKind::Arm
    }

    fn run(&self, ctx: &mut Ctx<'_>, input: Batch) -> Result<Batch, ColarmError> {
        let Batch::Columns(columns) = input else {
            shape_mismatch(self.kind(), &input)
        };
        let (rules, trace) = ops::arm_with(
            ctx.index,
            ctx.query,
            ctx.subset,
            &columns,
            ctx.minsupp_count,
            ctx.query.minconf,
            ctx.opts,
        );
        ctx.charge(trace.units);
        ctx.emit(trace);
        Ok(Batch::Rules(rules))
    }
}

/// Compile a plan to its operator pipeline — the single place plan shapes
/// are wired (paper §4, Table 4).
pub fn pipeline_ops(plan: PlanKind) -> Vec<Box<dyn PlanOp>> {
    match plan {
        PlanKind::Sev => vec![
            Box::new(SearchOp),
            Box::new(EliminateOp),
            Box::new(VerifyOp),
        ],
        PlanKind::Svs => vec![Box::new(SearchOp), Box::new(SupportedVerifyOp)],
        PlanKind::SsEv => vec![
            Box::new(SupportedSearchOp),
            Box::new(EliminateOp),
            Box::new(VerifyOp),
        ],
        PlanKind::SsVs => vec![Box::new(SupportedSearchOp), Box::new(SupportedVerifyOp)],
        PlanKind::SsEuv => vec![
            Box::new(SupportedSearchOp),
            Box::new(ClassifyOp),
            Box::new(EliminatePartialOp),
            Box::new(UnionOp),
            Box::new(VerifyOp),
        ],
        PlanKind::Arm => vec![Box::new(SelectOp), Box::new(ArmOp)],
    }
}

/// Execute one plan through the operator engine under the given limits.
///
/// Validation (thresholds, empty subsets, semantics/plan compatibility)
/// matches the pre-engine executor exactly; with default [`QueryLimits`]
/// the answer — rules, per-operator traces, metrics, unit totals — is
/// bit-identical to it at every thread count. A canceled execution
/// returns [`ColarmError::Canceled`] and produces no answer.
pub fn execute(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
    opts: ExecOptions,
    limits: &QueryLimits,
) -> Result<QueryAnswer, ColarmError> {
    execute_with_store(index, query, subset, plan, opts, limits, None)
}

/// [`execute`] with an optional session [`ColumnStore`] the SELECT
/// operator consults for cross-query reuse. Rules, traces, and unit
/// accounting are bit-identical with or without a store; only metrics
/// counters (and wall-clock) differ.
#[allow(clippy::too_many_arguments)]
pub fn execute_with_store(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
    opts: ExecOptions,
    limits: &QueryLimits,
    store: Option<&dyn ColumnStore>,
) -> Result<QueryAnswer, ColarmError> {
    query.validate(index.dataset().schema())?;
    if subset.is_empty() {
        return Err(ColarmError::EmptySubset);
    }
    if query.semantics == Semantics::Unrestricted && plan != PlanKind::Arm {
        return Err(ColarmError::UnrestrictedRequiresArm {
            requested: plan.name(),
        });
    }
    let start = Instant::now();
    let mut ctx = Ctx::new(index, query, subset, opts, limits).with_column_store(store);
    let mut batch = Batch::Seed;
    for op in pipeline_ops(plan) {
        ctx.check(op.kind())?;
        batch = op.run(&mut ctx, batch)?;
    }
    let Batch::Rules(mut rules) = batch else {
        unreachable!("every plan pipeline ends in a Rules batch")
    };
    rules.sort_by(|a, b| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)));
    let mut ops_trace = ctx.into_traces();
    if !opts.metrics {
        // Counters are collected unconditionally (they ride on work that
        // dwarfs them); the flag controls whether traces *report* them.
        for op in &mut ops_trace {
            op.metrics = None;
        }
    }
    Ok(QueryAnswer {
        plan,
        rules,
        subset_size: subset.len(),
        trace: ExecutionTrace {
            ops: ops_trace,
            total: start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn setup() -> (MipIndex, LocalizedQuery, FocalSubset) {
        let index = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let schema = index.dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build()
            .unwrap();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        (index, query, subset)
    }

    #[test]
    fn pipelines_match_table_4_shapes() {
        use OpKind::*;
        let shape = |plan: PlanKind| -> Vec<OpKind> {
            pipeline_ops(plan).iter().map(|o| o.kind()).collect()
        };
        assert_eq!(shape(PlanKind::Sev), [Search, Eliminate, Verify]);
        assert_eq!(shape(PlanKind::Svs), [Search, SupportedVerify]);
        assert_eq!(shape(PlanKind::SsEv), [SupportedSearch, Eliminate, Verify]);
        assert_eq!(shape(PlanKind::SsVs), [SupportedSearch, SupportedVerify]);
        assert_eq!(
            shape(PlanKind::SsEuv),
            [SupportedSearch, Classify, Eliminate, Union, Verify]
        );
        assert_eq!(shape(PlanKind::Arm), [Select, Arm]);
        // Every operator is predicted by a cost term except CLASSIFY.
        for plan in PlanKind::ALL {
            for op in pipeline_ops(plan) {
                assert_eq!(op.cost_term().is_none(), op.kind() == Classify);
            }
        }
    }

    #[test]
    fn cancel_token_is_shared_and_resettable() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_canceled());
        clone.cancel();
        assert!(token.is_canceled());
        token.reset();
        assert!(!clone.is_canceled());
    }

    #[test]
    fn zero_deadline_cancels_before_any_operator_runs() {
        let (index, query, subset) = setup();
        for plan in PlanKind::ALL {
            let limits = QueryLimits::none().with_timeout(Duration::ZERO);
            let err = execute(&index, &query, &subset, plan, ExecOptions::default(), &limits)
                .unwrap_err();
            let first = pipeline_ops(plan)[0].kind();
            assert_eq!(
                err,
                ColarmError::Canceled {
                    after_units: 0.0,
                    op: first
                },
                "plan {plan}"
            );
        }
    }

    #[test]
    fn armed_token_cancels_and_reset_restores() {
        let (index, query, subset) = setup();
        let token = CancelToken::new();
        let limits = QueryLimits::none().with_cancel(token.clone());
        token.cancel();
        let err = execute(
            &index,
            &query,
            &subset,
            PlanKind::SsVs,
            ExecOptions::default(),
            &limits,
        )
        .unwrap_err();
        assert!(matches!(err, ColarmError::Canceled { .. }));
        token.reset();
        let ok = execute(
            &index,
            &query,
            &subset,
            PlanKind::SsVs,
            ExecOptions::default(),
            &limits,
        )
        .unwrap();
        assert!(!ok.rules.is_empty());
    }

    #[test]
    fn tiny_budget_cancels_mid_pipeline_with_spent_units() {
        let (index, query, subset) = setup();
        // SEARCH charges its node accesses; a sub-unit budget trips the
        // check before the next operator starts.
        let limits = QueryLimits::none().with_budget_units(0.5);
        let err = execute(
            &index,
            &query,
            &subset,
            PlanKind::Sev,
            ExecOptions::default(),
            &limits,
        )
        .unwrap_err();
        match err {
            ColarmError::Canceled { after_units, op } => {
                assert!(after_units > 0.5, "SEARCH charged {after_units}");
                assert_eq!(op, OpKind::Eliminate);
            }
            other => panic!("expected Canceled, got {other:?}"),
        }
    }

    #[test]
    fn canceled_error_names_the_operator() {
        let err = ColarmError::Canceled {
            after_units: 1234.0,
            op: OpKind::Arm,
        };
        let text = err.to_string();
        assert!(text.contains("ARM"), "{text}");
        assert!(text.contains("1234"), "{text}");
    }

    #[test]
    fn batch_len_covers_every_shape() {
        assert_eq!(Batch::Seed.len(), 0);
        assert!(Batch::Seed.is_empty());
        assert_eq!(Batch::Ids(vec![CfiId(1)]).len(), 1);
        assert_eq!(Batch::Rules(Vec::new()).len(), 0);
        let split = Batch::Split {
            contained: Vec::new(),
            partial: Vec::new(),
        };
        assert!(split.is_empty());
    }
}
