//! The statistics catalog: per-attribute and per-CFI-shape statistics
//! backing *per-query* cardinality estimates in the Eq. 1–6 cost model.
//!
//! [`IndexStats`](crate::cost::IndexStats) summarizes the whole index with
//! three scalars — `avg_len`, `avg_rule_cands`, `avg_supp_tidwork` — so a
//! query restricted to two item attributes is priced with the same CFI
//! shape as one spanning all of them. The catalog keeps the information
//! those averages throw away:
//!
//! * **Per attribute**: an equi-depth histogram over value codes (record
//!   mass per bucket), plus the distinct-value count. Selection shares in
//!   the SsEuv containment estimate come from real record mass instead of
//!   the uniform `|values| / |domain|` assumption.
//! * **Pairwise attribute independence**: for each attribute pair, the
//!   observed distinct value-pair count relative to the independence
//!   expectation. Correlated (co-varying) attributes damp the product of
//!   per-attribute selection shares, which the uniform model multiplies
//!   as if independent.
//! * **Per CFI attribute-set group**: CFIs are grouped by the bitmask of
//!   attributes they constrain; each group stores its count, summed
//!   lengths / rule candidates / supports, and the sorted per-CFI
//!   weakest-item supports. A query restricted to item attributes `A`
//!   aggregates exactly the groups inside `A` — conditional versions of
//!   the three global averages, plus an exact surviving-CFI count for the
//!   ARM plan's item restriction.
//!
//! The catalog is built once in [`MipIndex::build`](crate::MipIndex) (skip
//! with `MipIndexConfig::collect_stats = false` / `colarm index
//! --no-stats`) and persisted in the snapshot's `STATS` section (format
//! v3). **Fallback semantics**: when the catalog is absent — old v1/v2
//! snapshots, `--no-stats` builds, or schemas with more than 64
//! attributes — every estimator falls back to the global-average path and
//! stamps its terms [`StatsSource::GlobalFallback`]; behavior is exactly
//! the pre-catalog cost model.

use colarm_data::codec::{self, Cursor};
use colarm_data::{Dataset, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which statistics fed a cost estimate: the per-query catalog, or the
/// index-wide global averages (the documented fallback for stats-absent
/// indexes). Surfaced on every [`CostTerm`](crate::CostTerm) and in
/// `EXPLAIN ANALYZE` so an operator can tell *why* a plan was priced the
/// way it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsSource {
    /// Estimates keyed on the query's actual range and item attributes.
    Catalog,
    /// Index-wide averages (catalog absent, or it had nothing to say).
    #[default]
    GlobalFallback,
}

impl StatsSource {
    /// The wire name (snake_case, JSON-stable).
    pub fn name(self) -> &'static str {
        match self {
            StatsSource::Catalog => "catalog",
            StatsSource::GlobalFallback => "global_fallback",
        }
    }
}

// Serialized as a snake_case name string (wire-stable).
impl Serialize for StatsSource {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.name())
    }
}

impl<'de> Deserialize<'de> for StatsSource {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl serde::de::Visitor<'_> for V {
            type Value = StatsSource;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a stats source name string")
            }
            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<StatsSource, E> {
                match v {
                    "catalog" => Ok(StatsSource::Catalog),
                    "global_fallback" => Ok(StatsSource::GlobalFallback),
                    other => Err(E::custom(format!("unknown stats source `{other}`"))),
                }
            }
        }
        deserializer.deserialize_str(V)
    }
}

impl std::fmt::Display for StatsSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StatsSource::Catalog => "catalog",
            StatsSource::GlobalFallback => "global fallback",
        })
    }
}

/// Maximum attributes the catalog covers: CFI attribute sets are keyed by
/// a `u64` bitmask. Wider schemas build stats-absent (global fallback).
pub const MAX_CATALOG_ATTRS: usize = 64;

/// Equi-depth bucket count per attribute (fewer when the attribute has
/// fewer distinct values).
const MAX_BUCKETS: usize = 16;

/// Work bound for the pairwise-independence scan: pairs × records marks.
/// Above it the scan samples records at a deterministic stride.
const PAIR_SCAN_BUDGET: u64 = 50_000_000;

/// Pair bitset cap: pairs whose joint domain exceeds this are assumed
/// independent rather than materializing a large bitset.
const MAX_JOINT_DOMAIN: usize = 65_536;

/// Per-attribute equi-depth histogram over value codes.
///
/// Bucket `b` covers value codes `(bounds[b-1], bounds[b]]` (bucket 0
/// starts at code 0) and holds `counts[b]` record cells. Buckets are
/// closed on roughly equal record mass, so skewed attributes get fine
/// buckets where the mass is. Value codes past the last bound carry no
/// records.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeStats {
    /// Distinct value codes with nonzero support.
    pub distinct_values: u32,
    /// Inclusive upper value code of each bucket, ascending.
    pub bounds: Vec<u16>,
    /// Record mass per bucket; sums to the dataset's record count.
    pub counts: Vec<u32>,
}

impl AttributeStats {
    /// Build from per-value support counts (`supports[v]` = records with
    /// value code `v`).
    fn build(supports: &[u32]) -> AttributeStats {
        let total: u64 = supports.iter().map(|&s| s as u64).sum();
        let distinct_values = supports.iter().filter(|&&s| s > 0).count() as u32;
        let buckets = (distinct_values.max(1) as usize).min(MAX_BUCKETS) as u64;
        let target = total.div_ceil(buckets).max(1);
        let mut bounds = Vec::new();
        let mut counts = Vec::new();
        let mut acc = 0u64;
        for (v, &s) in supports.iter().enumerate() {
            if s == 0 {
                continue;
            }
            acc += s as u64;
            if acc >= target {
                bounds.push(v as u16);
                counts.push(acc as u32);
                acc = 0;
            }
        }
        if acc > 0 {
            // Close the final partial bucket on the last supported value.
            let last = supports.iter().rposition(|&s| s > 0).unwrap_or(0);
            bounds.push(last as u16);
            counts.push(acc as u32);
        }
        AttributeStats {
            distinct_values,
            bounds,
            counts,
        }
    }

    /// Estimated record count of one value code: its bucket's mass spread
    /// uniformly over the bucket's code width. Codes past the last bound
    /// hold no records.
    pub fn value_mass(&self, v: ValueId) -> f64 {
        let b = self.bounds.partition_point(|&bound| bound < v);
        if b >= self.bounds.len() {
            return 0.0;
        }
        let lo = if b == 0 { 0u32 } else { self.bounds[b - 1] as u32 + 1 };
        let width = (self.bounds[b] as u32 + 1 - lo).max(1);
        self.counts[b] as f64 / width as f64
    }
}

/// One group of CFIs sharing an attribute bitmask: the conditional
/// aggregates the per-query estimators draw from.
#[derive(Debug, Clone, PartialEq)]
pub struct CfiGroup {
    /// Bit `a` set ⇔ every CFI in the group constrains attribute `a`.
    pub attr_mask: u64,
    /// CFIs in the group.
    pub count: u32,
    /// Summed itemset lengths.
    pub sum_len: f64,
    /// Summed candidate-rule counts (`2^len − 2`, capped like
    /// `IndexStats::avg_rule_cands`).
    pub sum_rule_cands: f64,
    /// Summed global support counts (tidset work per mined itemset).
    pub sum_supp: f64,
    /// Sorted per-CFI minimum item supports — the weakest-item histogram,
    /// addressable per admitted attribute set.
    pub min_item_supports: Vec<u32>,
}

impl CfiGroup {
    fn surviving(&self, count: usize) -> u64 {
        let idx = self
            .min_item_supports
            .partition_point(|&s| (s as usize) < count);
        (self.min_item_supports.len() - idx) as u64
    }
}

/// Conditional statistics for one query's admitted item-attribute set,
/// aggregated from the matching [`CfiGroup`]s. Threaded into
/// [`QueryProfile`](crate::cost::QueryProfile) so
/// [`CostModel::estimate`](crate::cost::CostModel::estimate) stays a pure
/// function of the profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogHints {
    /// Conditional mean CFI length (`C_I` restricted to admitted CFIs).
    pub avg_len: f64,
    /// Conditional mean candidate-rule count per CFI.
    pub avg_rule_cands: f64,
    /// Conditional mean CFI support count.
    pub avg_supp_tidwork: f64,
    /// Fraction of all CFIs composed purely of admitted attributes —
    /// replaces the uniform `item_attrs / num_attrs` restriction factor.
    pub item_restriction_frac: f64,
    /// CFIs inside the admitted set whose weakest item survives the
    /// query's local-frequency threshold (the ARM plan's re-mining
    /// volume).
    pub arm_surviving: f64,
}

/// The per-index statistics catalog. Built at index-build time, persisted
/// in the snapshot's `STATS` section, never recomputed on restore — a
/// loaded snapshot reproduces exactly the optimizer inputs it was saved
/// with.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsCatalog {
    /// Records in the dataset at collection time.
    pub num_records: u32,
    /// Per-attribute histograms, in schema order.
    pub attrs: Vec<AttributeStats>,
    /// Upper-triangular pairwise independence, row-major over `(a, b)`
    /// with `a < b`: ~1 for independent attributes, → 0 as one attribute
    /// determines the other (sampled past the pair-scan work budget).
    pub pair_independence: Vec<f64>,
    /// CFI groups keyed by attribute bitmask, ascending mask order.
    pub groups: Vec<CfiGroup>,
}

impl StatsCatalog {
    /// Gather the catalog from the built index's raw parts. Returns
    /// `None` for schemas wider than [`MAX_CATALOG_ATTRS`] or empty
    /// datasets — callers fall back to the global-average path.
    pub fn collect(
        dataset: &Dataset,
        item_supports: &[u32],
        cfi_lens: &[usize],
        cfi_supports: &[u32],
        cfi_attr_presence: &[Vec<bool>],
        cfi_min_item_supports: &[u32],
    ) -> Option<StatsCatalog> {
        let schema = dataset.schema();
        let n = schema.num_attributes();
        let m = dataset.num_records();
        if n == 0 || n > MAX_CATALOG_ATTRS || m == 0 || m > u32::MAX as usize {
            return None;
        }
        let attrs: Vec<AttributeStats> = schema
            .dimensions()
            .map(|(aid, dom)| {
                let base = schema.item_base(aid) as usize;
                AttributeStats::build(&item_supports[base..base + dom])
            })
            .collect();
        let pair_independence = pair_independence_scan(dataset, &attrs);
        let mut groups: BTreeMap<u64, CfiGroup> = BTreeMap::new();
        for (i, presence) in cfi_attr_presence.iter().enumerate() {
            let mask = presence
                .iter()
                .enumerate()
                .filter(|(_, &p)| p)
                .fold(0u64, |acc, (a, _)| acc | (1u64 << a));
            let g = groups.entry(mask).or_insert(CfiGroup {
                attr_mask: mask,
                count: 0,
                sum_len: 0.0,
                sum_rule_cands: 0.0,
                sum_supp: 0.0,
                min_item_supports: Vec::new(),
            });
            g.count += 1;
            g.sum_len += cfi_lens[i] as f64;
            g.sum_rule_cands += ((1u64 << cfi_lens[i].min(12)) - 2) as f64;
            g.sum_supp += cfi_supports[i] as f64;
            g.min_item_supports.push(cfi_min_item_supports[i]);
        }
        let groups: Vec<CfiGroup> = groups
            .into_values()
            .map(|mut g| {
                g.min_item_supports.sort_unstable();
                g
            })
            .collect();
        Some(StatsCatalog {
            num_records: m as u32,
            attrs,
            pair_independence,
            groups,
        })
    }

    /// Measured independence of an attribute pair (1.0 when unknown or
    /// `a == b`).
    pub fn pair_independence(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 1.0;
        }
        let (a, b) = (a.min(b), a.max(b));
        let n = self.attrs.len();
        if b >= n {
            return 1.0;
        }
        let idx = a * (2 * n - a - 1) / 2 + (b - a - 1);
        self.pair_independence.get(idx).copied().unwrap_or(1.0)
    }

    /// Histogram estimate of the record-mass fraction selected by a value
    /// set on one attribute (replaces the uniform `|values| / |domain|`).
    pub fn mass_share(&self, attr: usize, values: impl IntoIterator<Item = ValueId>) -> f64 {
        let Some(a) = self.attrs.get(attr) else {
            return 1.0;
        };
        if self.num_records == 0 {
            return 1.0;
        }
        let mass: f64 = values.into_iter().map(|v| a.value_mass(v)).sum();
        (mass / self.num_records as f64).clamp(0.0, 1.0)
    }

    /// Conditional aggregates for a query admitting the item attributes in
    /// `admitted_mask`; `local_frac_threshold` is the global-support count
    /// a CFI's weakest item must reach to plausibly stay locally frequent
    /// (same quantity
    /// [`cfis_surviving_item_restriction`](crate::cost::IndexStats::cfis_surviving_item_restriction)
    /// consumes).
    ///
    /// When *no* CFI fits inside the admitted set the averages fall back
    /// to the all-CFI aggregates (there is no conditional shape to report)
    /// while `item_restriction_frac` and `arm_surviving` stay 0 — the
    /// catalog's honest statement that the restricted query eliminates
    /// essentially every prestored candidate.
    pub fn hints(&self, admitted_mask: u64, local_frac_threshold: usize) -> CatalogHints {
        let mut count = 0u64;
        let (mut sum_len, mut sum_rules, mut sum_supp) = (0.0f64, 0.0f64, 0.0f64);
        let mut surviving = 0u64;
        let mut total = 0u64;
        for g in &self.groups {
            total += g.count as u64;
            if g.attr_mask & !admitted_mask == 0 {
                count += g.count as u64;
                sum_len += g.sum_len;
                sum_rules += g.sum_rule_cands;
                sum_supp += g.sum_supp;
                surviving += g.surviving(local_frac_threshold);
            }
        }
        let arm_surviving = surviving as f64;
        let item_restriction_frac = if total == 0 {
            1.0
        } else {
            count as f64 / total as f64
        };
        if count == 0 {
            let (mut al, mut ar, mut aw) = (0.0f64, 0.0f64, 0.0f64);
            for g in &self.groups {
                al += g.sum_len;
                ar += g.sum_rule_cands;
                aw += g.sum_supp;
            }
            let t = (total as f64).max(1.0);
            return CatalogHints {
                avg_len: al / t,
                avg_rule_cands: ar / t,
                avg_supp_tidwork: aw / t,
                item_restriction_frac,
                arm_surviving,
            };
        }
        let c = count as f64;
        CatalogHints {
            avg_len: sum_len / c,
            avg_rule_cands: sum_rules / c,
            avg_supp_tidwork: sum_supp / c,
            item_restriction_frac,
            arm_surviving,
        }
    }

    // -- binary codec (snapshot STATS section payload) ---------------------

    /// Append the deterministic binary encoding (varints + LE f64, like
    /// the rest of the snapshot body).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::write_varint(out, self.num_records as u64);
        codec::write_varint(out, self.attrs.len() as u64);
        for a in &self.attrs {
            codec::write_varint(out, a.distinct_values as u64);
            codec::write_varint(out, a.bounds.len() as u64);
            for &b in &a.bounds {
                codec::write_varint(out, b as u64);
            }
            for &c in &a.counts {
                codec::write_varint(out, c as u64);
            }
        }
        codec::write_varint(out, self.pair_independence.len() as u64);
        for &p in &self.pair_independence {
            out.extend_from_slice(&p.to_le_bytes());
        }
        codec::write_varint(out, self.groups.len() as u64);
        for g in &self.groups {
            codec::write_varint(out, g.attr_mask);
            codec::write_varint(out, g.count as u64);
            out.extend_from_slice(&g.sum_len.to_le_bytes());
            out.extend_from_slice(&g.sum_rule_cands.to_le_bytes());
            out.extend_from_slice(&g.sum_supp.to_le_bytes());
            codec::write_varint(out, g.min_item_supports.len() as u64);
            for &s in &g.min_item_supports {
                codec::write_varint(out, s as u64);
            }
        }
    }

    /// Decode the catalog written by [`encode`](Self::encode). Length
    /// prefixes are validated against the remaining payload before any
    /// allocation, so a corrupt prefix cannot drive one.
    pub(crate) fn decode(cur: &mut Cursor<'_>) -> Result<StatsCatalog, String> {
        let num_records = read_u32(cur, "record count")?;
        let num_attrs = read_len(cur, MAX_CATALOG_ATTRS, "attribute count")?;
        let mut attrs = Vec::with_capacity(num_attrs);
        for _ in 0..num_attrs {
            let distinct_values = read_u32(cur, "distinct count")?;
            let buckets = read_len(cur, 4 * MAX_BUCKETS, "bucket count")?;
            check_room(cur, buckets, "histogram bounds")?;
            let mut bounds = Vec::with_capacity(buckets);
            for _ in 0..buckets {
                let b = read_u32(cur, "bucket bound")?;
                if b > u16::MAX as u32 {
                    return Err(format!("bucket bound {b} exceeds 16 bits"));
                }
                bounds.push(b as u16);
            }
            if !bounds.windows(2).all(|w| w[0] < w[1]) {
                return Err("histogram bounds are not ascending".into());
            }
            check_room(cur, buckets, "histogram counts")?;
            let mut counts = Vec::with_capacity(buckets);
            for _ in 0..buckets {
                counts.push(read_u32(cur, "bucket mass")?);
            }
            attrs.push(AttributeStats {
                distinct_values,
                bounds,
                counts,
            });
        }
        let expected_pairs = num_attrs * num_attrs.saturating_sub(1) / 2;
        let pairs = read_len(cur, expected_pairs, "pair count")?;
        if pairs != expected_pairs {
            return Err(format!(
                "catalog stores {pairs} attribute pairs, schema implies {expected_pairs}"
            ));
        }
        let mut pair_independence = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            pair_independence.push(read_f64(cur, "pair independence")?);
        }
        let num_groups = read_len(cur, 1 << 22, "group count")?;
        check_room(cur, num_groups, "CFI groups")?;
        let mut groups = Vec::with_capacity(num_groups);
        let mut prev_mask: Option<u64> = None;
        for _ in 0..num_groups {
            let attr_mask = cur
                .read_varint()
                .map_err(|e| format!("group mask: {e}"))?;
            if let Some(p) = prev_mask {
                if attr_mask <= p {
                    return Err("CFI group masks are not strictly ascending".into());
                }
            }
            prev_mask = Some(attr_mask);
            let count = read_u32(cur, "group count")?;
            let sum_len = read_f64(cur, "group length sum")?;
            let sum_rule_cands = read_f64(cur, "group rule-candidate sum")?;
            let sum_supp = read_f64(cur, "group support sum")?;
            let mins = read_len(cur, u32::MAX as usize, "group min-support count")?;
            check_room(cur, mins, "group min supports")?;
            let mut min_item_supports = Vec::with_capacity(mins);
            for _ in 0..mins {
                min_item_supports.push(read_u32(cur, "group min support")?);
            }
            if !min_item_supports.windows(2).all(|w| w[0] <= w[1]) {
                return Err("group min supports are not sorted".into());
            }
            groups.push(CfiGroup {
                attr_mask,
                count,
                sum_len,
                sum_rule_cands,
                sum_supp,
                min_item_supports,
            });
        }
        Ok(StatsCatalog {
            num_records,
            attrs,
            pair_independence,
            groups,
        })
    }
}

fn read_u32(cur: &mut Cursor<'_>, what: &str) -> Result<u32, String> {
    let v = cur.read_varint().map_err(|e| format!("{what}: {e}"))?;
    if v > u32::MAX as u64 {
        return Err(format!("{what} {v} exceeds 32 bits"));
    }
    Ok(v as u32)
}

fn read_len(cur: &mut Cursor<'_>, max: usize, what: &str) -> Result<usize, String> {
    let v = cur.read_varint().map_err(|e| format!("{what}: {e}"))?;
    if v > max as u64 {
        return Err(format!("{what} {v} exceeds the limit {max}"));
    }
    Ok(v as usize)
}

fn read_f64(cur: &mut Cursor<'_>, what: &str) -> Result<f64, String> {
    let bytes = cur.read_bytes(8).map_err(|e| format!("{what}: {e}"))?;
    Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// A declared element count must leave room for at least one byte per
/// element — rejects corrupt length prefixes before allocating.
fn check_room(cur: &Cursor<'_>, len: usize, what: &str) -> Result<(), String> {
    if len > cur.remaining() {
        return Err(format!(
            "{what} declares {len} elements with {} bytes left",
            cur.remaining()
        ));
    }
    Ok(())
}

/// Count distinct observed value pairs per attribute pair, against the
/// independence expectation `min(d_a × d_b, records seen)`. Deterministic;
/// samples records at a fixed stride when the full scan would exceed
/// [`PAIR_SCAN_BUDGET`] marks.
fn pair_independence_scan(dataset: &Dataset, attrs: &[AttributeStats]) -> Vec<f64> {
    let schema = dataset.schema();
    let n = schema.num_attributes();
    let m = dataset.num_records() as u64;
    let doms: Vec<usize> = schema.dimensions().map(|(_, d)| d).collect();
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    let eligible = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .filter(|&(a, b)| {
            doms[a] * doms[b] <= MAX_JOINT_DOMAIN
                && attrs[a].distinct_values > 1
                && attrs[b].distinct_values > 1
        })
        .count() as u64;
    let stride = (m.saturating_mul(eligible.max(1)) / PAIR_SCAN_BUDGET).max(1) as usize;
    let sampled = dataset.num_records().div_ceil(stride) as u64;
    for a in 0..n {
        for b in (a + 1)..n {
            let joint = doms[a] * doms[b];
            if joint > MAX_JOINT_DOMAIN
                || attrs[a].distinct_values <= 1
                || attrs[b].distinct_values <= 1
            {
                out.push(1.0);
                continue;
            }
            let mut seen = vec![0u64; joint.div_ceil(64)];
            let mut observed = 0u64;
            for tid in (0..dataset.num_records()).step_by(stride) {
                let rec = dataset.record(tid as u32);
                let key = rec[a] as usize * doms[b] + rec[b] as usize;
                let (word, bit) = (key / 64, key % 64);
                if seen[word] & (1 << bit) == 0 {
                    seen[word] |= 1 << bit;
                    observed += 1;
                }
            }
            let expected = (attrs[a].distinct_values as u64 * attrs[b].distinct_values as u64)
                .min(sampled)
                .max(1);
            out.push((observed as f64 / expected as f64).clamp(0.0, 1.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary;
    use colarm_data::VerticalIndex;

    fn salary_catalog() -> StatsCatalog {
        let dataset = salary();
        let schema = dataset.schema().clone();
        let vertical = VerticalIndex::build(&dataset);
        let item_supports: Vec<u32> = (0..schema.num_items() as u32)
            .map(|i| vertical.tids(colarm_data::ItemId(i)).len() as u32)
            .collect();
        // Three hand-made CFIs: two over {attr 0}, one over {attr 0, 1}.
        let lens = [1usize, 2, 3];
        let supports = [5u32, 4, 2];
        let presence = vec![
            {
                let mut p = vec![false; schema.num_attributes()];
                p[0] = true;
                p
            },
            {
                let mut p = vec![false; schema.num_attributes()];
                p[0] = true;
                p
            },
            {
                let mut p = vec![false; schema.num_attributes()];
                p[0] = true;
                p[1] = true;
                p
            },
        ];
        let min_items = [5u32, 3, 2];
        StatsCatalog::collect(&dataset, &item_supports, &lens, &supports, &presence, &min_items)
            .expect("salary schema fits the catalog")
    }

    #[test]
    fn histograms_conserve_record_mass() {
        let cat = salary_catalog();
        for (i, a) in cat.attrs.iter().enumerate() {
            let mass: u64 = a.counts.iter().map(|&c| c as u64).sum();
            assert_eq!(mass, cat.num_records as u64, "attribute {i}");
            assert!(a.bounds.len() == a.counts.len());
            assert!(a.bounds.windows(2).all(|w| w[0] < w[1]), "attribute {i}");
        }
        // Full-domain selection recovers (approximately) all the mass.
        let full = cat.mass_share(0, 0..=u16::MAX);
        assert!((full - 1.0).abs() < 1e-9, "{full}");
        // A single value selects a proper share on a multi-valued attribute.
        let one = cat.mass_share(0, [0u16]);
        assert!(one > 0.0 && one < 1.0, "{one}");
    }

    #[test]
    fn hints_aggregate_matching_groups_only() {
        let cat = salary_catalog();
        // Admit only attribute 0: the {0} group (2 CFIs) matches, {0,1}
        // does not.
        let h = cat.hints(1, 0);
        assert!((h.avg_len - 1.5).abs() < 1e-12);
        assert!((h.avg_supp_tidwork - 4.5).abs() < 1e-12);
        assert!((h.item_restriction_frac - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.arm_surviving, 2.0);
        // Threshold above both weakest items: nothing survives.
        assert_eq!(cat.hints(1, 6).arm_surviving, 0.0);
        // Full mask matches everything: the global averages.
        let all = cat.hints(u64::MAX, 0);
        assert!((all.avg_len - 2.0).abs() < 1e-12);
        assert!((all.item_restriction_frac - 1.0).abs() < 1e-12);
        assert_eq!(all.arm_surviving, 3.0);
    }

    #[test]
    fn empty_admitted_set_reports_zero_restriction_but_sane_averages() {
        let cat = salary_catalog();
        // Admit an attribute no CFI uses: nothing matches.
        let h = cat.hints(1 << 5, 0);
        assert_eq!(h.item_restriction_frac, 0.0);
        assert_eq!(h.arm_surviving, 0.0);
        // Averages fall back to the all-CFI shape (finite, positive).
        assert!(h.avg_len > 0.0 && h.avg_len.is_finite());
    }

    #[test]
    fn pair_independence_is_bounded_and_symmetric() {
        let cat = salary_catalog();
        let n = cat.attrs.len();
        for a in 0..n {
            for b in 0..n {
                let p = cat.pair_independence(a, b);
                assert!((0.0..=1.0).contains(&p), "({a},{b}) = {p}");
                assert_eq!(p.to_bits(), cat.pair_independence(b, a).to_bits());
            }
        }
        assert_eq!(cat.pair_independence(0, 0), 1.0);
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let cat = salary_catalog();
        let mut bytes = Vec::new();
        cat.encode(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        let back = StatsCatalog::decode(&mut cur).expect("decodes");
        assert!(cur.is_empty(), "{} trailing bytes", cur.remaining());
        assert_eq!(cat, back);
    }

    #[test]
    fn decode_rejects_corrupt_length_prefixes() {
        let cat = salary_catalog();
        let mut bytes = Vec::new();
        cat.encode(&mut bytes);
        // An implausible group count in place of the real one must error,
        // not allocate. (Walk a copy and clobber the trailing group-count
        // region: rewrite the whole payload with a huge group count.)
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() / 2);
        let mut cur = Cursor::new(&truncated);
        assert!(StatsCatalog::decode(&mut cur).is_err());
        // Empty payload.
        let mut cur = Cursor::new(&[][..]);
        assert!(StatsCatalog::decode(&mut cur).is_err());
    }

    #[test]
    fn empty_cfi_set_yields_neutral_hints() {
        let dataset = salary();
        let schema = dataset.schema().clone();
        let vertical = VerticalIndex::build(&dataset);
        let item_supports: Vec<u32> = (0..schema.num_items() as u32)
            .map(|i| vertical.tids(colarm_data::ItemId(i)).len() as u32)
            .collect();
        let cat = StatsCatalog::collect(&dataset, &item_supports, &[], &[], &[], &[])
            .expect("collects with zero CFIs");
        let h = cat.hints(u64::MAX, 0);
        assert_eq!(h.item_restriction_frac, 1.0);
        assert_eq!(h.arm_surviving, 0.0);
        assert_eq!(h.avg_len, 0.0);
    }
}
