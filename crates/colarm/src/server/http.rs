//! A minimal, dependency-free HTTP/1.1 transport over
//! [`ColarmServer::handle`]: a bounded acceptor plus a fixed pool of
//! I/O workers.
//!
//! Supports exactly what the query protocol needs: request line +
//! headers, `Content-Length` bodies (no chunked encoding), keep-alive
//! connections with pipelining, and JSON responses.
//!
//! ## I/O model
//!
//! One acceptor thread accepts connections and deals them round-robin
//! onto per-worker queues; [`TransportConfig::workers`] worker threads
//! each own their connections outright (no cross-worker sharing, no
//! locks on the hot path). Sockets are nonblocking; each worker runs a
//! small readiness loop (`poll(2)` on unix) over its connections plus a
//! loopback wake socket, so 10k mostly-idle keep-alive connections cost
//! file descriptors, not OS threads. Requests are parsed incrementally
//! from per-connection buffers and dispatched synchronously on the
//! worker — admission beyond the worker pool is still governed by the
//! server's semaphore limiter.
//!
//! ## Connection lifecycle
//!
//! Every accepted socket gets `TCP_NODELAY`. A request that does not
//! frame completely within [`TransportConfig::read_timeout`] of its
//! first byte is answered `408` and the connection closed (slowloris /
//! short-`Content-Length` clients cannot pin a worker). A keep-alive
//! connection idle past [`TransportConfig::idle_conn_ttl`] is reaped
//! silently. A peer that will not drain a response within
//! [`TransportConfig::write_timeout`] is dropped.
//!
//! ## Drain
//!
//! [`ServerHandle::shutdown`] stops the acceptor, closes idle
//! connections, finishes every in-flight request (responses go out with
//! `Connection: close`), and joins all threads — nothing in flight is
//! dropped, and no detached thread outlives the handle.

use super::{ColarmServer, Response, TransportStats};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted request body (16 MiB) — a defensive cap, far above
/// any real [`crate::QueryRequest`].
pub const MAX_BODY: usize = 16 * 1024 * 1024;
/// Largest accepted request line or header line (terminator excluded).
pub const MAX_LINE: usize = 64 * 1024;
/// Cap on the whole buffered header section of one request.
const MAX_HEAD: usize = 4 * MAX_LINE;
/// Upper bound on one readiness wait; timeout bookkeeping and shutdown
/// flags are re-checked at least this often.
const POLL_SLICE: Duration = Duration::from_millis(200);

/// Socket-level knobs of one listener (the server-policy knobs live in
/// [`super::ServerConfig`]).
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// I/O worker threads (connections are dealt round-robin; each
    /// worker multiplexes all of its connections). Default 4, floor 1.
    pub workers: usize,
    /// A request must frame completely within this long of its first
    /// byte, or the connection is answered 408 and closed (default 10s).
    pub read_timeout: Duration,
    /// A peer that will not drain a pending response for this long is
    /// dropped (default 10s).
    pub write_timeout: Duration,
    /// A keep-alive connection with no request in progress for this
    /// long is silently reaped (default 120s).
    pub idle_conn_ttl: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            workers: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            idle_conn_ttl: Duration::from_secs(120),
        }
    }
}

/// Running transport: join handles for the acceptor and every worker,
/// plus the shared shutdown flag. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) drains and joins everything — tests and
/// benches cannot leak a detached accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<WorkerLink>,
    stats: Arc<TransportStats>,
}

struct WorkerLink {
    handle: Option<JoinHandle<()>>,
    /// Loopback socket; one byte written here pops the worker out of
    /// its readiness wait.
    wake: TcpStream,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The transport's live counters (also surfaced in `GET /stats`).
    pub fn stats(&self) -> Arc<TransportStats> {
        self.stats.clone()
    }

    /// Stop accepting, drain in-flight requests, close every
    /// connection, and join the acceptor and all workers. Idempotent
    /// via [`Drop`]; nothing in flight is dropped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The acceptor may be parked in its readiness wait; a no-op
        // connection pops it immediately (the accepted socket lands on a
        // draining worker and is closed as idle).
        let _ = TcpStream::connect(self.addr);
        for worker in &mut self.workers {
            let _ = worker.wake.write(&[1]);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in &mut self.workers {
            let _ = worker.wake.write(&[1]);
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl ColarmServer {
    /// Bind `addr` and serve on background threads; returns a
    /// [`ServerHandle`] immediately. Use [`ServerHandle::shutdown`] for
    /// a graceful drain.
    pub fn serve(self: &Arc<Self>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
        self.serve_listener(TcpListener::bind(addr)?)
    }

    /// Serve an already-bound listener with default transport knobs.
    pub fn serve_listener(self: &Arc<Self>, listener: TcpListener) -> io::Result<ServerHandle> {
        self.serve_listener_with(listener, TransportConfig::default())
    }

    /// Serve an already-bound listener: spawn the acceptor and
    /// `config.workers` I/O workers, and return the handle that owns
    /// them.
    pub fn serve_listener_with(
        self: &Arc<Self>,
        listener: TcpListener,
        config: TransportConfig,
    ) -> io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let stats = Arc::new(TransportStats::default());
        stats.workers.store(workers, Ordering::Relaxed);
        self.attach_transport(stats.clone());
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut links = Vec::with_capacity(workers);
        let mut feeds = Vec::with_capacity(workers);
        for i in 0..workers {
            let (wake_tx, wake_rx) = wake_pair()?;
            let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
            let server = self.clone();
            let shutdown = shutdown.clone();
            let config = config.clone();
            let stats = stats.clone();
            let handle = std::thread::Builder::new()
                .name(format!("colarm-http-w{i}"))
                .spawn(move || worker_loop(&server, &conn_rx, wake_rx, &shutdown, &config, &stats))?;
            feeds.push(Feed {
                tx: conn_tx,
                wake: wake_tx.try_clone()?,
            });
            links.push(WorkerLink {
                handle: Some(handle),
                wake: wake_tx,
            });
        }

        let acceptor = {
            let shutdown = shutdown.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("colarm-http-accept".to_string())
                .spawn(move || acceptor_loop(&listener, feeds, &shutdown, &stats))?
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: links,
            stats,
        })
    }
}

/// The acceptor's channel to one worker: the connection queue plus the
/// wake socket that pops the worker out of its readiness wait.
struct Feed {
    tx: mpsc::Sender<TcpStream>,
    wake: TcpStream,
}

/// A loopback socket pair standing in for a pipe — std has no
/// `pipe(2)`, but a localhost TCP pair gives the same one-byte wake
/// semantics on every platform.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let writer = TcpStream::connect(listener.local_addr()?)?;
    let (reader, _) = listener.accept()?;
    writer.set_nonblocking(true)?;
    reader.set_nonblocking(true)?;
    let _ = writer.set_nodelay(true);
    Ok((writer, reader))
}

fn acceptor_loop(
    listener: &TcpListener,
    mut feeds: Vec<Feed>,
    shutdown: &AtomicBool,
    stats: &TransportStats,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut fds = [poll::PollFd::readable(poll::listener_fd(listener))];
    let mut next = 0usize;
    while !shutdown.load(Ordering::Acquire) {
        poll::wait(&mut fds, POLL_SLICE);
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    let slot = next % feeds.len();
                    next = next.wrapping_add(1);
                    let feed = &mut feeds[slot];
                    if feed.tx.send(stream).is_ok() {
                        let _ = feed.wake.write(&[1]);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (e.g. EMFILE): back off briefly
                // instead of spinning.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
    }
}

/// Incremental parse state of one connection.
struct Conn {
    stream: TcpStream,
    /// Received, not-yet-parsed bytes.
    inbuf: Vec<u8>,
    /// Response bytes not yet written, from `outpos`.
    outbuf: Vec<u8>,
    outpos: usize,
    /// When the first byte of the current request arrived; the whole
    /// request must frame within `read_timeout` of it.
    request_started: Option<Instant>,
    /// Last byte in or out — the idle / write-stall quantity.
    last_activity: Instant,
    close_after_flush: bool,
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            request_started: None,
            last_activity: Instant::now(),
            close_after_flush: false,
            closed: false,
        }
    }

    fn has_output(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// A request is being read or a response is being written.
    fn in_flight(&self) -> bool {
        self.request_started.is_some() || self.has_output()
    }

    /// Earliest instant at which a timeout fires for this connection.
    fn deadline(&self, config: &TransportConfig) -> Instant {
        if self.has_output() {
            self.last_activity + config.write_timeout
        } else if let Some(started) = self.request_started {
            started + config.read_timeout
        } else {
            self.last_activity + config.idle_conn_ttl
        }
    }
}

fn worker_loop(
    server: &Arc<ColarmServer>,
    conn_rx: &mpsc::Receiver<TcpStream>,
    mut wake: TcpStream,
    shutdown: &AtomicBool,
    config: &TransportConfig,
    stats: &TransportStats,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<poll::PollFd> = Vec::new();
    loop {
        while let Ok(stream) = conn_rx.try_recv() {
            conns.push(Conn::new(stream));
            stats.connections_open.fetch_add(1, Ordering::Relaxed);
        }
        let draining = shutdown.load(Ordering::Acquire);
        if draining {
            // Idle keep-alive connections are closed outright; in-flight
            // requests are finished below.
            for conn in &mut conns {
                if !conn.in_flight() {
                    conn.closed = true;
                }
            }
            reap(&mut conns, stats);
            if conns.is_empty() {
                break;
            }
        }

        // Readiness set: the wake socket first, then the connections in
        // vector order (kept aligned below).
        fds.clear();
        fds.push(poll::PollFd::readable(poll::stream_fd(&wake)));
        let now = Instant::now();
        let mut timeout = POLL_SLICE;
        for conn in &conns {
            fds.push(poll::PollFd::new(
                poll::stream_fd(&conn.stream),
                conn.has_output(),
            ));
            timeout = timeout.min(conn.deadline(config).saturating_duration_since(now));
        }
        poll::wait(&mut fds, timeout);
        let mut scratch = [0u8; 64];
        while matches!(wake.read(&mut scratch), Ok(n) if n > 0) {}

        let now = Instant::now();
        for (i, conn) in conns.iter_mut().enumerate() {
            if fds[i + 1].ready() {
                progress_conn(server, conn, config, now, draining);
            }
            enforce_deadlines(conn, config, now, stats, draining);
        }
        reap(&mut conns, stats);
        if !draining && conns.is_empty() {
            // Park on the wake socket alone; try_recv above picks up
            // whatever the acceptor queued before waking us.
            continue;
        }
    }
}

/// Drop closed connections and keep the open-connection gauge honest.
fn reap(conns: &mut Vec<Conn>, stats: &TransportStats) {
    let before = conns.len();
    conns.retain(|c| !c.closed);
    let closed = (before - conns.len()) as u64;
    if closed > 0 {
        stats.connections_open.fetch_sub(closed, Ordering::Relaxed);
    }
}

/// Flush pending output, read whatever the socket has, parse and
/// dispatch every complete request, and flush again.
fn progress_conn(
    server: &ColarmServer,
    conn: &mut Conn,
    config: &TransportConfig,
    now: Instant,
    draining: bool,
) {
    if flush(conn, now).is_err() {
        conn.closed = true;
        return;
    }
    if conn.closed {
        return;
    }
    // Read until WouldBlock or EOF.
    let mut chunk = [0u8; 16 * 1024];
    let mut peer_eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                peer_eof = true;
                break;
            }
            Ok(n) => {
                if conn.inbuf.is_empty() {
                    conn.request_started = Some(now);
                }
                conn.inbuf.extend_from_slice(&chunk[..n]);
                conn.last_activity = now;
                if conn.inbuf.len() > MAX_HEAD + MAX_BODY {
                    respond_and_close(conn, &Response::error(400, "bad_request", "request too large"));
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closed = true;
                return;
            }
        }
    }
    dispatch_buffered(server, conn, config, now, draining);
    if peer_eof && !conn.closed {
        // Peer half-closed its write side. Every complete request it
        // buffered was just answered above; anything half-read is
        // unanswerable. Flush whatever output remains, then hang up.
        conn.close_after_flush = true;
    }
    if flush(conn, now).is_err() {
        conn.closed = true;
    }
}

/// Parse and answer every complete request sitting in `inbuf`
/// (pipelining: responses are appended in order).
fn dispatch_buffered(
    server: &ColarmServer,
    conn: &mut Conn,
    _config: &TransportConfig,
    now: Instant,
    draining: bool,
) {
    while !conn.close_after_flush && !conn.closed {
        match try_parse(&conn.inbuf) {
            Parse::NeedMore => break,
            Parse::Bad(message) => {
                // Protocol-level garbage: answer once, then hang up (the
                // framing is unrecoverable).
                respond_and_close(conn, &Response::error(400, "bad_request", &message));
                break;
            }
            Parse::Done { request, consumed } => {
                conn.inbuf.drain(..consumed);
                // Leftover bytes are the start of the next pipelined
                // request; its read deadline starts now.
                conn.request_started = (!conn.inbuf.is_empty()).then_some(now);
                let response = server.handle(&request.method, &request.path, &request.body);
                // During drain every response announces closure so
                // keep-alive clients reconnect elsewhere.
                let keep_alive = request.keep_alive && !draining;
                append_response(&mut conn.outbuf, &response, keep_alive);
                if !keep_alive {
                    conn.close_after_flush = true;
                }
            }
        }
    }
}

/// Queue an error response and close once it is flushed; any buffered
/// request bytes are abandoned.
fn respond_and_close(conn: &mut Conn, response: &Response) {
    conn.inbuf.clear();
    conn.request_started = None;
    append_response(&mut conn.outbuf, response, false);
    conn.close_after_flush = true;
}

fn flush(conn: &mut Conn, now: Instant) -> io::Result<()> {
    while conn.has_output() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.outpos += n;
                conn.last_activity = now;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    conn.outbuf.clear();
    conn.outpos = 0;
    if conn.close_after_flush {
        conn.closed = true;
    }
    Ok(())
}

fn enforce_deadlines(
    conn: &mut Conn,
    config: &TransportConfig,
    now: Instant,
    stats: &TransportStats,
    draining: bool,
) {
    if conn.closed {
        return;
    }
    if conn.has_output() {
        if now.saturating_duration_since(conn.last_activity) >= config.write_timeout {
            stats.write_timeouts.fetch_add(1, Ordering::Relaxed);
            conn.closed = true;
        }
    } else if let Some(started) = conn.request_started {
        if now.saturating_duration_since(started) >= config.read_timeout {
            stats.request_read_timeouts.fetch_add(1, Ordering::Relaxed);
            respond_and_close(
                conn,
                &Response::error(
                    408,
                    "request_timeout",
                    "request did not arrive within the read timeout",
                ),
            );
            let _ = flush(conn, now);
        }
    } else if draining
        || now.saturating_duration_since(conn.last_activity) >= config.idle_conn_ttl
    {
        if !draining {
            stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
        }
        conn.closed = true;
    }
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

enum Parse {
    /// The buffer does not yet hold a complete request.
    NeedMore,
    /// A complete request and the byte count it occupied.
    Done { request: Request, consumed: usize },
    /// Unframeable request — answer 400 once, then hang up.
    Bad(String),
}

/// Pull one line (terminated by `\n`, optional `\r` stripped) out of
/// `buf` at `pos`. Lines longer than [`MAX_LINE`] are rejected as soon
/// as enough bytes prove it.
fn take_line(buf: &[u8], pos: usize) -> Result<Option<(String, usize)>, String> {
    let window_end = buf.len().min(pos + MAX_LINE + 2);
    match buf[pos..window_end].iter().position(|&b| b == b'\n') {
        Some(nl) => {
            let mut end = pos + nl;
            let next = end + 1;
            if end > pos && buf[end - 1] == b'\r' {
                end -= 1;
            }
            if end - pos > MAX_LINE {
                return Err("header line too long".to_string());
            }
            let line = std::str::from_utf8(&buf[pos..end])
                .map_err(|_| "header line is not UTF-8".to_string())?;
            Ok(Some((line.to_string(), next)))
        }
        None if window_end - pos > MAX_LINE + 1 => Err("header line too long".to_string()),
        None => Ok(None),
    }
}

/// Try to frame one request out of the front of `buf`.
fn try_parse(buf: &[u8]) -> Parse {
    if buf.is_empty() {
        return Parse::NeedMore;
    }
    let (request_line, mut pos) = match take_line(buf, 0) {
        Err(message) => return Parse::Bad(message),
        Ok(None) => return Parse::NeedMore,
        Ok(Some(line)) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Bad(format!("malformed request line `{request_line}`"));
    };
    if !version.starts_with("HTTP/1.") {
        return Parse::Bad(format!("unsupported protocol `{version}`"));
    }
    // Query strings are not part of the protocol; strip them defensively.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    // HTTP/1.0 defaults to close; 1.1 to keep-alive.
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        if pos > MAX_HEAD {
            return Parse::Bad("header section too large".to_string());
        }
        let (line, next) = match take_line(buf, pos) {
            Err(message) => return Parse::Bad(message),
            Ok(None) => return Parse::NeedMore,
            Ok(Some(line)) => line,
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Bad(format!("malformed header `{line}`"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => return Parse::Bad(format!("bad Content-Length `{value}`")),
            };
            if content_length > MAX_BODY {
                return Parse::Bad("request body too large".to_string());
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Parse::Bad("chunked requests are not supported; send Content-Length".to_string());
        }
    }
    let total = pos + content_length;
    if buf.len() < total {
        return Parse::NeedMore;
    }
    Parse::Done {
        request: Request {
            method: method.to_string(),
            path,
            body: buf[pos..total].to_vec(),
            keep_alive,
        },
        consumed: total,
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn append_response(out: &mut Vec<u8>, response: &Response, keep_alive: bool) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(response.body.as_bytes());
}

/// Readiness waiting. On unix this is `poll(2)` called straight through
/// the C library std already links — no new dependency. Elsewhere it
/// degrades to a short sleep that reports every descriptor ready;
/// nonblocking I/O turns the spurious readiness into `WouldBlock`, so
/// the fallback is correct, just less efficient.
mod poll {
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;

    #[repr(C)]
    pub struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    impl PollFd {
        pub fn readable(fd: i32) -> PollFd {
            PollFd {
                fd,
                events: POLLIN,
                revents: 0,
            }
        }

        /// Read-readiness always; write-readiness only while output is
        /// pending (a writable idle socket must not busy-loop the
        /// worker).
        pub fn new(fd: i32, want_write: bool) -> PollFd {
            PollFd {
                fd,
                events: if want_write { POLLIN | POLLOUT } else { POLLIN },
                revents: 0,
            }
        }

        /// Any event — including `POLLHUP`/`POLLERR`, which surface as
        /// EOF or an error on the next read attempt.
        pub fn ready(&self) -> bool {
            self.revents != 0
        }
    }

    #[cfg(unix)]
    pub fn stream_fd(stream: &TcpStream) -> i32 {
        use std::os::fd::AsRawFd;
        stream.as_raw_fd()
    }

    #[cfg(unix)]
    pub fn listener_fd(listener: &TcpListener) -> i32 {
        use std::os::fd::AsRawFd;
        listener.as_raw_fd()
    }

    #[cfg(unix)]
    pub fn wait(fds: &mut [PollFd], timeout: Duration) {
        unsafe extern "C" {
            // `nfds_t` is `c_ulong` on every unix libc.
            fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        }
        let ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX).max(0);
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
        if rc < 0 {
            // EINTR or transient failure: report nothing ready; the
            // caller's loop re-polls.
            for fd in fds {
                fd.revents = 0;
            }
        }
    }

    #[cfg(not(unix))]
    pub fn stream_fd(_stream: &TcpStream) -> i32 {
        0
    }

    #[cfg(not(unix))]
    pub fn listener_fd(_listener: &TcpListener) -> i32 {
        0
    }

    #[cfg(not(unix))]
    pub fn wait(fds: &mut [PollFd], timeout: Duration) {
        std::thread::sleep(timeout.min(Duration::from_millis(2)));
        for fd in fds {
            fd.revents = fd.events;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(bytes: &[u8]) -> (Request, usize) {
        match try_parse(bytes) {
            Parse::Done { request, consumed } => (request, consumed),
            Parse::NeedMore => panic!("unexpected NeedMore"),
            Parse::Bad(m) => panic!("unexpected Bad: {m}"),
        }
    }

    #[test]
    fn frames_a_body_and_reports_consumption() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdXYZ";
        let (request, consumed) = parse_ok(raw);
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/query");
        assert_eq!(request.body, b"abcd");
        assert!(request.keep_alive);
        assert_eq!(consumed, raw.len() - 3, "pipelined bytes stay buffered");
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        assert!(matches!(try_parse(b""), Parse::NeedMore));
        assert!(matches!(try_parse(b"GET /health HT"), Parse::NeedMore));
        assert!(matches!(
            try_parse(b"GET /health HTTP/1.1\r\nHost: x\r\n"),
            Parse::NeedMore
        ));
        assert!(matches!(
            try_parse(b"POST /q HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Parse::NeedMore
        ));
    }

    #[test]
    fn http_1_0_defaults_to_close_and_1_1_to_keep_alive() {
        let (request, _) = parse_ok(b"GET /health HTTP/1.0\r\n\r\n");
        assert!(!request.keep_alive);
        let (request, _) = parse_ok(b"GET /health HTTP/1.1\r\n\r\n");
        assert!(request.keep_alive);
        let (request, _) = parse_ok(b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(request.keep_alive);
        let (request, _) = parse_ok(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!request.keep_alive);
    }

    #[test]
    fn header_line_boundary_sits_exactly_at_max_line() {
        let mut raw = b"GET /health HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE - "X-Pad: ".len()));
        raw.extend_from_slice(b"\r\n\r\n");
        let (request, _) = parse_ok(&raw);
        assert_eq!(request.path, "/health");

        let mut raw = b"GET /health HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE - "X-Pad: ".len() + 1));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(try_parse(&raw), Parse::Bad(m) if m.contains("too long")));
    }

    #[test]
    fn unterminated_oversized_line_is_rejected_without_waiting() {
        let raw = vec![b'a'; MAX_LINE + 2];
        assert!(matches!(try_parse(&raw), Parse::Bad(m) if m.contains("too long")));
    }

    #[test]
    fn framing_garbage_is_bad() {
        assert!(matches!(try_parse(b"nonsense\r\n\r\n"), Parse::Bad(_)));
        assert!(matches!(
            try_parse(b"GET / HTTP/2.0\r\n\r\n"),
            Parse::Bad(m) if m.contains("unsupported")
        ));
        assert!(matches!(
            try_parse(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Parse::Bad(m) if m.contains("Content-Length")
        ));
        assert!(matches!(
            try_parse(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Parse::Bad(m) if m.contains("chunked")
        ));
        let oversized = format!("POST /q HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(
            try_parse(oversized.as_bytes()),
            Parse::Bad(m) if m.contains("too large")
        ));
    }
}
