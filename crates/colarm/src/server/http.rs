//! A minimal, dependency-free HTTP/1.1 shell over
//! [`ColarmServer::handle`].
//!
//! Supports exactly what the query protocol needs: request line +
//! headers, `Content-Length` bodies (no chunked encoding), keep-alive
//! connections, and JSON responses. One thread per connection — tenancy
//! is bounded by the server's admission limiter, not by the transport.

use super::{ColarmServer, Response};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Largest accepted request body (16 MiB) — a defensive cap, far above
/// any real [`crate::QueryRequest`].
const MAX_BODY: usize = 16 * 1024 * 1024;
/// Largest accepted request line or header line.
const MAX_LINE: usize = 64 * 1024;

impl ColarmServer {
    /// Bind `addr` and serve forever, one thread per connection. Returns
    /// only on listener failure. Use [`ColarmServer::serve_listener`]
    /// with a pre-bound listener to learn the ephemeral port first.
    pub fn serve(self: &Arc<Self>, addr: impl ToSocketAddrs) -> io::Result<()> {
        self.serve_listener(TcpListener::bind(addr)?)
    }

    /// Serve connections from an already-bound listener forever.
    pub fn serve_listener(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let server = self.clone();
            std::thread::spawn(move || serve_connection(&server, stream));
        }
        Ok(())
    }
}

/// Serve one connection until the peer closes, errors, or sends
/// `Connection: close`.
pub fn serve_connection(server: &ColarmServer, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let response = server.handle(&request.method, &request.path, &request.body);
                let keep_alive = request.keep_alive;
                if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            // Clean end of connection.
            Ok(None) => return,
            Err(ReadError::Io) => return,
            Err(ReadError::Malformed(message)) => {
                // Protocol-level garbage: answer once, then hang up (the
                // framing is unrecoverable).
                let _ = write_response(
                    &mut writer,
                    &Response::error(400, "bad_request", &message),
                    false,
                );
                return;
            }
        }
    }
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

enum ReadError {
    /// Transport failure or peer hangup — nothing to answer.
    Io,
    /// Unframeable request — answer 400 once, then hang up.
    Malformed(String),
}

impl From<io::Error> for ReadError {
    fn from(_: io::Error) -> ReadError {
        ReadError::Io
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, ReadError> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE as u64 + 1)
        .read_line(&mut line)
        .map_err(ReadError::from)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_LINE {
        return Err(ReadError::Malformed("header line too long".into()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, ReadError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    // Query strings are not part of the protocol; strip them defensively.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(ReadError::Malformed("connection closed mid-headers".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("malformed header `{line}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length `{value}`")))?;
            if content_length > MAX_BODY {
                return Err(ReadError::Malformed("request body too large".into()));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ReadError::Malformed(
                "chunked requests are not supported; send Content-Length".into(),
            ));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ReadError::from)?;
    Ok(Some(Request {
        method: method.to_string(),
        path,
        body,
        keep_alive,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn write_response(writer: &mut TcpStream, response: &Response, keep_alive: bool) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}
