//! The multi-tenant query server: a long-running daemon serving localized
//! mining queries over HTTP/JSON (`colarm serve`).
//!
//! The wire format **is** the unified API: requests are
//! [`QueryRequest`] JSON, responses are [`QueryOutcome`](crate::QueryOutcome) JSON, and every
//! query routes through the same [`Colarm::run`] /
//! [`QuerySession::run`] path as in-process callers — answers are
//! bit-identical regardless of transport.
//!
//! ## Endpoints
//!
//! One daemon hosts **multiple named snapshots**. Every query route
//! exists in two spellings: the `/indexes/{name}/…` form addressing a
//! specific snapshot, and the bare form (no prefix) aliasing the
//! **default index** (the first one registered).
//!
//! | Method & path | Body | Response |
//! |---|---|---|
//! | `GET /health` | — | `{"status":"ok"}` |
//! | `GET /stats` | — | server counters (per-index + transport) |
//! | `GET /indexes` | — | `{"default":…, "indexes":{…}}` |
//! | `GET /indexes/{name}` | — | one index's summary |
//! | `POST [/indexes/{name}]/sessions` | `{}` or `{"id":"…"}` | `{"id":"…"}` (201) |
//! | `GET [/indexes/{name}]/sessions/{id}` | — | [`SessionStats`] |
//! | `DELETE [/indexes/{name}]/sessions/{id}` | — | `{"evicted":true}` |
//! | `POST [/indexes/{name}]/query` | [`QueryRequest`] | [`QueryOutcome`](crate::QueryOutcome) |
//! | `POST [/indexes/{name}]/sessions/{id}/query` | [`QueryRequest`] | [`QueryOutcome`](crate::QueryOutcome) |
//!
//! Session queries hit the session's subset / answer / column caches, so
//! an interactive drill-down served over HTTP reuses derivations exactly
//! like an in-process [`QuerySession`]. Sessions are **tenants**: each
//! holds bounded caches ([`SessionConfig`]), idles out after
//! [`ServerConfig::idle_ttl`], and the registry evicts
//! least-recently-used sessions beyond [`ServerConfig::max_sessions`] —
//! both deterministically (recency stamps are unique).
//!
//! ## Generations and reload
//!
//! Each named index carries a **generation** counter.
//! [`ColarmServer::reload_index`] (wired to SIGHUP in `colarm serve`)
//! atomically swaps in a new snapshot and bumps the generation: new
//! sessions and one-shot queries route to the new generation, while
//! existing sessions keep the `Arc<Colarm>` they were created on and
//! drain off through the ordinary TTL/LRU machinery — a long-lived
//! drill-down never sees its snapshot change mid-session, and no
//! in-flight request is dropped by a reload.
//!
//! ## Errors and admission
//!
//! Failures are structured JSON — `{"error":{"code":…,"message":…}}` —
//! with the stable machine-readable [`ColarmError::code`] taxonomy:
//! invalid queries map to 400, canceled/timed-out runs to 408, unknown
//! sessions to 404, snapshot corruption to 500. A semaphore-style
//! [`ServerConfig::max_concurrency`] limiter bounds in-flight queries;
//! beyond it the server **rejects** with 429/`overloaded` instead of
//! queueing, so saturation degrades loudly rather than deadlocks.
//!
//! The request/response core ([`ColarmServer::handle`]) is
//! transport-independent and fully testable without sockets; the
//! hand-rolled HTTP/1.1 layer ([`http`]) is a thin shell over it.

pub mod http;

pub use http::{ServerHandle, TransportConfig};

use crate::error::ColarmError;
use crate::framework::Colarm;
use crate::request::QueryRequest;
use crate::session::{QuerySession, SessionConfig, SessionStats};
use parking_lot::{Mutex, RwLock};
use serde_json::json;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The name [`ColarmServer::new`] registers its snapshot under. The
/// un-prefixed routes (`/query`, `/sessions/…`) always alias the
/// server's default index, whatever its name.
pub const DEFAULT_INDEX: &str = "default";

/// The server's notion of time, in milliseconds since server start.
/// Injected so idle-TTL eviction is deterministic under test
/// ([`MockClock`]); production uses the monotonic [`SystemClock`].
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed since the clock was created.
    fn now_ms(&self) -> u64;
}

/// Monotonic wall-clock time ([`Instant`]-based, immune to system clock
/// steps).
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic eviction tests: time moves
/// only when [`MockClock::advance_ms`] is called.
#[derive(Debug, Default)]
pub struct MockClock {
    now_ms: AtomicU64,
}

impl MockClock {
    /// A clock frozen at 0 ms.
    pub fn new() -> Arc<MockClock> {
        Arc::new(MockClock::default())
    }

    /// Advance time by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }
}

/// Capacity and policy knobs of one server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum live sessions; the stamp-LRU session is evicted to admit
    /// a new one beyond this (default 64).
    pub max_sessions: usize,
    /// A session untouched for this long is evicted at the next registry
    /// operation (default 15 minutes).
    pub idle_ttl: Duration,
    /// Maximum concurrently executing queries; excess requests are
    /// rejected with 429 (default 8). Admission control, not a queue.
    pub max_concurrency: usize,
    /// Server-wide cap on per-request deadlines: the effective deadline
    /// is `min(request, cap)` (default none).
    pub timeout_cap: Option<Duration>,
    /// Server-wide cap on per-request cost budgets (default none).
    pub budget_cap: Option<f64>,
    /// Cache bounds of each tenant session.
    pub session: SessionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            idle_ttl: Duration::from_secs(15 * 60),
            max_concurrency: 8,
            timeout_cap: None,
            budget_cap: None,
            session: SessionConfig::default(),
        }
    }
}

/// Semaphore-style admission limiter: `try_acquire` either hands out a
/// permit (returned on drop) or refuses immediately — it never blocks,
/// so a saturated server rejects instead of deadlocking.
#[derive(Debug)]
struct Limiter {
    available: AtomicUsize,
}

impl Limiter {
    fn new(permits: usize) -> Limiter {
        Limiter {
            available: AtomicUsize::new(permits),
        }
    }

    fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut current = self.available.load(Ordering::Acquire);
        loop {
            if current == 0 {
                return None;
            }
            match self.available.compare_exchange_weak(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(Permit { limiter: self }),
                Err(actual) => current = actual,
            }
        }
    }

    fn in_use(&self, capacity: usize) -> usize {
        capacity.saturating_sub(self.available.load(Ordering::Acquire))
    }
}

struct Permit<'a> {
    limiter: &'a Limiter,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.limiter.available.fetch_add(1, Ordering::AcqRel);
    }
}

/// One named snapshot the server routes queries to.
struct IndexEntry {
    colarm: Arc<Colarm>,
    /// Bumped by every [`ColarmServer::reload_index`]; sessions remember
    /// the generation they were created on.
    generation: u64,
}

struct IndexTable {
    entries: HashMap<String, IndexEntry>,
    /// The index the un-prefixed alias routes resolve to.
    default_name: String,
}

/// Socket-transport counters, populated by the HTTP layer and surfaced
/// under `"transport"` in `GET /stats`. All counters are cumulative
/// except `connections_open`.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Size of the I/O worker pool.
    pub workers: AtomicUsize,
    /// Connections accepted since the listener started.
    pub connections_accepted: AtomicU64,
    /// Connections currently owned by workers.
    pub connections_open: AtomicU64,
    /// Requests answered 408 because they did not frame within the read
    /// timeout (slowloris / short-body clients).
    pub request_read_timeouts: AtomicU64,
    /// Keep-alive connections silently reaped past the idle deadline.
    pub idle_reaped: AtomicU64,
    /// Connections dropped because the peer would not drain a response
    /// within the write timeout.
    pub write_timeouts: AtomicU64,
}

impl TransportStats {
    fn to_json(&self) -> serde_json::Value {
        json!({
            "workers": self.workers.load(Ordering::Relaxed),
            "connections_accepted": self.connections_accepted.load(Ordering::Relaxed),
            "connections_open": self.connections_open.load(Ordering::Relaxed),
            "request_read_timeouts": self.request_read_timeouts.load(Ordering::Relaxed),
            "idle_reaped": self.idle_reaped.load(Ordering::Relaxed),
            "write_timeouts": self.write_timeouts.load(Ordering::Relaxed),
        })
    }
}

/// Registry key: `(index name, session id)` — tenants are scoped to the
/// index they were created on.
type SessionKey = (String, String);

/// One tenant in the registry: the session plus its recency bookkeeping.
struct SessionEntry {
    session: Arc<QuerySession>,
    /// Index generation the session was created on; the session's
    /// `Arc<Colarm>` keeps that generation alive until eviction.
    generation: u64,
    /// Last touch, clock milliseconds — the idle-TTL quantity.
    last_used_ms: u64,
    /// Unique monotonic touch stamp breaking same-millisecond LRU ties,
    /// so eviction order never depends on map iteration order.
    stamp: u64,
}

#[derive(Default)]
struct RegistryInner {
    entries: HashMap<SessionKey, SessionEntry>,
    next_stamp: u64,
    next_auto_id: u64,
    created: u64,
    evicted_idle: u64,
    evicted_lru: u64,
}

impl RegistryInner {
    /// Drop every session idle for the full TTL. Runs at each registry
    /// operation, so expiry is observed deterministically at the next
    /// access — there is no background sweeper thread to race against.
    fn sweep(&mut self, now_ms: u64, ttl_ms: u64) {
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now_ms.saturating_sub(e.last_used_ms) < ttl_ms);
        self.evicted_idle += (before - self.entries.len()) as u64;
    }

    /// Evict the least-recently-used session (smallest `(last_used_ms,
    /// stamp)`; stamps are unique, so the pick is deterministic).
    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| (e.last_used_ms, e.stamp))
            .map(|(key, _)| key.clone());
        if let Some(key) = victim {
            self.entries.remove(&key);
            self.evicted_lru += 1;
        }
    }

    fn touch(&mut self, index: &str, id: &str, now_ms: u64) -> Option<Arc<QuerySession>> {
        let stamp = self.next_stamp;
        let entry = self
            .entries
            .get_mut(&(index.to_string(), id.to_string()))?;
        self.next_stamp += 1;
        entry.last_used_ms = now_ms;
        entry.stamp = stamp;
        Some(entry.session.clone())
    }
}

/// A transport-independent HTTP-shaped response: status code plus a JSON
/// body. The [`http`] layer adds the protocol framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (always an object).
    pub body: String,
}

impl Response {
    fn json(status: u16, value: &serde_json::Value) -> Response {
        Response {
            status,
            body: serde_json::to_string(value).expect("JSON value serializes"),
        }
    }

    fn error(status: u16, code: &str, message: &str) -> Response {
        Response::json(
            status,
            &json!({"error": json!({"code": code, "message": message})}),
        )
    }

    fn from_colarm_error(err: &ColarmError) -> Response {
        let status = match err {
            ColarmError::Canceled { .. } => 408,
            ColarmError::Snapshot { .. } => 500,
            _ => 400,
        };
        Response::error(status, err.code(), &err.to_string())
    }
}

/// The multi-tenant query server core: a routing table of named
/// [`Colarm`] snapshots, the session registry, and the admission
/// limiter. Transport-free — the HTTP layer ([`ColarmServer::serve`])
/// and tests both drive [`ColarmServer::handle`].
pub struct ColarmServer {
    indexes: RwLock<IndexTable>,
    config: ServerConfig,
    clock: Arc<dyn Clock>,
    registry: Mutex<RegistryInner>,
    limiter: Limiter,
    queries: AtomicU64,
    query_errors: AtomicU64,
    rejected: AtomicU64,
    /// Set by the HTTP layer when the server goes on a socket; `None`
    /// while the core is driven transport-free.
    transport: Mutex<Option<Arc<TransportStats>>>,
}

fn validate_index_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 || name.contains('/') {
        return Err(format!(
            "index name `{name}` invalid: 1-64 characters with no '/'"
        ));
    }
    Ok(())
}

impl ColarmServer {
    /// A server over one shared system registered as the
    /// [`DEFAULT_INDEX`], timed by the monotonic [`SystemClock`].
    pub fn new(colarm: Arc<Colarm>, config: ServerConfig) -> Arc<ColarmServer> {
        ColarmServer::with_clock(colarm, config, Arc::new(SystemClock::default()))
    }

    /// A server with an injected [`Clock`] (deterministic TTL tests).
    pub fn with_clock(
        colarm: Arc<Colarm>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Arc<ColarmServer> {
        ColarmServer::with_named_indexes(vec![(DEFAULT_INDEX.to_string(), colarm)], config, clock)
            .expect("the default index name is valid")
    }

    /// A server hosting several named snapshots; the first is the
    /// default index the un-prefixed routes alias to. Fails on empty,
    /// duplicate, or invalid names.
    pub fn with_named_indexes(
        indexes: Vec<(String, Arc<Colarm>)>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Arc<ColarmServer>, String> {
        let Some((default_name, _)) = indexes.first() else {
            return Err("a server needs at least one index".to_string());
        };
        let default_name = default_name.clone();
        let mut entries = HashMap::new();
        for (name, colarm) in indexes {
            validate_index_name(&name)?;
            if entries
                .insert(name.clone(), IndexEntry { colarm, generation: 1 })
                .is_some()
            {
                return Err(format!("index `{name}` listed twice"));
            }
        }
        let limiter = Limiter::new(config.max_concurrency.max(1));
        Ok(Arc::new(ColarmServer {
            indexes: RwLock::new(IndexTable {
                entries,
                default_name,
            }),
            config,
            clock,
            registry: Mutex::new(RegistryInner::default()),
            limiter,
            queries: AtomicU64::new(0),
            query_errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            transport: Mutex::new(None),
        }))
    }

    /// The current generation of the default index's system.
    pub fn colarm(&self) -> Arc<Colarm> {
        let table = self.indexes.read();
        table.entries[&table.default_name].colarm.clone()
    }

    /// The index the un-prefixed alias routes resolve to.
    pub fn default_index_name(&self) -> String {
        self.indexes.read().default_name.clone()
    }

    /// Current generation of index `name`'s system, if registered.
    pub fn index(&self, name: &str) -> Option<Arc<Colarm>> {
        self.indexes
            .read()
            .entries
            .get(name)
            .map(|e| e.colarm.clone())
    }

    /// Generation counter of index `name` (starts at 1; bumped by every
    /// reload).
    pub fn index_generation(&self, name: &str) -> Option<u64> {
        self.indexes.read().entries.get(name).map(|e| e.generation)
    }

    /// Registered index names, sorted.
    pub fn index_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.indexes.read().entries.keys().cloned().collect();
        names.sort();
        names
    }

    /// Register an additional named snapshot at generation 1.
    pub fn add_index(&self, name: &str, colarm: Arc<Colarm>) -> Result<(), String> {
        validate_index_name(name)?;
        let mut table = self.indexes.write();
        if table.entries.contains_key(name) {
            return Err(format!("index `{name}` already exists"));
        }
        table.entries.insert(
            name.to_string(),
            IndexEntry {
                colarm,
                generation: 1,
            },
        );
        Ok(())
    }

    /// Swap index `name` to a freshly loaded snapshot and bump its
    /// generation (returned). New sessions and one-shot queries route to
    /// the new generation immediately; existing sessions keep the
    /// `Arc<Colarm>` they were created on and drain off via TTL/LRU —
    /// nothing in flight is dropped. Returns `None` for an unknown name.
    pub fn reload_index(&self, name: &str, colarm: Arc<Colarm>) -> Option<u64> {
        let mut table = self.indexes.write();
        let entry = table.entries.get_mut(name)?;
        entry.colarm = colarm;
        entry.generation += 1;
        Some(entry.generation)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Attach the socket transport's counter block (HTTP layer only).
    pub(crate) fn attach_transport(&self, stats: Arc<TransportStats>) {
        *self.transport.lock() = Some(stats);
    }

    fn ttl_ms(&self) -> u64 {
        u64::try_from(self.config.idle_ttl.as_millis()).unwrap_or(u64::MAX)
    }

    /// Create a session on the default index ([`ColarmServer::create_session_on`]).
    pub fn create_session(&self, id: Option<String>) -> Result<String, Response> {
        let default = self.default_index_name();
        self.create_session_on(&default, id)
    }

    /// Create a session on index `index` — client-chosen id, or a
    /// generated `s1`, `s2`, … Sweeps expired tenants first, then evicts
    /// the LRU tenant if the registry is full. An id already in use on
    /// the same index is a 409. The session pins the index's *current*
    /// generation for its whole lifetime.
    pub fn create_session_on(&self, index: &str, id: Option<String>) -> Result<String, Response> {
        // Lock order: index table before registry (matched everywhere
        // both are held).
        let (colarm, generation) = {
            let table = self.indexes.read();
            let Some(entry) = table.entries.get(index) else {
                return Err(Response::error(
                    404,
                    "index_not_found",
                    &format!("no index `{index}`"),
                ));
            };
            (entry.colarm.clone(), entry.generation)
        };
        let now = self.clock.now_ms();
        let mut inner = self.registry.lock();
        inner.sweep(now, self.ttl_ms());
        let id = match id {
            Some(id) if id.is_empty() || id.len() > 128 || id.contains('/') => {
                return Err(Response::error(
                    400,
                    "bad_session_id",
                    "session ids are 1-128 characters with no '/'",
                ))
            }
            Some(id) => {
                if inner.entries.contains_key(&(index.to_string(), id.clone())) {
                    return Err(Response::error(
                        409,
                        "session_exists",
                        &format!("session `{id}` already exists"),
                    ));
                }
                id
            }
            None => loop {
                inner.next_auto_id += 1;
                let candidate = format!("s{}", inner.next_auto_id);
                if !inner
                    .entries
                    .contains_key(&(index.to_string(), candidate.clone()))
                {
                    break candidate;
                }
            },
        };
        while self.config.max_sessions > 0 && inner.entries.len() >= self.config.max_sessions {
            inner.evict_lru();
        }
        let session = Arc::new(QuerySession::with_config(colarm, self.config.session));
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.created += 1;
        inner.entries.insert(
            (index.to_string(), id.clone()),
            SessionEntry {
                session,
                generation,
                last_used_ms: now,
                stamp,
            },
        );
        Ok(id)
    }

    /// Look up a session on the default index.
    pub fn session(&self, id: &str) -> Option<Arc<QuerySession>> {
        let default = self.default_index_name();
        self.session_on(&default, id)
    }

    /// Look up a session, refreshing its recency. Expired sessions are
    /// swept first, so an access past the idle TTL deterministically
    /// finds nothing.
    pub fn session_on(&self, index: &str, id: &str) -> Option<Arc<QuerySession>> {
        let now = self.clock.now_ms();
        let mut inner = self.registry.lock();
        inner.sweep(now, self.ttl_ms());
        inner.touch(index, id, now)
    }

    /// Evict a session on the default index.
    pub fn evict_session(&self, id: &str) -> bool {
        let default = self.default_index_name();
        self.evict_session_on(&default, id)
    }

    /// Evict a session explicitly. Returns whether it existed.
    pub fn evict_session_on(&self, index: &str, id: &str) -> bool {
        let now = self.clock.now_ms();
        let mut inner = self.registry.lock();
        inner.sweep(now, self.ttl_ms());
        inner
            .entries
            .remove(&(index.to_string(), id.to_string()))
            .is_some()
    }

    /// Live session count across all indexes (after sweeping expired
    /// tenants).
    pub fn session_count(&self) -> usize {
        let mut inner = self.registry.lock();
        inner.sweep(self.clock.now_ms(), self.ttl_ms());
        inner.entries.len()
    }

    /// Cache statistics of one session on the default index.
    pub fn session_stats(&self, id: &str) -> Option<SessionStats> {
        self.session(id).map(|s| s.stats())
    }

    /// Cache statistics of one session (refreshes its recency).
    pub fn session_stats_on(&self, index: &str, id: &str) -> Option<SessionStats> {
        self.session_on(index, id).map(|s| s.stats())
    }

    /// Route one request. `body` is the raw request body (JSON where the
    /// endpoint takes one; an empty body reads as `{}`). Paths under
    /// `/indexes/{name}/…` address a specific snapshot; the bare forms
    /// alias the default index.
    pub fn handle(&self, method: &str, path: &str, body: &[u8]) -> Response {
        match (method, path) {
            ("GET", "/health") => Response::json(200, &json!({"status": "ok"})),
            ("GET", "/stats") => self.handle_stats(),
            ("GET", "/indexes") => self.handle_indexes(),
            (_, "/health" | "/stats" | "/indexes") => {
                Response::error(405, "method_not_allowed", &format!("use GET for {path}"))
            }
            _ => {
                if let Some(rest) = path.strip_prefix("/indexes/") {
                    return match rest.split_once('/') {
                        Some((name, sub)) => {
                            self.route_index(method, name, &format!("/{sub}"), body)
                        }
                        None => self.handle_index_info(method, rest),
                    };
                }
                let default = self.default_index_name();
                self.route_index(method, &default, path, body)
            }
        }
    }

    /// Route a query/session path against one named index.
    fn route_index(&self, method: &str, index: &str, sub: &str, body: &[u8]) -> Response {
        let routable = matches!(sub, "/query" | "/sessions") || sub.starts_with("/sessions/");
        if !routable {
            return Response::error(404, "not_found", &format!("no route for {method} {sub}"));
        }
        if self.index_generation(index).is_none() {
            return Response::error(404, "index_not_found", &format!("no index `{index}`"));
        }
        match (method, sub) {
            ("POST", "/query") => self.handle_query(index, None, body),
            (_, "/query") => Response::error(405, "method_not_allowed", "use POST for queries"),
            ("POST", "/sessions") => self.handle_create_session(index, body),
            (_, "/sessions") => Response::error(
                405,
                "method_not_allowed",
                "use POST to create a session",
            ),
            _ => {
                let rest = sub.strip_prefix("/sessions/").expect("checked routable");
                self.handle_session_route(index, method, rest, body)
            }
        }
    }

    fn handle_session_route(&self, index: &str, method: &str, rest: &str, body: &[u8]) -> Response {
        if let Some(id) = rest.strip_suffix("/query") {
            return match method {
                "POST" => self.handle_query(index, Some(id), body),
                _ => Response::error(405, "method_not_allowed", "use POST for queries"),
            };
        }
        if rest.contains('/') {
            return Response::error(404, "not_found", &format!("no route for /sessions/{rest}"));
        }
        match method {
            "GET" => match self.session_stats_on(index, rest) {
                Some(stats) => Response::json(200, &json!(stats)),
                None => Response::error(
                    404,
                    "session_not_found",
                    &format!("no session `{rest}` (evicted or never created)"),
                ),
            },
            "DELETE" => {
                if self.evict_session_on(index, rest) {
                    Response::json(200, &json!({"evicted": true}))
                } else {
                    Response::error(
                        404,
                        "session_not_found",
                        &format!("no session `{rest}` (evicted or never created)"),
                    )
                }
            }
            _ => Response::error(405, "method_not_allowed", "use GET or DELETE on a session"),
        }
    }

    fn handle_create_session(&self, index: &str, body: &[u8]) -> Response {
        let id = if body.is_empty() {
            None
        } else {
            let parsed: serde_json::Value = match parse_body(body) {
                Ok(v) => v,
                Err(resp) => return resp,
            };
            match parsed.get("id") {
                None => None,
                Some(v) => match v.as_str() {
                    Some(s) => Some(s.to_string()),
                    None => {
                        return Response::error(400, "bad_request", "`id` must be a string")
                    }
                },
            }
        };
        match self.create_session_on(index, id) {
            Ok(id) => Response::json(201, &json!({"id": id})),
            Err(resp) => resp,
        }
    }

    fn handle_query(&self, index: &str, session_id: Option<&str>, body: &[u8]) -> Response {
        let Some(_permit) = self.limiter.try_acquire() else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Response::error(
                429,
                "overloaded",
                "server at max concurrent queries; retry later",
            );
        };
        let mut request: QueryRequest = if body.is_empty() {
            QueryRequest::default()
        } else {
            match parse_body(body) {
                Ok(request) => request,
                Err(resp) => return resp,
            }
        };
        // Server-wide caps bound every request's limits; a request with
        // no limits of its own still inherits the caps.
        if self.config.timeout_cap.is_some() || self.config.budget_cap.is_some() {
            request.limits = Some(
                request
                    .effective_limits()
                    .clamped(self.config.timeout_cap, self.config.budget_cap),
            );
        }
        let outcome = match session_id {
            None => match self.index(index) {
                None => {
                    return Response::error(
                        404,
                        "index_not_found",
                        &format!("no index `{index}`"),
                    )
                }
                Some(colarm) => colarm.run(&request),
            },
            Some(id) => match self.session_on(index, id) {
                None => {
                    return Response::error(
                        404,
                        "session_not_found",
                        &format!("no session `{id}` (evicted or never created)"),
                    )
                }
                Some(session) => session.run(&request),
            },
        };
        match outcome {
            Ok(outcome) => {
                self.queries.fetch_add(1, Ordering::Relaxed);
                Response::json(200, &json!(outcome))
            }
            Err(err) => {
                self.query_errors.fetch_add(1, Ordering::Relaxed);
                Response::from_colarm_error(&err)
            }
        }
    }

    /// Per-index summaries: generation, live/stale session counts, and
    /// snapshot dimensions. `BTreeMap` keeps the JSON key order stable.
    fn index_summaries(&self) -> serde_json::Value {
        let table = self.indexes.read();
        let mut reg = self.registry.lock();
        reg.sweep(self.clock.now_ms(), self.ttl_ms());
        let mut out = BTreeMap::new();
        for (name, entry) in &table.entries {
            let sessions = reg
                .entries
                .iter()
                .filter(|((index, _), _)| index == name)
                .count();
            let stale = reg
                .entries
                .iter()
                .filter(|((index, _), e)| index == name && e.generation < entry.generation)
                .count();
            out.insert(
                name.clone(),
                json!({
                    "generation": entry.generation,
                    "sessions": sessions,
                    "stale_sessions": stale,
                    "records": entry.colarm.index().dataset().num_records(),
                    "mips": entry.colarm.index().num_mips(),
                    "feedback_entries": entry.colarm.feedback().len(),
                    "catalog": entry.colarm.index().catalog().is_some(),
                    "mispicks": entry.colarm.feedback().mispick_count(),
                }),
            );
        }
        json!(out)
    }

    fn handle_indexes(&self) -> Response {
        Response::json(
            200,
            &json!({
                "default": self.default_index_name(),
                "indexes": self.index_summaries(),
            }),
        )
    }

    fn handle_index_info(&self, method: &str, name: &str) -> Response {
        if method != "GET" {
            return Response::error(405, "method_not_allowed", "use GET on an index");
        }
        match self.index_summaries().get(name) {
            Some(summary) => Response::json(200, summary),
            None => Response::error(404, "index_not_found", &format!("no index `{name}`")),
        }
    }

    fn handle_stats(&self) -> Response {
        let (sessions, created, evicted_idle, evicted_lru) = {
            let mut inner = self.registry.lock();
            inner.sweep(self.clock.now_ms(), self.ttl_ms());
            (
                inner.entries.len(),
                inner.created,
                inner.evicted_idle,
                inner.evicted_lru,
            )
        };
        let mut stats = json!({
            "sessions": sessions,
            "sessions_created": created,
            "sessions_evicted_idle": evicted_idle,
            "sessions_evicted_lru": evicted_lru,
            "queries": self.queries.load(Ordering::Relaxed),
            "query_errors": self.query_errors.load(Ordering::Relaxed),
            "rejected": self.rejected.load(Ordering::Relaxed),
            "in_flight": self.limiter.in_use(self.config.max_concurrency.max(1)),
            "uptime_ms": self.clock.now_ms(),
            "default_index": self.default_index_name(),
            "indexes": self.index_summaries(),
        });
        let transport = self.transport.lock().as_ref().map(|t| t.to_json());
        if let (serde_json::Value::Object(map), Some(t)) = (&mut stats, transport) {
            map.insert("transport".to_string(), t);
        }
        Response::json(200, &stats)
    }
}

fn parse_body<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "bad_request", "request body is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| Response::error(400, "bad_request", &format!("invalid request body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth::{generate, SynthConfig};
    use crate::data::{AttributeId, RangeSpec};
    use crate::mip::MipIndexConfig;
    use crate::query::{LocalizedQuery, Semantics};

    fn shared_system() -> Arc<Colarm> {
        let dataset = generate(&SynthConfig {
            name: "server-test".into(),
            seed: 7,
            records: 80,
            domains: vec![3, 4, 2, 5],
            top_mass: 0.55,
            skew: 1.0,
            clusters: 2,
            cluster_focus: 0.6,
            focus_strength: 0.9,
            templates: 3,
            template_len: 3,
            template_prob: 0.3,
        });
        Colarm::build(
            dataset,
            MipIndexConfig {
                primary_support: 0.1,
                ..Default::default()
            },
        )
        .expect("index builds")
        .into_shared()
    }

    fn mock_server(config: ServerConfig) -> (Arc<ColarmServer>, Arc<MockClock>) {
        let clock = MockClock::new();
        let server = ColarmServer::with_clock(shared_system(), config, clock.clone());
        (server, clock)
    }

    /// Unrestricted semantics forces the ARM plan, so the query runs
    /// SELECT and exercises both the subset and the column caches.
    fn arm_query(range: &RangeSpec) -> LocalizedQuery {
        LocalizedQuery::builder()
            .range(range.clone())
            .minsupp(0.3)
            .minconf(0.5)
            .semantics(Semantics::Unrestricted)
            .build()
            .expect("valid query")
    }

    fn base_range() -> RangeSpec {
        RangeSpec::all().with(AttributeId(0), vec![0u16, 1])
    }

    fn refined_range() -> RangeSpec {
        RangeSpec::all()
            .with(AttributeId(0), vec![0u16, 1])
            .with(AttributeId(1), vec![0u16, 1])
    }

    fn post_query(server: &ColarmServer, session: &str, query: &LocalizedQuery) -> Response {
        let body = serde_json::to_string(&QueryRequest::query(query)).unwrap();
        server.handle(
            "POST",
            &format!("/sessions/{session}/query"),
            body.as_bytes(),
        )
    }

    fn body_json(response: &Response) -> serde_json::Value {
        serde_json::from_str(&response.body).expect("JSON body")
    }

    #[test]
    fn idle_sessions_expire_deterministically_under_a_mock_clock() {
        let (server, clock) = mock_server(ServerConfig {
            idle_ttl: Duration::from_secs(10),
            ..ServerConfig::default()
        });
        server.create_session(Some("tenant".into())).unwrap();
        // One millisecond short of the TTL: still alive (and re-stamped).
        clock.advance_ms(9_999);
        assert!(server.session("tenant").is_some());
        // Now idle exactly the TTL since the touch: swept at next access.
        clock.advance_ms(10_000);
        assert!(server.session("tenant").is_none());
        let stats = body_json(&server.handle("GET", "/stats", b""));
        assert_eq!(stats["sessions"].as_u64(), Some(0));
        assert_eq!(stats["sessions_evicted_idle"].as_u64(), Some(1));
    }

    #[test]
    fn evicted_sessions_rebuild_caches_with_no_stale_reuse() {
        let (server, clock) = mock_server(ServerConfig {
            idle_ttl: Duration::from_secs(10),
            ..ServerConfig::default()
        });
        server.create_session(Some("t".into())).unwrap();
        assert_eq!(post_query(&server, "t", &arm_query(&base_range())).status, 200);
        let drilled = post_query(&server, "t", &arm_query(&refined_range()));
        assert_eq!(drilled.status, 200);
        let warm = body_json(&drilled);
        let warm_rules = warm["rules"].clone();
        // The drill-down was served by derivation, visible over the wire.
        assert_eq!(warm["session"]["subsets_derived"].as_u64(), Some(1));
        assert_eq!(warm["session"]["columns_derived"].as_u64(), Some(1));

        // Idle out the tenant; its queries now 404.
        clock.advance_ms(20_000);
        let gone = post_query(&server, "t", &arm_query(&refined_range()));
        assert_eq!(gone.status, 404);
        assert_eq!(
            body_json(&gone)["error"]["code"].as_str(),
            Some("session_not_found")
        );

        // A recreated tenant starts cold: fresh resolution, nothing
        // derived from the evicted caches — and identical rules.
        server.create_session(Some("t".into())).unwrap();
        let cold = body_json(&post_query(&server, "t", &arm_query(&refined_range())));
        assert_eq!(cold["session"]["subsets_derived"].as_u64(), Some(0));
        assert_eq!(cold["session"]["columns_derived"].as_u64(), Some(0));
        assert_eq!(cold["session"]["subset_misses"].as_u64(), Some(1));
        assert_eq!(cold["rules"], warm_rules);
    }

    #[test]
    fn lru_eviction_picks_the_stalest_tenant() {
        let (server, clock) = mock_server(ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        });
        server.create_session(Some("a".into())).unwrap();
        clock.advance_ms(1);
        server.create_session(Some("b".into())).unwrap();
        clock.advance_ms(1);
        // Touch `a`, making `b` the least recently used.
        assert!(server.session("a").is_some());
        clock.advance_ms(1);
        server.create_session(Some("c".into())).unwrap();
        assert!(server.session("b").is_none(), "LRU tenant must be evicted");
        assert!(server.session("a").is_some());
        assert!(server.session("c").is_some());
        let stats = body_json(&server.handle("GET", "/stats", b""));
        assert_eq!(stats["sessions_evicted_lru"].as_u64(), Some(1));
    }

    #[test]
    fn same_millisecond_lru_ties_break_by_stamp() {
        let (server, _clock) = mock_server(ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        });
        // All at t=0: creation order is the only recency signal.
        server.create_session(Some("a".into())).unwrap();
        server.create_session(Some("b".into())).unwrap();
        server.create_session(Some("c".into())).unwrap();
        assert!(server.session("a").is_none(), "oldest stamp is the victim");
        assert!(server.session("b").is_some());
        assert!(server.session("c").is_some());
    }

    #[test]
    fn saturated_limiter_rejects_with_429_instead_of_queueing() {
        let (server, _clock) = mock_server(ServerConfig {
            max_concurrency: 1,
            ..ServerConfig::default()
        });
        let request = serde_json::to_string(&QueryRequest::query(&arm_query(&base_range())))
            .unwrap();
        // Hold the only permit, as an in-flight query would.
        let permit = server.limiter.try_acquire().expect("permit available");
        let rejected = server.handle("POST", "/query", request.as_bytes());
        assert_eq!(rejected.status, 429);
        assert_eq!(
            body_json(&rejected)["error"]["code"].as_str(),
            Some("overloaded")
        );
        // Releasing the permit restores admission — no queue, no deadlock.
        drop(permit);
        assert_eq!(server.handle("POST", "/query", request.as_bytes()).status, 200);
        let stats = body_json(&server.handle("GET", "/stats", b""));
        assert_eq!(stats["rejected"].as_u64(), Some(1));
        assert_eq!(stats["queries"].as_u64(), Some(1));
        assert_eq!(stats["in_flight"].as_u64(), Some(0));
    }

    #[test]
    fn server_caps_clamp_request_limits() {
        // A budget cap far below any real query cancels even requests
        // that asked for no limits at all.
        let (server, _clock) = mock_server(ServerConfig {
            budget_cap: Some(0.001),
            ..ServerConfig::default()
        });
        let request = serde_json::to_string(&QueryRequest::query(&arm_query(&base_range())))
            .unwrap();
        let response = server.handle("POST", "/query", request.as_bytes());
        assert_eq!(response.status, 408);
        assert_eq!(body_json(&response)["error"]["code"].as_str(), Some("canceled"));
    }

    #[test]
    fn protocol_errors_carry_stable_codes() {
        let (server, _clock) = mock_server(ServerConfig::default());
        let case = |method: &str, path: &str, body: &[u8], status: u16, code: &str| {
            let response = server.handle(method, path, body);
            assert_eq!(response.status, status, "{method} {path}: {}", response.body);
            assert_eq!(
                body_json(&response)["error"]["code"].as_str(),
                Some(code),
                "{method} {path}"
            );
        };
        case("GET", "/nope", b"", 404, "not_found");
        case("GET", "/sessions/ghost", b"", 404, "session_not_found");
        case("POST", "/sessions/x/query", b"", 404, "session_not_found");
        case("POST", "/sessions", br#"{"id": "a/b"}"#, 400, "bad_session_id");
        case("POST", "/query", b"not json", 400, "bad_request");
        case("POST", "/query", br#"{"plon": "Sev"}"#, 400, "bad_request");
        server.create_session(Some("x".into())).unwrap();
        case("POST", "/sessions", br#"{"id": "x"}"#, 409, "session_exists");
        case("PATCH", "/sessions/x", b"", 405, "method_not_allowed");
        case("GET", "/sessions/x/query", b"", 405, "method_not_allowed");
        // Multi-index routes share the taxonomy.
        case("GET", "/indexes/ghost", b"", 404, "index_not_found");
        case("POST", "/indexes/ghost/query", b"{}", 404, "index_not_found");
        case("POST", "/indexes/ghost/sessions", b"{}", 404, "index_not_found");
        case("GET", "/indexes/x/nope", b"", 404, "not_found");
        case("POST", "/indexes", b"", 405, "method_not_allowed");
    }

    #[test]
    fn named_index_routes_alias_the_default_and_isolate_sessions() {
        let (server, _clock) = mock_server(ServerConfig::default());
        assert_eq!(server.default_index_name(), DEFAULT_INDEX);
        server.add_index("alt", shared_system()).unwrap();
        assert_eq!(server.index_names(), vec!["alt", "default"]);

        // Same query through the alias and the explicit default route:
        // identical rules (it is the same snapshot).
        let body = serde_json::to_string(&QueryRequest::query(&arm_query(&base_range()))).unwrap();
        let alias = server.handle("POST", "/query", body.as_bytes());
        let named = server.handle("POST", "/indexes/default/query", body.as_bytes());
        assert_eq!(alias.status, 200);
        assert_eq!(named.status, 200);
        assert_eq!(body_json(&alias)["rules"], body_json(&named)["rules"]);

        // The same session id can exist on two indexes independently.
        let created = server.handle("POST", "/indexes/alt/sessions", br#"{"id": "t"}"#);
        assert_eq!(created.status, 201, "{}", created.body);
        let created = server.handle("POST", "/sessions", br#"{"id": "t"}"#);
        assert_eq!(created.status, 201, "{}", created.body);
        assert_eq!(
            server.handle("GET", "/indexes/alt/sessions/t", b"").status,
            200
        );
        // Evicting on one index leaves the other's session alive.
        let evicted = server.handle("DELETE", "/indexes/alt/sessions/t", b"");
        assert_eq!(evicted.status, 200);
        assert_eq!(
            server
                .handle("GET", "/indexes/alt/sessions/t", b"")
                .status,
            404
        );
        assert_eq!(server.handle("GET", "/sessions/t", b"").status, 200);

        let listing = body_json(&server.handle("GET", "/indexes", b""));
        assert_eq!(listing["default"].as_str(), Some(DEFAULT_INDEX));
        assert!(listing["indexes"]["alt"].is_object());
        assert!(listing["indexes"]["default"].is_object());
    }

    #[test]
    fn reload_bumps_the_generation_and_pins_old_sessions_to_their_snapshot() {
        let (server, _clock) = mock_server(ServerConfig::default());
        assert_eq!(server.index_generation(DEFAULT_INDEX), Some(1));
        server.create_session(Some("old".into())).unwrap();
        let before = post_query(&server, "old", &arm_query(&base_range()));
        assert_eq!(before.status, 200);

        // Swap in a new snapshot. The in-flight session must keep
        // answering from the generation it was created on.
        assert_eq!(server.reload_index(DEFAULT_INDEX, shared_system()), Some(2));
        assert_eq!(server.index_generation(DEFAULT_INDEX), Some(2));
        let after = post_query(&server, "old", &arm_query(&base_range()));
        assert_eq!(after.status, 200);
        assert_eq!(body_json(&before)["rules"], body_json(&after)["rules"]);

        // The old-generation session is surfaced as stale; a new session
        // lands on generation 2 and is not.
        server.create_session(Some("new".into())).unwrap();
        let stats = body_json(&server.handle("GET", "/stats", b""));
        let summary = &stats["indexes"][DEFAULT_INDEX];
        assert_eq!(summary["generation"].as_u64(), Some(2));
        assert_eq!(summary["sessions"].as_u64(), Some(2));
        assert_eq!(summary["stale_sessions"].as_u64(), Some(1));

        // Reloading an unknown index is a no-op.
        assert_eq!(server.reload_index("ghost", shared_system()), None);
    }

    #[test]
    fn index_names_are_validated_and_duplicates_rejected() {
        let (server, _clock) = mock_server(ServerConfig::default());
        assert!(server.add_index("", shared_system()).is_err());
        assert!(server.add_index("a/b", shared_system()).is_err());
        assert!(server.add_index(&"x".repeat(65), shared_system()).is_err());
        assert!(server.add_index(DEFAULT_INDEX, shared_system()).is_err());
        server.add_index("ok", shared_system()).unwrap();
        assert!(server.add_index("ok", shared_system()).is_err());
    }

    /// Regression: the answer-cache-hit path of [`QuerySession::run`]
    /// used to hold the cache guard (an `if let` scrutinee temporary)
    /// across `stats()`, which re-locks the same cache — the second
    /// identical query on a session deadlocked the serving worker.
    #[test]
    fn repeated_identical_session_query_hits_the_answer_cache() {
        let (server, _clock) = mock_server(ServerConfig::default());
        server.create_session(Some("s".into())).unwrap();
        let first = post_query(&server, "s", &arm_query(&base_range()));
        assert_eq!(first.status, 200);
        let second = post_query(&server, "s", &arm_query(&base_range()));
        assert_eq!(second.status, 200);
        assert_eq!(
            body_json(&second)["session"]["answer_hits"].as_u64(),
            Some(1)
        );
        assert_eq!(body_json(&first)["rules"], body_json(&second)["rules"]);
    }
}
