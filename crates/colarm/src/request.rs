//! The unified query API: one request type in, one outcome type out.
//!
//! [`QueryRequest`] describes everything a caller may ask of the system —
//! the query itself (as query-language text or parsed fields), an optional
//! forced plan, execution limits, and which extras to return — and
//! [`QueryOutcome`] carries everything the system can answer with: the
//! rules, the optimizer's decision, and (on request) the execution trace,
//! the `EXPLAIN ANALYZE` report, and session cache statistics.
//!
//! The pair doubles as the **wire format** of the query server
//! ([`crate::server`]): both types serialize to JSON, and every transport
//! — in-process [`crate::Colarm::run`] / [`crate::QuerySession::run`], the
//! CLI, the REPL, and the HTTP daemon — routes through the same pair, so
//! answers are bit-identical regardless of how a query arrives.
//!
//! `QueryRequest`'s `Deserialize` is hand-written: every field is
//! optional on the wire (`{}` is a valid request meaning "defaults over
//! the whole dataset"), and unknown fields are rejected so client typos
//! (`"minssup"`) fail loudly instead of silently mining at defaults.

use crate::engine::QueryLimits;
use crate::error::ColarmError;
use crate::explain::AnalyzeReport;
use crate::optimizer::PlanChoice;
use crate::parse::parse_query;
use crate::plan::{ExecutionTrace, PlanKind};
use crate::query::{LocalizedQuery, Semantics};
use crate::session::SessionStats;
use colarm_data::{AttributeId, RangeSpec, Schema};
use colarm_mine::rules::Rule;
use serde::{Deserialize, Serialize};

/// One localized-mining request, self-describing and transport-agnostic.
///
/// The query can arrive two ways, composable in one request:
///
/// * `text` — a query-language string (`REPORT LOCALIZED ASSOCIATION
///   RULES …`), parsed against the index's schema;
/// * the parsed fields (`range`, `item_attrs`, `minsupp`, `minconf`,
///   `semantics`) — each, when present, **overrides** the corresponding
///   parsed-text value (or the builder default when there is no text).
///
/// Everything else tunes the run: `plan` forces a specific plan instead
/// of the optimizer's pick, `limits` bounds the execution, and the three
/// flags select which extras ride back on the [`QueryOutcome`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct QueryRequest {
    /// Query-language text, parsed first when present.
    pub text: Option<String>,
    /// Focal-range selections (`Arange`); overrides the text's `RANGE`.
    pub range: Option<RangeSpec>,
    /// Attributes allowed to compose rules (`Aitem`).
    pub item_attrs: Option<Vec<AttributeId>>,
    /// Minimum local support in `(0, 1]` (default 0.5).
    pub minsupp: Option<f64>,
    /// Minimum local confidence in `(0, 1]` (default 0.8).
    pub minconf: Option<f64>,
    /// Output contract (default [`Semantics::Strict`]).
    pub semantics: Option<Semantics>,
    /// Force this plan instead of the optimizer's pick. Forced runs
    /// bypass a session's answer cache so plan comparisons stay honest.
    pub plan: Option<PlanKind>,
    /// Deadline / cost budget for this run. Servers clamp these by their
    /// own caps ([`QueryLimits::clamped`]); the cancel token is
    /// process-local and never crosses the wire.
    pub limits: Option<QueryLimits>,
    /// Report per-operator execution counters in the trace.
    pub metrics: bool,
    /// Return an `EXPLAIN ANALYZE` report (forces metrics on; bypasses a
    /// session's answer cache — the point is to measure an execution).
    pub analyze: bool,
    /// Include the per-operator execution trace in the outcome.
    pub trace: bool,
}

impl QueryRequest {
    /// A request from query-language text.
    pub fn text(text: impl Into<String>) -> QueryRequest {
        QueryRequest {
            text: Some(text.into()),
            ..QueryRequest::default()
        }
    }

    /// A request from an already-built query.
    pub fn query(query: &LocalizedQuery) -> QueryRequest {
        QueryRequest {
            range: Some(query.range.clone()),
            item_attrs: query.item_attrs.clone(),
            minsupp: Some(query.minsupp),
            minconf: Some(query.minconf),
            semantics: Some(query.semantics),
            ..QueryRequest::default()
        }
    }

    /// Force a specific plan (experiments, ablations).
    pub fn with_plan(mut self, plan: PlanKind) -> QueryRequest {
        self.plan = Some(plan);
        self
    }

    /// Bound the execution (deadline, cost budget, cancel token).
    pub fn with_limits(mut self, limits: QueryLimits) -> QueryRequest {
        self.limits = Some(limits);
        self
    }

    /// Toggle execution-counter reporting.
    pub fn with_metrics(mut self, on: bool) -> QueryRequest {
        self.metrics = on;
        self
    }

    /// Toggle the `EXPLAIN ANALYZE` report.
    pub fn with_analyze(mut self, on: bool) -> QueryRequest {
        self.analyze = on;
        self
    }

    /// Toggle the execution trace in the outcome.
    pub fn with_trace(mut self, on: bool) -> QueryRequest {
        self.trace = on;
        self
    }

    /// Materialize the [`LocalizedQuery`] this request describes: parse
    /// `text` if present (builder defaults otherwise), then apply the
    /// parsed-field overrides. Validation against the schema happens at
    /// execution ([`crate::Colarm::prepare`]).
    pub fn resolve(&self, schema: &Schema) -> Result<LocalizedQuery, ColarmError> {
        let mut query = match &self.text {
            Some(text) => parse_query(text, schema)?,
            None => LocalizedQuery::builder()
                .build()
                .expect("builder defaults are valid"),
        };
        if let Some(range) = &self.range {
            query.range = range.clone();
        }
        if let Some(attrs) = &self.item_attrs {
            query.item_attrs = Some(attrs.clone());
        }
        if let Some(minsupp) = self.minsupp {
            query.minsupp = minsupp;
        }
        if let Some(minconf) = self.minconf {
            query.minconf = minconf;
        }
        if let Some(semantics) = self.semantics {
            query.semantics = semantics;
        }
        Ok(query)
    }

    /// The effective limits of this request (none when unset).
    pub(crate) fn effective_limits(&self) -> QueryLimits {
        self.limits.clone().unwrap_or_default()
    }
}

impl From<LocalizedQuery> for QueryRequest {
    fn from(query: LocalizedQuery) -> QueryRequest {
        QueryRequest::query(&query)
    }
}

impl<'de> Deserialize<'de> for QueryRequest {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> serde::de::Visitor<'de> for V {
            type Value = QueryRequest;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a QueryRequest object")
            }

            fn visit_map<A: serde::de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<QueryRequest, A::Error> {
                let mut request = QueryRequest::default();
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "text" => request.text = map.next_value()?,
                        "range" => request.range = map.next_value()?,
                        "item_attrs" => request.item_attrs = map.next_value()?,
                        "minsupp" => request.minsupp = map.next_value()?,
                        "minconf" => request.minconf = map.next_value()?,
                        "semantics" => request.semantics = map.next_value()?,
                        "plan" => request.plan = map.next_value()?,
                        "limits" => request.limits = map.next_value()?,
                        "metrics" => request.metrics = map.next_value()?,
                        "analyze" => request.analyze = map.next_value()?,
                        "trace" => request.trace = map.next_value()?,
                        other => {
                            return Err(serde::de::Error::custom(format!(
                                "unknown QueryRequest field `{other}`"
                            )))
                        }
                    }
                }
                Ok(request)
            }
        }
        deserializer.deserialize_map(V)
    }
}

/// Everything one run can answer with. The companion of [`QueryRequest`]:
/// always the rules and the plan that produced them; the optional fields
/// are present exactly when the request (or transport) asked for them.
///
/// Field names are wire-stable (server JSON responses; see the golden
/// fixtures in `tests/wire_format.rs`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The plan that produced the answer.
    pub plan: PlanKind,
    /// `|DQ|`.
    pub subset_size: usize,
    /// The localized rules, sorted by (antecedent, consequent).
    pub rules: Vec<Rule>,
    /// The optimizer's decision and all six estimates. `None` when no
    /// optimization ran — the answer came straight from a session's
    /// answer cache.
    pub choice: Option<PlanChoice>,
    /// Per-operator execution trace (`request.trace`).
    pub trace: Option<ExecutionTrace>,
    /// `EXPLAIN ANALYZE` report (`request.analyze`).
    pub analyze: Option<AnalyzeReport>,
    /// Cache statistics of the session that ran the query (session runs
    /// only).
    pub session: Option<SessionStats>,
}

impl QueryOutcome {
    /// The plan the optimizer picked, when it ran (differs from
    /// [`QueryOutcome::plan`] for forced-plan requests).
    pub fn optimizer_pick(&self) -> Option<PlanKind> {
        self.choice.as_ref().map(|c| c.estimates[0].plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary_schema;

    #[test]
    fn empty_object_is_a_default_request() {
        let request: QueryRequest = serde_json::from_str("{}").unwrap();
        assert!(request.text.is_none() && request.plan.is_none());
        assert!(!request.metrics && !request.analyze && !request.trace);
        let query = request.resolve(&salary_schema()).unwrap();
        assert!(query.range.is_all());
        assert_eq!(query.minsupp, 0.5);
        assert_eq!(query.minconf, 0.8);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = serde_json::from_str::<QueryRequest>(r#"{"minssup": 0.5}"#).unwrap_err();
        assert!(err.to_string().contains("minssup"), "{err}");
    }

    #[test]
    fn parsed_fields_override_text() {
        let schema = salary_schema();
        let request = QueryRequest {
            text: Some(
                "REPORT LOCALIZED ASSOCIATION RULES FROM Dataset salary \
                 WHERE RANGE Location = (Seattle) \
                 HAVING minsupport = 75% AND minconfidence = 90%;"
                    .into(),
            ),
            minconf: Some(0.95),
            ..QueryRequest::default()
        };
        let query = request.resolve(&schema).unwrap();
        assert_eq!(query.minsupp, 0.75, "text value kept");
        assert_eq!(query.minconf, 0.95, "override applied");
        assert!(!query.range.is_all(), "text RANGE kept");
    }

    #[test]
    fn request_round_trips_through_json() {
        let schema = salary_schema();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .item_attrs_named(&schema, &["Age", "Salary"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .semantics(Semantics::Unrestricted)
            .build()
            .unwrap();
        let request = QueryRequest::query(&query)
            .with_plan(PlanKind::Arm)
            .with_limits(
                QueryLimits::none().with_timeout(std::time::Duration::from_secs(5)),
            )
            .with_metrics(true)
            .with_trace(true);
        let json = serde_json::to_string(&request).unwrap();
        let back: QueryRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.resolve(&schema).unwrap(), query);
        assert_eq!(back.plan, Some(PlanKind::Arm));
        assert_eq!(
            back.limits.as_ref().unwrap().timeout,
            Some(std::time::Duration::from_secs(5))
        );
        assert!(back.metrics && back.trace && !back.analyze);
    }
}
