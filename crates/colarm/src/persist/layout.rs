//! The aligned mapped snapshot layout (format version 4).
//!
//! Version 4 abandons the sequential framed stream of [`super::format`]
//! for a layout designed to be *used in place* after `mmap(2)`:
//!
//! ```text
//! file  := head section* directory tail
//! head  := magic(8 = "COLARMIX") version(u32) flags(u32) zero-pad to 64
//! section starts are 64-byte aligned; inter-section gaps are zero pads
//! tags  := 1  HEADER       v3 header payload (config + schema + counts)
//!          6  RECORDS16    m × arity value codes, raw u16 LE, row-major
//!          9  TIDDATA      concatenated container payloads, each 8-byte
//!                          aligned: array chunks as raw u16 LE, bitmap
//!                          chunks as raw u64 LE words
//!          7  CFI_META     per-CFI itemset + chunk descriptors (varints
//!                          referencing TIDDATA by offset; runs inline)
//!          8  CFI_OFFSETS  (n_cfis + 1) × u64 LE offsets into CFI_META
//!          10 VERTICAL     per-item tid-list descriptors (same codec)
//!          4  STATS        v3 stats payload (catalog + cost constants)
//! directory := dir_count × entry(24); entry := tag(u8) pad(3) crc(u32)
//!              offset(u64) len(u64)
//! tail  := dir_offset(u64) dir_count(u32) dir_crc(u32) file_len(u64)
//!          version(u32) reserved(u32) tail_magic(8 = "XIMRALOC")
//! ```
//!
//! Design rules, all load-bearing for the zero-copy reader:
//!
//! * **Directory at the tail, not a tag scan.** The reader seeks the fixed
//!   40-byte tail, finds the directory, and knows every section's offset,
//!   length and CRC without touching payload bytes — which is what lets
//!   per-section checksums be verified *lazily* (first query) instead of
//!   on the load path.
//! * **64-byte aligned sections, 8-byte aligned container payloads.** A
//!   mapped bitmap chunk is reinterpreted directly as `&[u64]` and an
//!   array chunk as `&[u16]`; alignment is what makes those casts sound
//!   (and cache-line-friendly). The reader *rejects* misaligned offsets.
//! * **Offset tables instead of sequential framing.** CFI `i`'s metadata
//!   is `CFI_META[offsets[i]..offsets[i+1]]` — no need to decode CFIs
//!   `0..i` first.
//! * **Every byte accounted for.** Pads between sections must be zero,
//!   the directory must immediately precede the tail, and the tail must
//!   end the file; trailing garbage and overlap are structural errors.
//!
//! This module owns the constants and the single-pass streaming writer;
//! the mapping reader lives in [`super::mmap`].

use super::format::{corrupt, CrcWriter, FORMAT_VERSION, MAGIC};
use super::{encode_itemset, SnapshotHeader, SnapshotStats};
use crate::error::ColarmError;
use crate::mip::MipIndex;
use colarm_data::codec::{crc32, write_varint};
use colarm_data::{ChunkRef, ItemId, Tidset};
use std::io::Write;

/// Fixed head size: magic + version + flags, zero-padded to one
/// alignment unit so the first section starts aligned.
pub(crate) const HEAD_LEN: u64 = 64;

/// Every section starts on a 64-byte boundary.
pub(crate) const SECTION_ALIGN: u64 = 64;

/// Container payloads inside TIDDATA start on 8-byte boundaries (the
/// strictest alignment we reinterpret to: `u64` bitmap words).
pub(crate) const DATA_ALIGN: u64 = 8;

/// Fixed tail record size (always the last `TAIL_LEN` bytes of the file).
pub(crate) const TAIL_LEN: u64 = 40;

/// Closes the file the way [`MAGIC`] opens it (same bytes, reversed), so
/// a truncated-and-recombined file can't present a plausible tail.
pub(crate) const TAIL_MAGIC: [u8; 8] = *b"XIMRALOC";

/// One directory entry: tag, 3 pad bytes, payload CRC, offset, length.
pub(crate) const DIR_ENTRY_LEN: u64 = 24;

/// Upper bound on directory entries a reader will accept — far above the
/// seven tags v4 defines, small enough that a corrupt count cannot drive
/// a large allocation.
pub(crate) const MAX_DIR_ENTRIES: u32 = 16;

/// v4 section tags. HEADER (1) and STATS (4) reuse the framed-format tags
/// and payload encodings; the rest are v4-only.
pub(crate) const SEC_RECORDS16: u8 = 6;
pub(crate) const SEC_CFI_META: u8 = 7;
pub(crate) const SEC_CFI_OFFSETS: u8 = 8;
pub(crate) const SEC_TIDDATA: u8 = 9;
pub(crate) const SEC_VERTICAL: u8 = 10;

/// Container kinds in chunk descriptors.
pub(crate) const KIND_ARRAY: u8 = 0;
pub(crate) const KIND_BITMAP: u8 = 1;
pub(crate) const KIND_RUNS: u8 = 2;

/// One directory row, as written into the trailer directory.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DirEntry {
    pub(crate) tag: u8,
    pub(crate) crc: u32,
    pub(crate) offset: u64,
    pub(crate) len: u64,
}

impl DirEntry {
    pub(crate) fn encode(&self) -> [u8; DIR_ENTRY_LEN as usize] {
        let mut b = [0u8; DIR_ENTRY_LEN as usize];
        b[0] = self.tag;
        b[4..8].copy_from_slice(&self.crc.to_le_bytes());
        b[8..16].copy_from_slice(&self.offset.to_le_bytes());
        b[16..24].copy_from_slice(&self.len.to_le_bytes());
        b
    }
}

/// Round `off` up to a multiple of `align` (a power of two).
#[inline]
pub(crate) fn align_up(off: u64, align: u64) -> u64 {
    (off + align - 1) & !(align - 1)
}

/// Deterministic placement of container payloads inside TIDDATA. The
/// writer runs one instance while emitting TIDDATA and a *fresh* instance
/// while emitting the descriptor sections; because placement depends only
/// on the iteration order (CFIs in IT-tree order, then vertical items in
/// item order) the two passes assign identical offsets without the writer
/// ever buffering an offset table in memory.
#[derive(Debug, Default)]
struct Placer {
    off: u64,
}

impl Placer {
    /// Reserve an 8-aligned span of `bytes`; returns (pad, start offset).
    fn place(&mut self, bytes: u64) -> (u64, u64) {
        let start = align_up(self.off, DATA_ALIGN);
        let pad = start - self.off;
        self.off = start + bytes;
        (pad, start)
    }
}

/// Byte-counting writer for one v4 file. Tracks the absolute offset and a
/// per-section CRC; pads (between sections) bypass the section CRC,
/// payload bytes feed it.
struct V4Writer<'w, W: Write> {
    w: &'w mut CrcWriter<W>,
    offset: u64,
    section_start: u64,
    crc: colarm_data::codec::Crc32,
}

impl<'w, W: Write> V4Writer<'w, W> {
    fn new(w: &'w mut CrcWriter<W>) -> Self {
        V4Writer {
            w,
            offset: 0,
            section_start: 0,
            crc: colarm_data::codec::Crc32::new(),
        }
    }

    /// Write raw bytes outside any section (head, pads, directory, tail).
    fn write_raw(&mut self, bytes: &[u8]) -> Result<(), ColarmError> {
        self.w.write_all(bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Zero-pad so the next byte lands on `align`.
    fn pad_raw_to(&mut self, align: u64) -> Result<(), ColarmError> {
        let target = align_up(self.offset, align);
        let pad = (target - self.offset) as usize;
        if pad > 0 {
            self.write_raw(&vec![0u8; pad])?;
        }
        Ok(())
    }

    /// Start a section at the current (aligned) offset.
    fn begin_section(&mut self) -> u64 {
        debug_assert_eq!(self.offset % SECTION_ALIGN, 0);
        self.section_start = self.offset;
        self.crc = colarm_data::codec::Crc32::new();
        self.section_start
    }

    /// Write section payload bytes (CRC-tracked).
    fn write(&mut self, bytes: &[u8]) -> Result<(), ColarmError> {
        self.w.write_all(bytes)?;
        self.crc.update(bytes);
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Zero-pad *inside* the current section so the next payload byte is
    /// 8-aligned (pad bytes are part of the section and its CRC).
    fn pad_in_section(&mut self, pad: u64) -> Result<(), ColarmError> {
        if pad > 0 {
            self.write(&vec![0u8; pad as usize])?;
        }
        Ok(())
    }

    /// Offset within the current section.
    fn section_pos(&self) -> u64 {
        self.offset - self.section_start
    }

    /// Close the current section, producing its directory row.
    fn end_section(&mut self, tag: u8) -> DirEntry {
        DirEntry {
            tag,
            crc: self.crc.value(),
            offset: self.section_start,
            len: self.section_pos(),
        }
    }
}

/// Encode one chunk descriptor. `prev_key` carries the delta baseline
/// across a tidset's chunks; `placer` assigns TIDDATA offsets for array /
/// bitmap payloads (runs ride inline in the descriptor itself, exactly
/// like the v3 delta encoding — they are tiny and gain nothing from
/// alignment).
fn encode_chunk_meta(
    buf: &mut Vec<u8>,
    prev_key: &mut Option<u16>,
    key: u16,
    chunk: ChunkRef<'_>,
    placer: &mut Placer,
) {
    let delta = match *prev_key {
        None => key as u64,
        Some(p) => (key - p - 1) as u64,
    };
    *prev_key = Some(key);
    write_varint(buf, delta);
    match chunk {
        ChunkRef::Array(values) => {
            buf.push(KIND_ARRAY);
            let (_, at) = placer.place(2 * values.len() as u64);
            write_varint(buf, values.len() as u64);
            write_varint(buf, at);
        }
        ChunkRef::Bitmap { words, card } => {
            buf.push(KIND_BITMAP);
            let (_, at) = placer.place(8 * words.len() as u64);
            write_varint(buf, words.len() as u64);
            write_varint(buf, card as u64);
            write_varint(buf, at);
        }
        ChunkRef::Runs(runs) => {
            buf.push(KIND_RUNS);
            write_varint(buf, runs.len() as u64);
            let mut prev_end: i64 = -2;
            for &(s, e) in runs {
                write_varint(buf, (s as i64 - prev_end - 2) as u64);
                write_varint(buf, (e - s) as u64);
                prev_end = e as i64;
            }
        }
    }
}

/// Encode one tidset's descriptor block: chunk count + chunk descriptors.
fn encode_tidset_meta(buf: &mut Vec<u8>, tids: &Tidset, placer: &mut Placer) {
    let chunks: Vec<(u16, ChunkRef<'_>)> = tids.chunk_refs().collect();
    write_varint(buf, chunks.len() as u64);
    let mut prev_key = None;
    for (key, chunk) in chunks {
        encode_chunk_meta(buf, &mut prev_key, key, chunk, placer);
    }
}

/// Stream one tidset's array / bitmap payloads into TIDDATA, with the
/// same placement the descriptor passes will recompute.
fn write_tidset_data<W: Write>(
    w: &mut V4Writer<'_, W>,
    tids: &Tidset,
    placer: &mut Placer,
) -> Result<(), ColarmError> {
    for (_, chunk) in tids.chunk_refs() {
        match chunk {
            ChunkRef::Array(values) => {
                let (pad, at) = placer.place(2 * values.len() as u64);
                w.pad_in_section(pad)?;
                debug_assert_eq!(w.section_pos(), at);
                let mut buf = Vec::with_capacity(2 * values.len());
                for &v in values {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                w.write(&buf)?;
            }
            ChunkRef::Bitmap { words, .. } => {
                let (pad, at) = placer.place(8 * words.len() as u64);
                w.pad_in_section(pad)?;
                debug_assert_eq!(w.section_pos(), at);
                let mut buf = Vec::with_capacity(8 * words.len());
                for &word in words {
                    buf.extend_from_slice(&word.to_le_bytes());
                }
                w.write(&buf)?;
            }
            ChunkRef::Runs(_) => {}
        }
    }
    Ok(())
}

/// Write a complete v4 snapshot of `index` (plus its STATS payload) to
/// `out`. Single pass over the output; the index is iterated more than
/// once (CFIs twice, vertical twice) because TIDDATA precedes the
/// descriptor sections, but nothing is buffered beyond one CFI's
/// descriptor block and the `n_cfis + 1` offset table.
pub(crate) fn write_v4<W: Write>(
    out: &mut W,
    index: &MipIndex,
    stats: &SnapshotStats,
) -> Result<(), ColarmError> {
    let header = SnapshotHeader::for_index(index);
    let num_items = header.schema.num_items();
    let mut cw = CrcWriter::new(out);
    let mut w = V4Writer::new(&mut cw);
    let mut entries: Vec<DirEntry> = Vec::new();

    // Head.
    let mut head = [0u8; HEAD_LEN as usize];
    head[0..8].copy_from_slice(&MAGIC);
    head[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // flags (head[12..16]) and the rest stay zero.
    w.write_raw(&head)?;

    // HEADER.
    w.begin_section();
    w.write(&header.encode())?;
    entries.push(w.end_section(super::format::SEC_HEADER));

    // RECORDS16: raw row-major u16 LE value codes.
    w.pad_raw_to(SECTION_ALIGN)?;
    w.begin_section();
    {
        let mut buf: Vec<u8> = Vec::with_capacity(2 * header.schema.num_attributes() * 1024);
        for (_, values) in index.dataset().iter() {
            for &v in values {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            if buf.len() >= 1 << 16 {
                w.write(&buf)?;
                buf.clear();
            }
        }
        w.write(&buf)?;
    }
    entries.push(w.end_section(SEC_RECORDS16));

    // TIDDATA: container payloads for every CFI, then every vertical
    // tid-list, in iteration order.
    w.pad_raw_to(SECTION_ALIGN)?;
    w.begin_section();
    let mut placer = Placer::default();
    for (_, cfi) in index.ittree().iter() {
        write_tidset_data(&mut w, &cfi.tids, &mut placer)?;
    }
    for i in 0..num_items {
        write_tidset_data(&mut w, index.vertical().tids(ItemId(i as u32)), &mut placer)?;
    }
    entries.push(w.end_section(SEC_TIDDATA));

    // CFI_META + offset table, replaying placement from the start.
    let mut placer = Placer::default();
    w.pad_raw_to(SECTION_ALIGN)?;
    w.begin_section();
    let mut cfi_offsets: Vec<u64> = Vec::new();
    let mut buf = Vec::new();
    for (_, cfi) in index.ittree().iter() {
        cfi_offsets.push(w.section_pos());
        buf.clear();
        encode_itemset(&mut buf, &cfi.itemset);
        encode_tidset_meta(&mut buf, &cfi.tids, &mut placer);
        w.write(&buf)?;
    }
    cfi_offsets.push(w.section_pos());
    entries.push(w.end_section(SEC_CFI_META));

    w.pad_raw_to(SECTION_ALIGN)?;
    w.begin_section();
    {
        let mut buf = Vec::with_capacity(8 * cfi_offsets.len());
        for &off in &cfi_offsets {
            buf.extend_from_slice(&off.to_le_bytes());
        }
        w.write(&buf)?;
    }
    entries.push(w.end_section(SEC_CFI_OFFSETS));

    // VERTICAL: continues the same placer (vertical payloads follow CFI
    // payloads inside TIDDATA).
    w.pad_raw_to(SECTION_ALIGN)?;
    w.begin_section();
    {
        let mut buf = Vec::new();
        write_varint(&mut buf, num_items as u64);
        w.write(&buf)?;
        for i in 0..num_items {
            buf.clear();
            encode_tidset_meta(&mut buf, index.vertical().tids(ItemId(i as u32)), &mut placer);
            w.write(&buf)?;
        }
    }
    entries.push(w.end_section(SEC_VERTICAL));

    // STATS (v3 payload encoding).
    w.pad_raw_to(SECTION_ALIGN)?;
    w.begin_section();
    w.write(&stats.encode())?;
    entries.push(w.end_section(super::format::SEC_STATS));

    // Directory + tail.
    w.pad_raw_to(SECTION_ALIGN)?;
    let dir_offset = w.offset;
    let mut dir_bytes = Vec::with_capacity(entries.len() * DIR_ENTRY_LEN as usize);
    for e in &entries {
        dir_bytes.extend_from_slice(&e.encode());
    }
    let dir_crc = crc32(&dir_bytes);
    w.write_raw(&dir_bytes)?;

    let file_len = w.offset + TAIL_LEN;
    let mut tail = [0u8; TAIL_LEN as usize];
    tail[0..8].copy_from_slice(&dir_offset.to_le_bytes());
    tail[8..12].copy_from_slice(&(entries.len() as u32).to_le_bytes());
    tail[12..16].copy_from_slice(&dir_crc.to_le_bytes());
    tail[16..24].copy_from_slice(&file_len.to_le_bytes());
    tail[24..28].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // tail[28..32] reserved, zero.
    tail[32..40].copy_from_slice(&TAIL_MAGIC);
    w.write_raw(&tail)?;
    debug_assert_eq!(w.offset, file_len);
    if entries.len() as u32 > MAX_DIR_ENTRIES {
        return Err(corrupt("internal: wrote more directory entries than readers accept"));
    }
    Ok(())
}
