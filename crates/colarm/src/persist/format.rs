//! The binary snapshot container: magic, version, checksummed sections.
//!
//! Layout (all integers little-endian, varints are unsigned LEB128):
//!
//! ```text
//! file    := magic(8 = "COLARMIX") version(u32) section* trailer
//! section := tag(u8) len(u64) payload(len bytes) crc32(u32 of payload)
//! tags    := 1 HEADER    config + schema + record/item counts
//!            2 RECORDS   chunk of ≤4096 records, row-major varint codes
//!            3 CFIS      chunk of ≤1024 CFIs (itemset + tidset codec)
//!            4 STATS     statistics catalog + fitted cost constants (v3+)
//!            0 TRAILER   total CFI count (u64) + whole-file CRC-32 (u32)
//! ```
//!
//! The trailer's file checksum covers every byte from the magic up to (and
//! excluding) the trailer's own tag byte, so truncation — even truncation
//! that happens to end exactly on a section boundary — is detected at
//! load time. Each section additionally carries its own payload CRC so a
//! bit-flip is localized to the section it corrupts. Records and CFIs are
//! chunked into bounded sections, which is what lets the writer and
//! reader stream a multi-gigabyte index through O(chunk) memory instead
//! of materializing a second serialized copy.
//!
//! Versioning policy: `FORMAT_VERSION` is bumped on any incompatible
//! layout change; a reader rejects versions it does not know with
//! [`ColarmError::Snapshot`] instead of guessing. Unknown section tags
//! within a known version are corruption, not extensions.

use crate::error::ColarmError;
use colarm_data::codec::{crc32, Crc32};
use std::io::{Read, Write};

/// Identifies a binary COLARM index snapshot (8 bytes at offset 0).
pub const MAGIC: [u8; 8] = *b"COLARMIX";

/// Current binary format version. Version 2 switched the CFI tidset
/// payloads to the per-chunk container encoding (codec tag `2`); version 3
/// added the optional STATS section (statistics catalog + fitted cost
/// constants) between the CFI chunks and the trailer; version 4 replaced
/// the sequential framed-section stream with the mmap-friendly aligned
/// layout of `persist::layout` (section directory at the tail, 64-byte
/// aligned sections, raw LE container payloads, offset tables). Versions
/// 1–3 share the framed layout this module implements and keep loading
/// through [`SnapshotReader`](super::SnapshotReader); version 4 loads
/// through the mapped path (`persist::mmap`).
pub const FORMAT_VERSION: u32 = 4;

/// Newest version using the framed sequential-section layout — the cap
/// for `CrcReader::read_preamble`. The streaming writer keeps stamping
/// this version so the owned-decode baseline (and any tooling pinned to
/// the framed layout) can still produce v3 files.
pub const STREAM_VERSION: u32 = 3;

/// Oldest format version this build still reads. Version 1 files differ
/// only in their tidset payload encoding (codec tags `0`/`1`), which the
/// tidset decoder accepts as a fallback, so v1 snapshots load bit-for-bit.
/// Version 1 and 2 files carry no STATS section and load stats-absent
/// (global-average cost fallback, default cost constants).
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Section tags (0–3 unchanged since format version 1; 4 added in v3).
pub(crate) const SEC_TRAILER: u8 = 0;
pub(crate) const SEC_HEADER: u8 = 1;
pub(crate) const SEC_RECORDS: u8 = 2;
pub(crate) const SEC_CFIS: u8 = 3;
pub(crate) const SEC_STATS: u8 = 4;

/// Records per RECORDS chunk / CFIs per CFIS chunk: bounds writer and
/// reader memory while keeping framing overhead negligible.
pub(crate) const RECORDS_PER_CHUNK: usize = 4096;
pub(crate) const CFIS_PER_CHUNK: usize = 1024;

/// Hard cap on a single section's declared payload length. Chunking keeps
/// real sections far below this; a corrupt length prefix must not drive a
/// multi-gigabyte allocation before its checksum is ever verified.
pub(crate) const MAX_SECTION_LEN: u64 = 64 * 1024 * 1024;

/// Shorthand for the snapshot corruption error.
pub(crate) fn corrupt(message: impl Into<String>) -> ColarmError {
    ColarmError::Snapshot {
        message: message.into(),
    }
}

/// Map an I/O failure into the snapshot error taxonomy with context.
pub(crate) fn io_err(context: &str, e: std::io::Error) -> ColarmError {
    ColarmError::Snapshot {
        message: format!("{context}: {e}"),
    }
}

/// A writer that maintains the running whole-file CRC as bytes go out.
pub(crate) struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<W> {
    pub(crate) fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: Crc32::new(),
        }
    }

    /// CRC of everything written so far.
    pub(crate) fn file_crc(&self) -> u32 {
        self.crc.value()
    }

    pub(crate) fn write_all(&mut self, bytes: &[u8]) -> Result<(), ColarmError> {
        self.inner
            .write_all(bytes)
            .map_err(|e| io_err("writing snapshot", e))?;
        self.crc.update(bytes);
        Ok(())
    }

    /// Emit one framed section: tag, length, payload, payload CRC.
    pub(crate) fn write_section(&mut self, tag: u8, payload: &[u8]) -> Result<(), ColarmError> {
        debug_assert!((payload.len() as u64) <= MAX_SECTION_LEN);
        self.write_all(&[tag])?;
        self.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.write_all(payload)?;
        self.write_all(&crc32(payload).to_le_bytes())
    }

    pub(crate) fn into_inner(self) -> W {
        self.inner
    }
}

/// A reader that tracks the running whole-file CRC and byte offset, so the
/// trailer's checksum can be verified and errors can cite a position.
pub(crate) struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
    offset: u64,
}

/// One decoded section frame.
pub(crate) struct Section {
    pub(crate) tag: u8,
    pub(crate) payload: Vec<u8>,
    /// Whole-file CRC over all bytes *before* this section's tag — what
    /// the trailer stores when `tag == SEC_TRAILER`.
    pub(crate) file_crc_before: u32,
    /// Byte offset of this section's tag, for error messages.
    pub(crate) offset: u64,
}

impl<R: Read> CrcReader<R> {
    pub(crate) fn new(inner: R) -> Self {
        CrcReader {
            inner,
            crc: Crc32::new(),
            offset: 0,
        }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), ColarmError> {
        let at = self.offset;
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                corrupt(format!(
                    "truncated snapshot: unexpected end of file at byte {at}"
                ))
            } else {
                io_err("reading snapshot", e)
            }
        })?;
        self.crc.update(buf);
        self.offset += buf.len() as u64;
        Ok(())
    }

    /// Read and verify the magic + format version preamble.
    pub(crate) fn read_preamble(&mut self) -> Result<u32, ColarmError> {
        let mut magic = [0u8; 8];
        self.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(corrupt(
                "not a binary COLARM snapshot (bad magic); \
                 legacy JSON snapshots are detected separately",
            ));
        }
        let mut v = [0u8; 4];
        self.read_exact(&mut v)?;
        let version = u32::from_le_bytes(v);
        if version == FORMAT_VERSION {
            return Err(corrupt(format!(
                "snapshot format version {version} uses the aligned mapped \
                 layout and loads via load_index, not the framed stream reader"
            )));
        }
        if !(MIN_FORMAT_VERSION..=STREAM_VERSION).contains(&version) {
            return Err(corrupt(format!(
                "unsupported snapshot format version {version} \
                 (this build reads versions {MIN_FORMAT_VERSION} \
                 through {FORMAT_VERSION})"
            )));
        }
        Ok(version)
    }

    /// Read the next framed section, verifying its payload CRC.
    pub(crate) fn read_section(&mut self) -> Result<Section, ColarmError> {
        let file_crc_before = self.crc.value();
        let offset = self.offset;
        let mut tag = [0u8; 1];
        self.read_exact(&mut tag)?;
        let mut len_bytes = [0u8; 8];
        self.read_exact(&mut len_bytes)?;
        let len = u64::from_le_bytes(len_bytes);
        if len > MAX_SECTION_LEN {
            return Err(corrupt(format!(
                "section at byte {offset} declares an implausible length \
                 {len} (limit {MAX_SECTION_LEN}); corrupt length prefix"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.read_exact(&mut payload)?;
        let mut crc_bytes = [0u8; 4];
        self.read_exact(&mut crc_bytes)?;
        let expected = u32::from_le_bytes(crc_bytes);
        let actual = crc32(&payload);
        if actual != expected {
            return Err(corrupt(format!(
                "checksum mismatch in section (tag {}) at byte {offset}: \
                 stored {expected:#010x}, computed {actual:#010x}",
                tag[0]
            )));
        }
        Ok(Section {
            tag: tag[0],
            payload,
            file_crc_before,
            offset,
        })
    }

    /// After the trailer: any further byte is garbage.
    pub(crate) fn expect_eof(&mut self) -> Result<(), ColarmError> {
        let mut probe = [0u8; 1];
        match self.inner.read(&mut probe) {
            Ok(0) => Ok(()),
            Ok(_) => Err(corrupt(format!(
                "trailing garbage after snapshot trailer at byte {}",
                self.offset
            ))),
            Err(e) => Err(io_err("reading snapshot", e)),
        }
    }
}
