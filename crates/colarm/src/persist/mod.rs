//! MIP-index persistence.
//!
//! The offline phase is a one-time cost (paper §3.2), so a production
//! deployment wants to build the index once and reload it across process
//! restarts. A snapshot stores the dataset, the build configuration and
//! the mined closed itemsets with their exact tidsets; loading rebuilds
//! the derived structures (IT-tree inverted lists, packed R-tree, index
//! statistics) deterministically — those rebuilds are cheap compared to
//! re-running CHARM.
//!
//! Two on-disk representations exist:
//!
//! * **Binary (current)** — the versioned, sectioned, checksummed format
//!   of [`mod@format`]: magic `COLARMIX`, delta-varint tidsets, per-section
//!   and whole-file CRC-32. Written and read *streaming* through
//!   [`SnapshotWriter`] / [`SnapshotReader`], so a multi-gigabyte index
//!   never needs a second in-memory serialized copy. All writes go
//!   through a temp file + `rename`, so a crash mid-save never clobbers
//!   an existing snapshot.
//! * **Legacy JSON** — the original [`IndexSnapshot`] serde format, kept
//!   so snapshots written by earlier builds still load.
//!
//! [`load_index`] (and [`IndexSnapshot::load`]) sniff the 8-byte magic to
//! pick the right reader, so callers never specify a format. Every
//! failure mode — I/O, truncation, bit-flips, unknown versions, unknown
//! packing codes — surfaces as [`ColarmError::Snapshot`]; corrupt input
//! never panics and never masquerades as a query-parse error.

pub mod format;
pub mod layout;
pub mod mmap;

use crate::cost::CostConstants;
use crate::error::ColarmError;
use crate::mip::{MipIndex, MipIndexConfig, Packing};
use crate::stats::StatsCatalog;
use colarm_data::codec::{self, Cursor};
use colarm_data::{Attribute, Dataset, DatasetBuilder, ItemId, Itemset, Schema, Tidset, ValueId};
use colarm_mine::ClosedItemset;
use format::{corrupt, io_err, CrcReader, CrcWriter};
pub use format::{FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION, STREAM_VERSION};
pub use mmap::ValidationMode;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Longest accepted attribute name / value label in a binary header
/// (guards allocations against corrupt length prefixes).
const MAX_LABEL_LEN: usize = 1 << 16;

fn packing_to_byte(p: Packing) -> u8 {
    match p {
        Packing::Str => 0,
        Packing::Hilbert => 1,
        Packing::Insertion => 2,
    }
}

fn packing_from_byte(b: u8) -> Result<Packing, ColarmError> {
    match b {
        0 => Ok(Packing::Str),
        1 => Ok(Packing::Hilbert),
        2 => Ok(Packing::Insertion),
        other => Err(corrupt(format!(
            "unknown R-tree packing code {other} (known: 0=STR, 1=Hilbert, 2=insertion)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// Everything a binary snapshot declares up front: the build configuration
/// and the dataset schema, so a reader can validate all following sections
/// against it.
#[derive(Debug, Clone)]
pub struct SnapshotHeader {
    /// Primary support threshold the CFIs were mined at.
    pub primary_support: f64,
    /// R-tree fanout.
    pub fanout: usize,
    /// R-tree construction scheme.
    pub packing: Packing,
    /// The dataset schema (attribute names and value domains).
    pub schema: Arc<Schema>,
    /// Number of records the RECORDS sections must supply.
    pub num_records: u64,
}

impl SnapshotHeader {
    /// The header describing a built index.
    pub fn for_index(index: &MipIndex) -> SnapshotHeader {
        let config = index.config();
        SnapshotHeader {
            primary_support: config.primary_support,
            fanout: config.fanout,
            packing: config.packing,
            schema: index.dataset().schema().clone(),
            num_records: index.dataset().num_records() as u64,
        }
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.primary_support.to_le_bytes());
        codec::write_varint(&mut out, self.fanout as u64);
        out.push(packing_to_byte(self.packing));
        codec::write_varint(&mut out, self.schema.num_attributes() as u64);
        for attr in self.schema.attributes() {
            codec::write_string(&mut out, attr.name());
            codec::write_varint(&mut out, attr.domain_size() as u64);
            for value in attr.values() {
                codec::write_string(&mut out, value);
            }
        }
        codec::write_varint(&mut out, self.num_records);
        out
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<SnapshotHeader, ColarmError> {
        let mut cur = Cursor::new(payload);
        let result = Self::decode_fields(&mut cur).map_err(|e| corrupt(format!("header: {e}")))?;
        if !cur.is_empty() {
            return Err(corrupt(format!(
                "header has {} trailing bytes",
                cur.remaining()
            )));
        }
        result
    }

    /// Codec-level field reads; the outer `Result` is semantic validation.
    fn decode_fields(
        cur: &mut Cursor<'_>,
    ) -> Result<Result<SnapshotHeader, ColarmError>, codec::CodecError> {
        let ps_bytes = cur.read_bytes(8)?;
        let primary_support = f64::from_le_bytes(ps_bytes.try_into().expect("8 bytes"));
        let fanout = cur.read_varint()?;
        let packing_byte = cur.read_u8()?;
        let num_attributes = cur.read_varint()?;
        if num_attributes > u16::MAX as u64 {
            return Ok(Err(corrupt(format!(
                "header declares {num_attributes} attributes (limit {})",
                u16::MAX
            ))));
        }
        let mut attributes = Vec::with_capacity(num_attributes as usize);
        for _ in 0..num_attributes {
            let name = cur.read_string(MAX_LABEL_LEN)?;
            let domain = cur.read_varint()?;
            if domain > u16::MAX as u64 + 1 {
                return Ok(Err(corrupt(format!(
                    "attribute {name:?} declares domain size {domain} (limit {})",
                    u16::MAX as u64 + 1
                ))));
            }
            let mut values = Vec::with_capacity(domain as usize);
            for _ in 0..domain {
                values.push(cur.read_string(MAX_LABEL_LEN)?);
            }
            attributes.push(Attribute::new(name, values));
        }
        let num_records = cur.read_varint()?;
        if num_records > u32::MAX as u64 {
            return Ok(Err(corrupt(format!(
                "header declares {num_records} records (tids are 32-bit)"
            ))));
        }
        if !(primary_support > 0.0 && primary_support <= 1.0) {
            return Ok(Err(corrupt(format!(
                "header declares primary support {primary_support} outside (0, 1]"
            ))));
        }
        let packing = match packing_from_byte(packing_byte) {
            Ok(p) => p,
            Err(e) => return Ok(Err(e)),
        };
        let schema = match Schema::new(attributes) {
            Ok(s) => Arc::new(s),
            Err(e) => return Ok(Err(corrupt(format!("invalid schema in header: {e}")))),
        };
        Ok(Ok(SnapshotHeader {
            primary_support,
            fanout: fanout as usize,
            packing,
            schema,
            num_records,
        }))
    }
}

// ---------------------------------------------------------------------------
// Itemset codec (delta varints, like sparse tidsets)
// ---------------------------------------------------------------------------

pub(crate) fn encode_itemset(out: &mut Vec<u8>, itemset: &Itemset) {
    let items = itemset.items();
    codec::write_varint(out, items.len() as u64);
    let mut prev = 0u32;
    for (i, item) in items.iter().enumerate() {
        let id = item.0;
        let delta = if i == 0 { id as u64 } else { (id - prev - 1) as u64 };
        codec::write_varint(out, delta);
        prev = id;
    }
}

pub(crate) fn decode_itemset(cur: &mut Cursor<'_>, num_items: u32) -> Result<Itemset, ColarmError> {
    let at = cur.pos();
    let len = cur
        .read_varint()
        .map_err(|e| corrupt(format!("CFI itemset: {e}")))?;
    if len > num_items as u64 {
        return Err(corrupt(format!(
            "itemset at byte {at} declares {len} items but the schema has {num_items}"
        )));
    }
    let mut items = Vec::with_capacity(len as usize);
    let mut prev: Option<u32> = None;
    for _ in 0..len {
        let delta = cur
            .read_varint()
            .map_err(|e| corrupt(format!("CFI itemset: {e}")))?;
        let id = match prev {
            None => delta,
            Some(p) => (p as u64)
                .checked_add(delta)
                .and_then(|v| v.checked_add(1))
                .ok_or_else(|| corrupt(format!("itemset at byte {at}: item id overflows")))?,
        };
        if id >= num_items as u64 {
            return Err(corrupt(format!(
                "itemset at byte {at}: item id {id} out of range (schema has {num_items} items)"
            )));
        }
        prev = Some(id as u32);
        items.push(ItemId(id as u32));
    }
    Ok(Itemset::from_sorted(items))
}

// ---------------------------------------------------------------------------
// STATS section (format v3): statistics catalog + fitted cost constants
// ---------------------------------------------------------------------------

/// The snapshot's optional STATS section (format v3+): the statistics
/// catalog computed at build time (absent for `--no-stats` builds) and the
/// cost-model constants as fitted when the snapshot was written, so
/// calibration learned from feedback survives a restart. Constants are
/// stored as raw IEEE-754 bits and restore bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotStats {
    /// The statistics catalog, when the index was built with one.
    pub catalog: Option<StatsCatalog>,
    /// Fitted cost constants at save time.
    pub constants: CostConstants,
}

impl SnapshotStats {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let c = &self.constants;
        for v in [
            c.node,
            c.eliminate,
            c.verify,
            c.confidence,
            c.select,
            c.arm,
            c.union_const,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        match &self.catalog {
            None => out.push(0),
            Some(catalog) => {
                out.push(1);
                catalog.encode(&mut out);
            }
        }
        out
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<SnapshotStats, ColarmError> {
        let mut cur = Cursor::new(payload);
        let mut next = || -> Result<f64, ColarmError> {
            let bytes = cur
                .read_bytes(8)
                .map_err(|e| corrupt(format!("stats constants: {e}")))?;
            Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
        };
        let constants = CostConstants {
            node: next()?,
            eliminate: next()?,
            verify: next()?,
            confidence: next()?,
            select: next()?,
            arm: next()?,
            union_const: next()?,
        };
        for (name, v) in [
            ("node", constants.node),
            ("eliminate", constants.eliminate),
            ("verify", constants.verify),
            ("confidence", constants.confidence),
            ("select", constants.select),
            ("arm", constants.arm),
            ("union_const", constants.union_const),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(corrupt(format!(
                    "stats section: cost constant {name} is {v} (must be finite and >= 0)"
                )));
            }
        }
        let catalog = match cur
            .read_u8()
            .map_err(|e| corrupt(format!("stats section: {e}")))?
        {
            0 => None,
            1 => Some(
                StatsCatalog::decode(&mut cur)
                    .map_err(|e| corrupt(format!("stats catalog: {e}")))?,
            ),
            other => {
                return Err(corrupt(format!(
                    "stats section: unknown catalog presence byte {other}"
                )))
            }
        };
        if !cur.is_empty() {
            return Err(corrupt(format!(
                "stats section has {} trailing bytes",
                cur.remaining()
            )));
        }
        Ok(SnapshotStats { catalog, constants })
    }
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

/// Streaming binary snapshot writer: header first, then every record, then
/// every CFI, then [`SnapshotWriter::finish`]. Rows and CFIs are buffered
/// into bounded chunks (4096 records / 1024 CFIs per section) so memory
/// stays O(chunk) regardless of index size.
pub struct SnapshotWriter<W: Write> {
    w: CrcWriter<W>,
    arity: usize,
    num_records: u64,
    records_written: u64,
    in_chunk: usize,
    cfi_count: u64,
    chunk: Vec<u8>,
    in_cfis: bool,
    wrote_stats: bool,
}

impl<W: Write> SnapshotWriter<W> {
    /// Write the preamble and header section.
    pub fn new(inner: W, header: &SnapshotHeader) -> Result<SnapshotWriter<W>, ColarmError> {
        let mut w = CrcWriter::new(inner);
        w.write_all(&MAGIC)?;
        // The streaming writer produces the framed sequential layout,
        // whose newest revision is v3; v4 files are written by
        // `persist::layout` and loaded via the mapped path.
        w.write_all(&STREAM_VERSION.to_le_bytes())?;
        w.write_section(format::SEC_HEADER, &header.encode())?;
        Ok(SnapshotWriter {
            w,
            arity: header.schema.num_attributes(),
            num_records: header.num_records,
            records_written: 0,
            in_chunk: 0,
            cfi_count: 0,
            chunk: Vec::new(),
            in_cfis: false,
            wrote_stats: false,
        })
    }

    fn flush_chunk(&mut self, tag: u8) -> Result<(), ColarmError> {
        if self.in_chunk > 0 {
            self.w.write_section(tag, &self.chunk)?;
            self.chunk.clear();
            self.in_chunk = 0;
        }
        Ok(())
    }

    /// Append one record (value codes in schema order). All records must
    /// precede the first CFI.
    pub fn write_record(&mut self, values: &[ValueId]) -> Result<(), ColarmError> {
        if self.in_cfis {
            return Err(corrupt("writer misuse: records must precede CFIs"));
        }
        if self.records_written == self.num_records {
            return Err(corrupt(format!(
                "writer misuse: header declares {} records, got more",
                self.num_records
            )));
        }
        if values.len() != self.arity {
            return Err(corrupt(format!(
                "writer misuse: record has {} values, schema has {} attributes",
                values.len(),
                self.arity
            )));
        }
        for &v in values {
            codec::write_varint(&mut self.chunk, v as u64);
        }
        self.records_written += 1;
        self.in_chunk += 1;
        if self.in_chunk == format::RECORDS_PER_CHUNK {
            self.flush_chunk(format::SEC_RECORDS)?;
        }
        Ok(())
    }

    fn close_records(&mut self) -> Result<(), ColarmError> {
        if self.records_written != self.num_records {
            return Err(corrupt(format!(
                "writer misuse: header declares {} records, only {} written",
                self.num_records, self.records_written
            )));
        }
        self.flush_chunk(format::SEC_RECORDS)?;
        self.in_cfis = true;
        Ok(())
    }

    /// Append one closed frequent itemset with its exact tidset. All CFIs
    /// must precede the STATS section.
    pub fn write_cfi(&mut self, itemset: &Itemset, tids: &Tidset) -> Result<(), ColarmError> {
        if self.wrote_stats {
            return Err(corrupt("writer misuse: CFIs must precede the stats section"));
        }
        if !self.in_cfis {
            self.close_records()?;
        }
        encode_itemset(&mut self.chunk, itemset);
        tids.encode_binary(&mut self.chunk);
        self.cfi_count += 1;
        self.in_chunk += 1;
        if self.in_chunk == format::CFIS_PER_CHUNK {
            self.flush_chunk(format::SEC_CFIS)?;
        }
        Ok(())
    }

    /// Write the optional STATS section (statistics catalog + fitted cost
    /// constants). At most once, after every CFI, before
    /// [`SnapshotWriter::finish`].
    pub fn write_stats(&mut self, stats: &SnapshotStats) -> Result<(), ColarmError> {
        if self.wrote_stats {
            return Err(corrupt("writer misuse: stats section written twice"));
        }
        if !self.in_cfis {
            self.close_records()?;
        }
        self.flush_chunk(format::SEC_CFIS)?;
        self.w.write_section(format::SEC_STATS, &stats.encode())?;
        self.wrote_stats = true;
        Ok(())
    }

    /// Flush pending chunks, write the trailer (CFI count + whole-file
    /// CRC) and return the underlying writer.
    pub fn finish(mut self) -> Result<W, ColarmError> {
        if !self.in_cfis {
            self.close_records()?;
        }
        self.flush_chunk(format::SEC_CFIS)?;
        let file_crc = self.w.file_crc();
        let mut trailer = Vec::with_capacity(12);
        trailer.extend_from_slice(&self.cfi_count.to_le_bytes());
        trailer.extend_from_slice(&file_crc.to_le_bytes());
        self.w.write_section(format::SEC_TRAILER, &trailer)?;
        Ok(self.w.into_inner())
    }
}

// ---------------------------------------------------------------------------
// Streaming reader
// ---------------------------------------------------------------------------

/// Streaming binary snapshot reader: verifies the preamble and header on
/// construction, then [`SnapshotReader::restore`] (or
/// [`SnapshotReader::read_parts`]) decodes and validates every section.
pub struct SnapshotReader<R: Read> {
    r: CrcReader<R>,
    header: SnapshotHeader,
    version: u32,
}

impl<R: Read> SnapshotReader<R> {
    /// Read the preamble (magic, version) and the header section.
    pub fn new(inner: R) -> Result<SnapshotReader<R>, ColarmError> {
        let mut r = CrcReader::new(inner);
        let version = r.read_preamble()?;
        let sec = r.read_section()?;
        if sec.tag != format::SEC_HEADER {
            return Err(corrupt(format!(
                "expected header section at byte {}, found tag {}",
                sec.offset, sec.tag
            )));
        }
        let header = SnapshotHeader::decode(&sec.payload)?;
        Ok(SnapshotReader { r, header, version })
    }

    /// The decoded header (available before the body is read).
    pub fn header(&self) -> &SnapshotHeader {
        &self.header
    }

    /// The snapshot's format version (from the preamble).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Decode the body into the raw parts a [`MipIndex`] is rebuilt from,
    /// dropping the STATS section. Prefer
    /// [`SnapshotReader::read_parts_with_stats`] when calibration matters.
    pub fn read_parts(
        self,
    ) -> Result<(Dataset, MipIndexConfig, Vec<ClosedItemset>), ColarmError> {
        let (dataset, config, cfis, _) = self.read_parts_with_stats()?;
        Ok((dataset, config, cfis))
    }

    /// Decode the body into the raw parts a [`MipIndex`] is rebuilt from,
    /// plus the STATS section when the snapshot carries one (v3+; v1/v2
    /// snapshots and stats-less v3 files yield `None` — the stats-absent
    /// fallback).
    #[allow(clippy::type_complexity)]
    pub fn read_parts_with_stats(
        mut self,
    ) -> Result<(Dataset, MipIndexConfig, Vec<ClosedItemset>, Option<SnapshotStats>), ColarmError>
    {
        let schema = self.header.schema.clone();
        let num_items = schema.num_items() as u32;
        let universe = self.header.num_records as u32;
        let arity = schema.num_attributes();
        let mut builder = DatasetBuilder::new(schema);
        let mut row: Vec<ValueId> = Vec::with_capacity(arity);
        let mut records_read: u64 = 0;
        let mut cfis: Vec<ClosedItemset> = Vec::new();
        let mut seen_cfis = false;
        let mut stats: Option<SnapshotStats> = None;
        loop {
            let sec = self.r.read_section()?;
            match sec.tag {
                format::SEC_RECORDS => {
                    if seen_cfis {
                        return Err(corrupt(format!(
                            "records section at byte {} after a CFI section",
                            sec.offset
                        )));
                    }
                    let mut cur = Cursor::new(&sec.payload);
                    while !cur.is_empty() {
                        if records_read == self.header.num_records {
                            return Err(corrupt(format!(
                                "more records than the header's {}",
                                self.header.num_records
                            )));
                        }
                        row.clear();
                        for _ in 0..arity {
                            let v = cur
                                .read_varint()
                                .map_err(|e| corrupt(format!("record data: {e}")))?;
                            if v > u16::MAX as u64 {
                                return Err(corrupt(format!(
                                    "record {records_read}: value code {v} exceeds 16 bits"
                                )));
                            }
                            row.push(v as ValueId);
                        }
                        builder
                            .push(&row)
                            .map_err(|e| corrupt(format!("record {records_read}: {e}")))?;
                        records_read += 1;
                    }
                }
                format::SEC_CFIS => {
                    if records_read != self.header.num_records {
                        return Err(corrupt(format!(
                            "CFI section at byte {} before all records arrived \
                             ({records_read} of {})",
                            sec.offset, self.header.num_records
                        )));
                    }
                    if stats.is_some() {
                        return Err(corrupt(format!(
                            "CFI section at byte {} after the stats section",
                            sec.offset
                        )));
                    }
                    seen_cfis = true;
                    let mut cur = Cursor::new(&sec.payload);
                    while !cur.is_empty() {
                        let itemset = decode_itemset(&mut cur, num_items)?;
                        let tids = Tidset::decode_binary(&mut cur, universe)
                            .map_err(|e| corrupt(format!("CFI tidset: {e}")))?;
                        cfis.push(ClosedItemset { itemset, tids });
                    }
                }
                // v1/v2 files predate the STATS tag: finding one there is
                // corruption (falls through to the unknown-tag arm).
                format::SEC_STATS if self.version >= 3 => {
                    if stats.is_some() {
                        return Err(corrupt(format!(
                            "duplicate stats section at byte {}",
                            sec.offset
                        )));
                    }
                    if records_read != self.header.num_records {
                        return Err(corrupt(format!(
                            "stats section at byte {} before all records arrived \
                             ({records_read} of {})",
                            sec.offset, self.header.num_records
                        )));
                    }
                    stats = Some(SnapshotStats::decode(&sec.payload)?);
                }
                format::SEC_TRAILER => {
                    if sec.payload.len() != 12 {
                        return Err(corrupt(format!(
                            "trailer payload is {} bytes, expected 12",
                            sec.payload.len()
                        )));
                    }
                    let declared_cfis =
                        u64::from_le_bytes(sec.payload[0..8].try_into().expect("8 bytes"));
                    let declared_crc =
                        u32::from_le_bytes(sec.payload[8..12].try_into().expect("4 bytes"));
                    if declared_cfis != cfis.len() as u64 {
                        return Err(corrupt(format!(
                            "trailer declares {declared_cfis} CFIs, file contains {}",
                            cfis.len()
                        )));
                    }
                    if declared_crc != sec.file_crc_before {
                        return Err(corrupt(format!(
                            "whole-file checksum mismatch: trailer stores {declared_crc:#010x}, \
                             computed {:#010x}",
                            sec.file_crc_before
                        )));
                    }
                    if records_read != self.header.num_records {
                        return Err(corrupt(format!(
                            "header declares {} records, file contains {records_read}",
                            self.header.num_records
                        )));
                    }
                    self.r.expect_eof()?;
                    break;
                }
                other => {
                    return Err(corrupt(format!(
                        "unknown section tag {other} at byte {}",
                        sec.offset
                    )));
                }
            }
        }
        let config = MipIndexConfig {
            primary_support: self.header.primary_support,
            fanout: self.header.fanout,
            packing: self.header.packing,
            // A runtime knob, not an index property: restored indexes
            // fall back to the session default.
            threads: 0,
            // The catalog (when present) rides in the STATS section and
            // is attached by the loader; never recomputed on restore.
            collect_stats: true,
        };
        Ok((builder.build(), config, cfis, stats))
    }

    /// Decode the body and rebuild the index (derived structures are
    /// reconstructed; the miner is skipped). Drops persisted calibration;
    /// prefer [`SnapshotReader::restore_with_constants`].
    pub fn restore(self) -> Result<MipIndex, ColarmError> {
        Ok(self.restore_with_constants()?.0)
    }

    /// Decode the body and rebuild the index, attaching the persisted
    /// statistics catalog (when present) and returning the persisted cost
    /// constants (`None` for stats-less snapshots — callers keep their
    /// defaults).
    pub fn restore_with_constants(self) -> Result<(MipIndex, Option<CostConstants>), ColarmError> {
        let (dataset, config, cfis, stats) = self.read_parts_with_stats()?;
        let mut index = MipIndex::from_parts(dataset, config, cfis)?;
        let constants = stats.map(|s| {
            index.set_catalog(s.catalog);
            s.constants
        });
        Ok((index, constants))
    }
}

// ---------------------------------------------------------------------------
// Path-based save/load (atomic, format auto-detection)
// ---------------------------------------------------------------------------

/// Run `write_fn` against a temp file in `path`'s directory, fsync, then
/// atomically `rename` into place. Returns the file size in bytes. On any
/// failure the temp file is removed and `path` is left untouched.
fn write_atomic<F>(path: &Path, write_fn: F) -> Result<u64, ColarmError>
where
    F: FnOnce(&mut std::io::BufWriter<std::fs::File>) -> Result<(), ColarmError>,
{
    let file_name = path
        .file_name()
        .ok_or_else(|| corrupt(format!("invalid snapshot path {}", path.display())))?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let tmp = dir.join(format!(
        "{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let file =
            std::fs::File::create(&tmp).map_err(|e| io_err("creating snapshot temp file", e))?;
        let mut buf = std::io::BufWriter::new(file);
        write_fn(&mut buf)?;
        buf.flush().map_err(|e| io_err("flushing snapshot", e))?;
        let file = buf
            .into_inner()
            .map_err(|e| io_err("flushing snapshot", e.into_error()))?;
        file.sync_all().map_err(|e| io_err("syncing snapshot", e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("inspecting snapshot", e))?
            .len();
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io_err("publishing snapshot (rename)", e))?;
        Ok(len)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Write a built index into a binary snapshot at `path` (atomic
/// temp-file + `rename`; the index is never serialized in memory).
/// Writes the current aligned v4 layout, designed for in-place mmap
/// loading. Returns the snapshot size in bytes. Persists the index's
/// statistics catalog with *default* cost constants; use
/// [`save_index_with_constants`] to persist fitted calibration.
pub fn save_index(index: &MipIndex, path: impl AsRef<Path>) -> Result<u64, ColarmError> {
    save_index_with_constants(index, CostConstants::default(), path)
}

/// [`save_index`] carrying the given fitted cost constants in the STATS
/// section, so calibration survives the restart bit-exactly.
pub fn save_index_with_constants(
    index: &MipIndex,
    constants: CostConstants,
    path: impl AsRef<Path>,
) -> Result<u64, ColarmError> {
    // Re-saving reads every mapped byte (records included), so finish
    // any deferred checksum validation first — never persist bytes that
    // haven't been signed off.
    index.ensure_validated()?;
    let stats = SnapshotStats {
        catalog: index.catalog().cloned(),
        constants,
    };
    write_atomic(path.as_ref(), |out| layout::write_v4(out, index, &stats))
}

/// Write the *framed v3* layout instead of v4 — the owned-decode
/// baseline for the cold-start benchmark, and an escape hatch for
/// tooling pinned to the sequential-stream format. Carries the same
/// STATS payload as [`save_index_with_constants`].
pub fn save_index_v3_with_constants(
    index: &MipIndex,
    constants: CostConstants,
    path: impl AsRef<Path>,
) -> Result<u64, ColarmError> {
    index.ensure_validated()?;
    let header = SnapshotHeader::for_index(index);
    let stats = SnapshotStats {
        catalog: index.catalog().cloned(),
        constants,
    };
    write_atomic(path.as_ref(), |out| {
        let mut w = SnapshotWriter::new(out, &header)?;
        for (_, values) in index.dataset().iter() {
            w.write_record(values)?;
        }
        for (_, cfi) in index.ittree().iter() {
            w.write_cfi(&cfi.itemset, &cfi.tids)?;
        }
        w.write_stats(&stats)?;
        w.finish()?;
        Ok(())
    })
}

/// What the first bytes of a snapshot file say about its format.
enum Sniff {
    /// `COLARMIX` magic plus the declared format version.
    Binary(u32),
    /// No magic: the legacy JSON representation (or garbage — the JSON
    /// reader reports that cleanly).
    Legacy,
}

/// Decide binary-vs-legacy by reading only the 12-byte header prefix —
/// never the whole file. An empty file is its own clean error rather
/// than a JSON-parse failure.
fn sniff_prefix(file: &mut std::fs::File, path: &Path) -> Result<Sniff, ColarmError> {
    let mut head = [0u8; 12];
    let mut read = 0;
    while read < head.len() {
        match file.read(&mut head[read..]) {
            Ok(0) => break,
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err("reading snapshot", e)),
        }
    }
    if read == 0 {
        return Err(corrupt(format!(
            "snapshot {} is empty (0 bytes)",
            path.display()
        )));
    }
    if read >= head.len() && head[..8] == MAGIC {
        let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
        return Ok(Sniff::Binary(version));
    }
    Ok(Sniff::Legacy)
}

fn read_legacy_json(mut file: std::fs::File) -> Result<IndexSnapshot, ColarmError> {
    use std::io::Seek;
    file.rewind().map_err(|e| io_err("reading snapshot", e))?;
    let mut text = String::new();
    file.read_to_string(&mut text).map_err(|e| {
        if e.kind() == std::io::ErrorKind::InvalidData {
            corrupt("snapshot is neither binary (no magic) nor UTF-8 JSON")
        } else {
            io_err("reading snapshot", e)
        }
    })?;
    IndexSnapshot::from_json(&text)
}

/// Load an index snapshot from `path`, auto-detecting the format from
/// the 12-byte header prefix: v4 loads through the zero-copy mapped path
/// (lazy CRC validation by default), v1–v3 through the streaming owned
/// decoder, and files without the magic as legacy JSON. Drops persisted
/// cost constants; see [`load_index_with_constants`].
pub fn load_index(path: impl AsRef<Path>) -> Result<MipIndex, ColarmError> {
    Ok(load_index_with_constants(path)?.0)
}

/// [`load_index`] also returning the persisted fitted cost constants:
/// `None` for legacy JSON and v1/v2 (stats-less) snapshots, whose callers
/// keep their defaults. The statistics catalog, when present, is attached
/// to the returned index. v4 snapshots map with
/// [`ValidationMode::Lazy`]; use [`load_index_with_mode`] to choose.
pub fn load_index_with_constants(
    path: impl AsRef<Path>,
) -> Result<(MipIndex, Option<CostConstants>), ColarmError> {
    load_index_with_mode(path, ValidationMode::Lazy)
}

/// [`load_index_with_constants`] with an explicit [`ValidationMode`] for
/// v4 mapped loads: `Eager` checksums every section before returning,
/// `Lazy` defers non-header section CRCs to the first query. The mode is
/// ignored for v1–v3 and legacy JSON snapshots, whose decoders always
/// validate everything up front.
pub fn load_index_with_mode(
    path: impl AsRef<Path>,
    mode: ValidationMode,
) -> Result<(MipIndex, Option<CostConstants>), ColarmError> {
    let path = path.as_ref();
    let mut file = std::fs::File::open(path)
        .map_err(|e| io_err(&format!("opening snapshot {}", path.display()), e))?;
    match sniff_prefix(&mut file, path)? {
        Sniff::Binary(FORMAT_VERSION) => {
            drop(file);
            mmap::load_v4(path, mode)
        }
        Sniff::Binary(_) => {
            // v1–v3 (or an unknown version, which read_preamble rejects
            // with the canonical message).
            use std::io::Seek;
            file.rewind().map_err(|e| io_err("reading snapshot", e))?;
            SnapshotReader::new(std::io::BufReader::new(file))?.restore_with_constants()
        }
        Sniff::Legacy => Ok((read_legacy_json(file)?.restore()?, None)),
    }
}

// ---------------------------------------------------------------------------
// Legacy JSON snapshot (compatibility reader) + materialized snapshot API
// ---------------------------------------------------------------------------

/// Materialized snapshot of a MIP-index.
///
/// [`IndexSnapshot::save`] writes the binary format; [`IndexSnapshot::load`]
/// reads either format. The serde derives define the *legacy JSON* layout,
/// kept so snapshots written by earlier builds still load. Prefer
/// [`save_index`] / [`load_index`] when the index does not need to be held
/// in snapshot form — they stream and skip this intermediate copy.
#[derive(Debug, Serialize, Deserialize)]
pub struct IndexSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    dataset: Dataset,
    primary_support: f64,
    fanout: usize,
    packing: u8,
    cfis: Vec<(Itemset, Tidset)>,
}

/// Current legacy-JSON snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl IndexSnapshot {
    /// Capture a snapshot of a built index.
    /// On a *lazily-validated mapped* index, call
    /// [`MipIndex::ensure_validated`] first (or load with
    /// [`ValidationMode::Eager`]): the captured snapshot borrows mapped
    /// bytes that serializing it will read.
    pub fn capture(index: &MipIndex) -> IndexSnapshot {
        let config = index.config();
        IndexSnapshot {
            version: SNAPSHOT_VERSION,
            dataset: index.dataset().clone(),
            primary_support: config.primary_support,
            fanout: config.fanout,
            packing: packing_to_byte(config.packing),
            cfis: index
                .ittree()
                .iter()
                .map(|(_, c)| (c.itemset.clone(), c.tids.clone()))
                .collect(),
        }
    }

    /// Restore the index: rebuild the derived structures from the stored
    /// CFIs without re-running the miner.
    pub fn restore(self) -> Result<MipIndex, ColarmError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "unsupported index snapshot version {} (expected {SNAPSHOT_VERSION})",
                self.version
            )));
        }
        let config = MipIndexConfig {
            primary_support: self.primary_support,
            fanout: self.fanout,
            packing: packing_from_byte(self.packing)?,
            // A runtime knob, not an index property: restored indexes
            // fall back to the session default.
            threads: 0,
            // Legacy snapshots carry no catalog and none is recomputed.
            collect_stats: true,
        };
        MipIndex::from_parts(
            self.dataset,
            config,
            self.cfis
                .into_iter()
                .map(|(itemset, tids)| ClosedItemset { itemset, tids })
                .collect(),
        )
    }

    /// Serialize to the legacy JSON representation.
    pub fn to_json(&self) -> Result<String, ColarmError> {
        serde_json::to_string(self).map_err(|e| ColarmError::Snapshot {
            message: format!("serializing snapshot to JSON: {e}"),
        })
    }

    /// Deserialize from the legacy JSON representation.
    pub fn from_json(text: &str) -> Result<IndexSnapshot, ColarmError> {
        serde_json::from_str(text).map_err(|e| ColarmError::Snapshot {
            message: format!("invalid JSON snapshot: {e}"),
        })
    }

    /// Write this snapshot to `path` in the binary format (atomic
    /// temp-file + `rename`). Returns the snapshot size in bytes.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, ColarmError> {
        let header = SnapshotHeader {
            primary_support: self.primary_support,
            fanout: self.fanout,
            packing: packing_from_byte(self.packing)?,
            schema: self.dataset.schema().clone(),
            num_records: self.dataset.num_records() as u64,
        };
        write_atomic(path.as_ref(), |out| {
            let mut w = SnapshotWriter::new(out, &header)?;
            for (_, values) in self.dataset.iter() {
                w.write_record(values)?;
            }
            for (itemset, tids) in &self.cfis {
                w.write_cfi(itemset, tids)?;
            }
            w.finish()?;
            Ok(())
        })
    }

    /// Read a snapshot from `path`, auto-detecting binary vs legacy JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<IndexSnapshot, ColarmError> {
        let path = path.as_ref();
        let mut file = std::fs::File::open(path)
            .map_err(|e| io_err(&format!("opening snapshot {}", path.display()), e))?;
        match sniff_prefix(&mut file, path)? {
            Sniff::Binary(FORMAT_VERSION) => {
                // Capture from a fully (eagerly) validated mapped load;
                // the captured snapshot owns everything it needs, so the
                // mapping is released when the index drops here.
                drop(file);
                let (index, _) = mmap::load_v4(path, ValidationMode::Eager)?;
                Ok(IndexSnapshot::capture(&index))
            }
            Sniff::Binary(_) => {
                use std::io::Seek;
                file.rewind().map_err(|e| io_err("reading snapshot", e))?;
                let reader = SnapshotReader::new(std::io::BufReader::new(file))?;
                let (dataset, config, cfis) = reader.read_parts()?;
                Ok(IndexSnapshot {
                    version: SNAPSHOT_VERSION,
                    dataset,
                    primary_support: config.primary_support,
                    fanout: config.fanout,
                    packing: packing_to_byte(config.packing),
                    cfis: cfis.into_iter().map(|c| (c.itemset, c.tids)).collect(),
                })
            }
            Sniff::Legacy => read_legacy_json(file),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::LocalizedQuery;
    use colarm_data::synth::salary;

    fn index() -> MipIndex {
        MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// A full v3 snapshot including the STATS section, so the corruption
    /// sweeps below exercise the stats payload too.
    fn snapshot_bytes(index: &MipIndex) -> Vec<u8> {
        let header = SnapshotHeader::for_index(index);
        let mut w = SnapshotWriter::new(Vec::new(), &header).unwrap();
        for (_, values) in index.dataset().iter() {
            w.write_record(values).unwrap();
        }
        for (_, cfi) in index.ittree().iter() {
            w.write_cfi(&cfi.itemset, &cfi.tids).unwrap();
        }
        w.write_stats(&SnapshotStats {
            catalog: index.catalog().cloned(),
            constants: CostConstants::default(),
        })
        .unwrap();
        w.finish().unwrap()
    }

    fn table1_query(index: &MipIndex) -> LocalizedQuery {
        let schema = index.dataset().schema().clone();
        LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap()
    }

    fn assert_same_answers(original: &MipIndex, restored: &MipIndex) {
        assert_eq!(restored.num_mips(), original.num_mips());
        assert_eq!(restored.primary_count(), original.primary_count());
        let query = table1_query(original);
        for plan in crate::plan::PlanKind::ALL {
            let subset_a = original.resolve_subset(query.range.clone()).unwrap();
            let subset_b = restored.resolve_subset(query.range.clone()).unwrap();
            let a = crate::plan::execute_plan(original, &query, &subset_a, plan).unwrap();
            let b = crate::plan::execute_plan(restored, &query, &subset_b, plan).unwrap();
            assert_eq!(a.rules, b.rules, "{plan} diverged after restore");
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("colarm-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn json_round_trip_preserves_answers() {
        let original = index();
        let json = IndexSnapshot::capture(&original).to_json().unwrap();
        let restored = IndexSnapshot::from_json(&json).unwrap().restore().unwrap();
        assert_same_answers(&original, &restored);
    }

    #[test]
    fn binary_round_trip_preserves_answers() {
        let original = index();
        let bytes = snapshot_bytes(&original);
        let restored = SnapshotReader::new(&bytes[..]).unwrap().restore().unwrap();
        assert_same_answers(&original, &restored);
    }

    #[test]
    fn save_and_load_round_trip_through_files() {
        let original = index();
        let path = temp_path("roundtrip.snap");
        let size = save_index(&original, &path).unwrap();
        assert_eq!(size, std::fs::metadata(&path).unwrap().len());
        let restored = load_index(&path).unwrap();
        assert_same_answers(&original, &restored);
        // The materialized-snapshot API reads the same file.
        let via_snapshot = IndexSnapshot::load(&path).unwrap().restore().unwrap();
        assert_same_answers(&original, &via_snapshot);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_json_snapshot_still_loads() {
        let original = index();
        let path = temp_path("legacy.json");
        std::fs::write(&path, IndexSnapshot::capture(&original).to_json().unwrap()).unwrap();
        let restored = load_index(&path).unwrap();
        assert_same_answers(&original, &restored);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected_as_snapshot_error() {
        let mut snap = IndexSnapshot::capture(&index());
        snap.version = 999;
        match snap.restore() {
            Err(ColarmError::Snapshot { message }) => assert!(message.contains("version")),
            other => panic!("expected Snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_packing_byte_is_rejected() {
        let json = IndexSnapshot::capture(&index()).to_json().unwrap();
        assert!(json.contains("\"packing\":0"));
        let snap = IndexSnapshot::from_json(&json.replace("\"packing\":0", "\"packing\":7"))
            .unwrap();
        match snap.restore() {
            Err(ColarmError::Snapshot { message }) => assert!(message.contains("packing")),
            other => panic!("expected Snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_json_is_a_snapshot_error() {
        for text in ["{not json", "{}"] {
            match IndexSnapshot::from_json(text) {
                Err(ColarmError::Snapshot { .. }) => {}
                other => panic!("expected Snapshot error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_future_version_are_rejected() {
        let bytes = snapshot_bytes(&index());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        match SnapshotReader::new(&bad_magic[..]) {
            Err(ColarmError::Snapshot { message }) => assert!(message.contains("magic")),
            other => panic!("expected Snapshot error, got {:?}", other.err()),
        }
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&4u32.to_le_bytes());
        match SnapshotReader::new(&future[..]) {
            Err(ColarmError::Snapshot { message }) => assert!(message.contains("version 4")),
            other => panic!("expected Snapshot error, got {:?}", other.err()),
        }
    }

    /// Every strict prefix of a snapshot must be reported as truncated —
    /// including prefixes that end exactly on a section boundary (the
    /// whole-file CRC in the trailer catches those).
    #[test]
    fn every_truncation_is_detected() {
        let bytes = snapshot_bytes(&index());
        for len in 0..bytes.len() {
            let result = SnapshotReader::new(&bytes[..len]).and_then(|r| r.read_parts());
            match result {
                Err(ColarmError::Snapshot { .. }) => {}
                Ok(_) => panic!("truncation to {len} of {} bytes not detected", bytes.len()),
                Err(other) => panic!("expected Snapshot error at {len}, got {other:?}"),
            }
        }
    }

    /// Flipping any single byte anywhere in the file must be detected.
    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = snapshot_bytes(&index());
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            let result = SnapshotReader::new(&flipped[..]).and_then(|r| r.read_parts());
            match result {
                Err(ColarmError::Snapshot { .. }) => {}
                Ok(_) => panic!("byte flip at {i} of {} bytes not detected", bytes.len()),
                Err(other) => panic!("expected Snapshot error at {i}, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = snapshot_bytes(&index());
        bytes.push(0);
        match SnapshotReader::new(&bytes[..]).and_then(|r| r.read_parts()) {
            Err(ColarmError::Snapshot { message }) => assert!(message.contains("trailing")),
            other => panic!("expected Snapshot error, got {:?}", other.err()),
        }
    }

    #[test]
    fn writer_misuse_is_an_error_not_a_panic() {
        let original = index();
        let header = SnapshotHeader::for_index(&original);
        // Wrong arity.
        let mut w = SnapshotWriter::new(Vec::new(), &header).unwrap();
        assert!(w.write_record(&[0]).is_err());
        // CFI before all records arrive.
        let mut w = SnapshotWriter::new(Vec::new(), &header).unwrap();
        let (_, cfi) = original.ittree().iter().next().unwrap();
        assert!(w.write_cfi(&cfi.itemset, &cfi.tids).is_err());
        // Finish with records missing.
        let w = SnapshotWriter::new(Vec::new(), &header).unwrap();
        assert!(w.finish().is_err());
        // Stats twice, and CFIs after stats.
        let stats = SnapshotStats {
            catalog: None,
            constants: CostConstants::default(),
        };
        let mut w = SnapshotWriter::new(Vec::new(), &header).unwrap();
        for (_, values) in original.dataset().iter() {
            w.write_record(values).unwrap();
        }
        w.write_stats(&stats).unwrap();
        assert!(w.write_stats(&stats).is_err());
        assert!(w.write_cfi(&cfi.itemset, &cfi.tids).is_err());
    }

    #[test]
    fn stats_section_round_trips_constants_bit_exactly() {
        let original = index();
        assert!(original.catalog().is_some(), "default build collects stats");
        // Deliberately awkward constants: exact binary round-trip matters.
        let fitted = CostConstants {
            node: 2.0e-7_f64.next_down(),
            eliminate: f64::MIN_POSITIVE,
            verify: 2.5e-9_f64.next_up(),
            confidence: 0.1 + 0.2,
            select: 5.0e-8,
            arm: 6.0e-9_f64.next_up(),
            union_const: 1.0e-6,
        };
        let path = temp_path("stats_roundtrip.snap");
        save_index_with_constants(&original, fitted, &path).unwrap();
        let (restored, constants) = load_index_with_constants(&path).unwrap();
        let constants = constants.expect("v3 snapshot carries constants");
        for (a, b) in [
            (constants.node, fitted.node),
            (constants.eliminate, fitted.eliminate),
            (constants.verify, fitted.verify),
            (constants.confidence, fitted.confidence),
            (constants.select, fitted.select),
            (constants.arm, fitted.arm),
            (constants.union_const, fitted.union_const),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "constant changed across save/load");
        }
        assert_eq!(restored.catalog(), original.catalog());
        assert_same_answers(&original, &restored);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v3_snapshot_without_stats_section_loads_stats_absent() {
        let original = index();
        let header = SnapshotHeader::for_index(&original);
        let mut w = SnapshotWriter::new(Vec::new(), &header).unwrap();
        for (_, values) in original.dataset().iter() {
            w.write_record(values).unwrap();
        }
        for (_, cfi) in original.ittree().iter() {
            w.write_cfi(&cfi.itemset, &cfi.tids).unwrap();
        }
        let bytes = w.finish().unwrap();
        let (restored, constants) = SnapshotReader::new(&bytes[..])
            .unwrap()
            .restore_with_constants()
            .unwrap();
        assert!(constants.is_none());
        assert!(restored.catalog().is_none());
        assert_same_answers(&original, &restored);
    }

    #[test]
    fn corrupt_stats_payloads_are_rejected() {
        // Non-finite constant.
        let mut bad = Vec::new();
        for _ in 0..7 {
            bad.extend_from_slice(&f64::NAN.to_le_bytes());
        }
        bad.push(0);
        assert!(SnapshotStats::decode(&bad).is_err());
        // Unknown presence byte.
        let mut bad = Vec::new();
        for _ in 0..7 {
            bad.extend_from_slice(&1.0f64.to_le_bytes());
        }
        bad.push(7);
        assert!(SnapshotStats::decode(&bad).is_err());
        // Trailing garbage after an absent catalog.
        let mut bad = Vec::new();
        for _ in 0..7 {
            bad.extend_from_slice(&1.0f64.to_le_bytes());
        }
        bad.extend_from_slice(&[0, 0]);
        assert!(SnapshotStats::decode(&bad).is_err());
    }
}
