//! Zero-copy snapshot mapping: `mmap(2)`, eager structure / lazy CRC
//! validation, and the v4 loader.
//!
//! [`SnapshotMap`] maps a v4 snapshot read-only and validates in two
//! phases:
//!
//! 1. **Eagerly, at open:** everything *structural* — head magic and
//!    version, the fixed tail, the section directory (its own CRC, known
//!    unique tags, 64-byte aligned strictly-increasing offsets, zero
//!    pads, no gaps, no overlap, nothing unaccounted for) — plus the
//!    payload CRCs of every section the loader *parses* before
//!    returning (HEADER, STATS, CFI_META, CFI_OFFSETS, VERTICAL; all
//!    small). Under [`ValidationMode::Eager`] the two bulk payload
//!    sections are verified here too.
//! 2. **Lazily, on first touch** (default, [`ValidationMode::Lazy`]):
//!    the payload CRCs of the two bulk sections, each deferred to the
//!    first operation that actually *reads its bytes*:
//!    * **TIDDATA** (tidset containers) on the first query —
//!      `SnapshotMap::validate_query_sections`, hooked at subset
//!      resolution, which every plan passes through;
//!    * **RECORDS16** (the raw record matrix) on the first record read —
//!      the operations that consume record bytes (snapshot re-save /
//!      capture) run the full [`MipIndex::ensure_validated`] pass
//!      first, which also performs the deferred per-value domain sweep
//!      of the matrix (the writer's own invariant, re-checked after the
//!      CRC as defense against a forged checksum). Queries never read
//!      record bytes (every plan works off tidsets), so cold-start time
//!      is independent of the record matrix, which dominates the file.
//!      Callers reaching *around* the index — reading rows straight off
//!      [`MipIndex::dataset`] on a lazily-mapped index — must call
//!      [`MipIndex::ensure_validated`] first (or load with
//!      [`ValidationMode::Eager`], which runs it before `load` returns).
//!
//!    Either pass runs once, on whichever thread arrives first; a
//!    failure is sticky — it poisons the map and every subsequent query
//!    returns the same [`ColarmError::Snapshot`]. A corrupt byte
//!    therefore surfaces as a clean error on first touch, never as UB
//!    or a wrong answer: all *structural* facts the loader relied on
//!    (bounds, alignment, chunk invariants) were checked at load from
//!    the bytes as mapped, so a flipped bit can at worst change values,
//!    and values are never reported before the validation pass covering
//!    their section signs off — tidset CRCs before the first answer,
//!    record CRC + domain sweep before the first record read. Bulk
//!    checksums run through [`crc32_par`], split across the worker pool
//!    and spliced with the CRC-combine identity — bit-identical to the
//!    sequential checksum.
//!
//! The `unsafe` in this module is confined to three audited obligations
//! (this crate denies `unsafe_op_in_unsafe_fn`, and CI pins `unsafe` to
//! an allowlist that names this file):
//!
//! * the `extern "C"` declarations of `mmap`/`munmap` (std offers no
//!   mapping API; same dependency-free pattern as the CLI's `signal(2)`
//!   and the server's `poll(2)` shims);
//! * reinterpreting mapped bytes as `&[u8]` / `&[u16]` / `&[u64]` after
//!   explicit bounds *and alignment* checks (mappings are page-aligned,
//!   so checking the offset suffices);
//! * fabricating the `'static` lifetime a [`SliceView`] carries. The
//!   view pairs every slice with an `Arc<SnapshotMap>` owner, the map is
//!   never mutated, and `munmap` runs only in `Drop` — after the last
//!   owner (hence the last view) is gone. `MipIndex` holds the same
//!   `Arc`, so the server's generation pinning keeps superseded maps
//!   alive until their sessions drain.

use super::format::{corrupt, io_err, SEC_HEADER, SEC_STATS};
use super::layout::{
    align_up, DIR_ENTRY_LEN, HEAD_LEN, KIND_ARRAY, KIND_BITMAP, KIND_RUNS, MAX_DIR_ENTRIES,
    SECTION_ALIGN, SEC_CFI_META, SEC_CFI_OFFSETS, SEC_RECORDS16, SEC_TIDDATA, SEC_VERTICAL,
    TAIL_LEN, TAIL_MAGIC,
};
use super::{decode_itemset, SnapshotHeader, SnapshotStats};
use crate::cost::CostConstants;
use crate::error::ColarmError;
use crate::mip::{MipIndex, MipIndexConfig};
use colarm_data::codec::{crc32, crc32_par, Cursor};
use colarm_data::{ChunkView, Dataset, SliceView, Tidset, VerticalIndex, ViewOwner};
use colarm_mine::ClosedItemset;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use super::format::{FORMAT_VERSION, MAGIC};

/// When a mapped snapshot's per-section checksums are verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationMode {
    /// Verify every section CRC before the load returns (pays a full
    /// sequential read of the file up front).
    Eager,
    /// Verify structure (and the CRCs of everything parsed at load),
    /// defer each bulk section's CRC to the first operation reading its
    /// bytes (the default): the first query pays the tidset-data
    /// checksum, and the record matrix — which queries never read — is
    /// checked only if something re-saves or captures the snapshot.
    Lazy,
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void // MAP_FAILED == (void *)-1
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// The bytes behind a [`SnapshotMap`]: a real mapping on unix, an
/// 8-aligned heap buffer elsewhere (same byte-for-byte view, no platform
/// behavior divergence above this enum).
enum Backing {
    #[cfg(unix)]
    Map { ptr: *const u8, len: usize },
    #[cfg(not(unix))]
    Heap { words: Vec<u64>, len: usize },
}

// SAFETY: the backing is read-only for its entire lifetime — PROT_READ
// mapping (or an owned buffer nothing mutates), no interior mutability —
// so shared references from any thread are sound.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(unix)]
        {
            let Backing::Map { ptr, len } = *self;
            // SAFETY: ptr/len are exactly what mmap returned; views hold
            // an Arc of the owning SnapshotMap, so none outlive this.
            unsafe {
                sys::munmap(ptr as *mut _, len);
            }
        }
    }
}

/// One row of the parsed section directory.
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    tag: u8,
    offset: u64,
    len: u64,
    crc: u32,
}

/// CRC-validation state shared by every query thread.
#[derive(Debug, Default)]
struct PendingState {
    /// Indices (into `sections`) still awaiting their checksum pass.
    pending: Vec<usize>,
    /// The sticky failure, once any section's checksum has failed.
    failed: Option<ColarmError>,
}

/// A read-only mapped v4 snapshot. See the module docs for the
/// validation phases; see `load_v4` for turning one into a
/// [`MipIndex`].
pub struct SnapshotMap {
    backing: Backing,
    path: PathBuf,
    sections: Vec<SectionEntry>,
    pending: Mutex<PendingState>,
    /// Fast path: every section checksum has passed.
    all_valid: AtomicBool,
    /// Fast path: every section a *query* reads has passed (everything
    /// except the record matrix).
    query_valid: AtomicBool,
    /// The record matrix passed the deferred per-value domain sweep,
    /// run by `MipIndex::ensure_validated` after the CRC pass.
    domains_ok: AtomicBool,
}

impl fmt::Debug for SnapshotMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotMap")
            .field("path", &self.path)
            .field("len", &self.bytes().len())
            .field("sections", &self.sections.len())
            .field("all_valid", &self.all_valid.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ViewOwner for SnapshotMap {}

impl SnapshotMap {
    /// Map `path` and run the eager validation phase. Returns the map
    /// with the requested laziness for the bulk-section checksums.
    pub fn open(path: &Path, mode: ValidationMode) -> Result<Arc<SnapshotMap>, ColarmError> {
        if cfg!(target_endian = "big") {
            // The whole point of the mapped path is reinterpreting
            // little-endian payloads in place; on a big-endian host that
            // would read garbage. (The framed v1–v3 reader is
            // endian-correct everywhere.)
            return Err(corrupt(
                "mapped snapshots require a little-endian host; \
                 re-save as a framed (v3) snapshot to load here",
            ));
        }
        let file = std::fs::File::open(path)
            .map_err(|e| io_err(&format!("opening snapshot {}", path.display()), e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("inspecting snapshot", e))?
            .len();
        let min_len = HEAD_LEN + TAIL_LEN;
        if file_len < min_len {
            return Err(corrupt(format!(
                "mapped snapshot {} is {file_len} bytes; a v4 file is at least {min_len}",
                path.display()
            )));
        }
        let len: usize = file_len
            .try_into()
            .map_err(|_| corrupt("snapshot is larger than this platform's address space"))?;
        let backing = Backing::new(&file, len)?;
        drop(file);
        let mut map = SnapshotMap {
            backing,
            path: path.to_path_buf(),
            sections: Vec::new(),
            pending: Mutex::new(PendingState::default()),
            all_valid: AtomicBool::new(false),
            query_valid: AtomicBool::new(false),
            domains_ok: AtomicBool::new(false),
        };
        map.validate_structure()?;
        let map = Arc::new(map);
        if mode == ValidationMode::Eager {
            map.validate_pending()?;
        }
        Ok(map)
    }

    /// The entire mapped file.
    pub(crate) fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful PROT_READ mmap that
            // lives until Drop; the memory is never written through this
            // mapping.
            Backing::Map { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            #[cfg(not(unix))]
            // SAFETY: reinterpreting an owned, initialized u64 buffer as
            // bytes; `len` never exceeds `words.len() * 8`.
            Backing::Heap { words, len } => unsafe {
                std::slice::from_raw_parts(words.as_ptr() as *const u8, *len)
            },
        }
    }

    /// The directory entry for `tag`, if the snapshot has that section.
    fn section(&self, tag: u8) -> Option<&SectionEntry> {
        self.sections.iter().find(|s| s.tag == tag)
    }

    /// The payload bytes of section `tag` (which must exist).
    fn section_bytes(&self, tag: u8) -> &[u8] {
        let s = self.section(tag).expect("required section was validated");
        &self.bytes()[s.offset as usize..(s.offset + s.len) as usize]
    }

    /// Eager phase: parse and cross-check head, tail, directory, section
    /// table; verify HEADER and STATS payload CRCs; queue the rest.
    fn validate_structure(&mut self) -> Result<(), ColarmError> {
        let bytes = self.bytes();
        let flen = bytes.len() as u64;
        let head = &bytes[..HEAD_LEN as usize];
        if head[0..8] != MAGIC {
            return Err(corrupt("not a binary COLARM snapshot (bad magic)"));
        }
        let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(corrupt(format!(
                "mapped loader got format version {version}, expected {FORMAT_VERSION}"
            )));
        }
        let flags = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes"));
        if flags != 0 {
            return Err(corrupt(format!("unknown head flags {flags:#010x}")));
        }
        if head[16..].iter().any(|&b| b != 0) {
            return Err(corrupt("non-zero head padding"));
        }

        let tail = &bytes[(flen - TAIL_LEN) as usize..];
        if tail[32..40] != TAIL_MAGIC {
            return Err(corrupt(
                "truncated snapshot: the fixed tail record is missing its magic",
            ));
        }
        let dir_offset = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
        let dir_count = u32::from_le_bytes(tail[8..12].try_into().expect("4 bytes"));
        let dir_crc = u32::from_le_bytes(tail[12..16].try_into().expect("4 bytes"));
        let tail_file_len = u64::from_le_bytes(tail[16..24].try_into().expect("8 bytes"));
        let tail_version = u32::from_le_bytes(tail[24..28].try_into().expect("4 bytes"));
        let reserved = u32::from_le_bytes(tail[28..32].try_into().expect("4 bytes"));
        if tail_version != FORMAT_VERSION {
            return Err(corrupt(format!(
                "tail declares format version {tail_version}, head declares {FORMAT_VERSION}"
            )));
        }
        if reserved != 0 {
            return Err(corrupt("non-zero reserved field in tail"));
        }
        if tail_file_len != flen {
            return Err(corrupt(format!(
                "tail declares a {tail_file_len}-byte file but {flen} bytes are present \
                 (truncated or extended)"
            )));
        }
        if dir_count > MAX_DIR_ENTRIES {
            return Err(corrupt(format!(
                "directory declares {dir_count} entries (limit {MAX_DIR_ENTRIES})"
            )));
        }
        let dir_len = dir_count as u64 * DIR_ENTRY_LEN;
        if dir_offset % SECTION_ALIGN != 0
            || dir_offset < HEAD_LEN
            || dir_offset + dir_len + TAIL_LEN != flen
        {
            return Err(corrupt(format!(
                "directory at {dir_offset} (+{dir_len}) does not abut the tail of a \
                 {flen}-byte file"
            )));
        }
        let dir_bytes = &bytes[dir_offset as usize..(dir_offset + dir_len) as usize];
        let actual_crc = crc32(dir_bytes);
        if actual_crc != dir_crc {
            return Err(corrupt(format!(
                "directory checksum mismatch: tail stores {dir_crc:#010x}, \
                 computed {actual_crc:#010x}"
            )));
        }

        const KNOWN: [u8; 7] = [
            SEC_HEADER,
            SEC_RECORDS16,
            SEC_TIDDATA,
            SEC_CFI_META,
            SEC_CFI_OFFSETS,
            SEC_VERTICAL,
            SEC_STATS,
        ];
        let mut sections = Vec::with_capacity(dir_count as usize);
        let mut expected_offset = HEAD_LEN;
        for (i, row) in dir_bytes.chunks_exact(DIR_ENTRY_LEN as usize).enumerate() {
            let tag = row[0];
            if row[1..4] != [0, 0, 0] {
                return Err(corrupt(format!("directory entry {i}: non-zero padding")));
            }
            let crc = u32::from_le_bytes(row[4..8].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(row[8..16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(row[16..24].try_into().expect("8 bytes"));
            if !KNOWN.contains(&tag) {
                return Err(corrupt(format!("directory entry {i}: unknown section tag {tag}")));
            }
            if sections.iter().any(|s: &SectionEntry| s.tag == tag) {
                return Err(corrupt(format!("directory entry {i}: duplicate section tag {tag}")));
            }
            if offset % SECTION_ALIGN != 0 {
                return Err(corrupt(format!(
                    "section tag {tag} starts at misaligned offset {offset} \
                     (sections are {SECTION_ALIGN}-byte aligned)"
                )));
            }
            if offset != expected_offset {
                return Err(corrupt(format!(
                    "section tag {tag} at offset {offset}, expected {expected_offset} \
                     (sections must be contiguous up to alignment padding)"
                )));
            }
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= dir_offset)
                .ok_or_else(|| {
                    corrupt(format!(
                        "section tag {tag} (offset {offset}, len {len}) overruns the directory"
                    ))
                })?;
            let padded_end = align_up(end, SECTION_ALIGN);
            if bytes[end as usize..padded_end.min(dir_offset) as usize]
                .iter()
                .any(|&b| b != 0)
            {
                return Err(corrupt(format!(
                    "non-zero padding after section tag {tag} (bytes {end}..{padded_end})"
                )));
            }
            expected_offset = padded_end;
            sections.push(SectionEntry { tag, offset, len, crc });
        }
        if expected_offset != dir_offset {
            return Err(corrupt(format!(
                "unaccounted bytes {expected_offset}..{dir_offset} between the last \
                 section and the directory"
            )));
        }
        for required in [
            SEC_HEADER,
            SEC_RECORDS16,
            SEC_TIDDATA,
            SEC_CFI_META,
            SEC_CFI_OFFSETS,
            SEC_VERTICAL,
        ] {
            if !sections.iter().any(|s| s.tag == required) {
                return Err(corrupt(format!("required section tag {required} is missing")));
            }
        }
        self.sections = sections;

        // Everything the loader parses before returning — HEADER, STATS
        // and the three descriptor sections (all small) — is checksummed
        // eagerly; only the two bulk payload sections (the record matrix
        // and the tidset data) queue for the lazy first-touch pass.
        let mut pending = Vec::new();
        for (i, s) in self.sections.iter().enumerate() {
            if s.tag == SEC_RECORDS16 || s.tag == SEC_TIDDATA {
                pending.push(i);
            } else {
                self.check_section_crc(s)?;
            }
        }
        self.pending = Mutex::new(PendingState {
            pending,
            failed: None,
        });
        Ok(())
    }

    fn check_section_crc(&self, s: &SectionEntry) -> Result<(), ColarmError> {
        let payload = &self.bytes()[s.offset as usize..(s.offset + s.len) as usize];
        // Spread bulk sections across the worker pool (CRC throughput is
        // the cold-start floor); crc32_par is bit-identical to crc32.
        let actual = crc32_par(payload, 0);
        if actual != s.crc {
            return Err(corrupt(format!(
                "checksum mismatch in section (tag {}) at byte {}: \
                 stored {:#010x}, computed {actual:#010x}",
                s.tag, s.offset, s.crc
            )));
        }
        Ok(())
    }

    /// Run every deferred section checksum. Cheap once complete (one
    /// atomic load); concurrent callers serialize on the first pass and
    /// then never contend again. A failure is sticky: every later call
    /// returns the same error.
    pub fn validate_pending(&self) -> Result<(), ColarmError> {
        if self.all_valid.load(Ordering::Acquire) {
            return Ok(());
        }
        self.validate_where(|_| true)
    }

    /// Run the deferred checksums of every section a *query* reads —
    /// everything still pending except the record matrix. Hooked at
    /// subset resolution, so no answer is derived from unvalidated
    /// tidset bytes.
    pub(crate) fn validate_query_sections(&self) -> Result<(), ColarmError> {
        if self.query_valid.load(Ordering::Acquire) {
            return Ok(());
        }
        self.validate_where(|tag| tag != SEC_RECORDS16)
    }

    /// Has the deferred record-domain sweep passed yet? (The sweep
    /// itself lives on `MipIndex`, which owns the typed dataset view;
    /// the map just carries the once-only flag so every index clone
    /// sharing this mapping shares the result.)
    pub(crate) fn domains_checked(&self) -> bool {
        self.domains_ok.load(Ordering::Acquire)
    }

    /// Record that the deferred record-domain sweep passed.
    pub(crate) fn set_domains_checked(&self) {
        self.domains_ok.store(true, Ordering::Release);
    }

    /// The mapped file's path, for error context.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Validate the pending sections `want` selects, in file order,
    /// updating the fast-path flags and recording the first failure
    /// stickily.
    fn validate_where(&self, want: impl Fn(u8) -> bool) -> Result<(), ColarmError> {
        let mut state = self.pending.lock().expect("snapshot validation lock");
        if let Some(e) = &state.failed {
            return Err(e.clone());
        }
        let mut failure: Option<ColarmError> = None;
        // `retain` walks in order, so the error (if any) is always the
        // first failing section by file position, at every thread count.
        let sections = &self.sections;
        let path = &self.path;
        state.pending.retain(|&i| {
            if failure.is_some() || !want(sections[i].tag) {
                return true;
            }
            match self.check_section_crc(&sections[i]) {
                Ok(()) => false,
                Err(e) => {
                    failure = Some(match e {
                        ColarmError::Snapshot { message } => ColarmError::Snapshot {
                            message: format!(
                                "{message} (detected on first touch of lazily-validated \
                                 snapshot {})",
                                path.display()
                            ),
                        },
                        other => other,
                    });
                    true
                }
            }
        });
        if let Some(e) = failure {
            state.failed = Some(e.clone());
            return Err(e);
        }
        if state.pending.is_empty() {
            self.all_valid.store(true, Ordering::Release);
        }
        if !state
            .pending
            .iter()
            .any(|&i| self.sections[i].tag != SEC_RECORDS16)
        {
            self.query_valid.store(true, Ordering::Release);
        }
        Ok(())
    }

    /// A borrowed `&[u16]` view of `count` elements at absolute byte
    /// `offset`, kept alive by this map. Rejects out-of-bounds and
    /// misaligned offsets — alignment is a *format* guarantee, so a
    /// misaligned descriptor is corruption, not a soundness event.
    fn u16_view(self: &Arc<Self>, offset: u64, count: usize) -> Result<SliceView<u16>, ColarmError> {
        let bytes = self.bytes();
        let need = (count as u64) * 2;
        if !offset.is_multiple_of(2) {
            return Err(corrupt(format!(
                "u16 payload at misaligned offset {offset}"
            )));
        }
        if offset.checked_add(need).is_none_or(|e| e > bytes.len() as u64) {
            return Err(corrupt(format!(
                "u16 payload at {offset} (+{need}) overruns the {}-byte snapshot",
                bytes.len()
            )));
        }
        // SAFETY: bounds and alignment checked above; the base pointer is
        // page-aligned (mmap) or 8-aligned (heap u64 buffer). The
        // fabricated 'static lifetime is discharged by handing the view
        // an Arc owner of this map, which keeps the bytes alive and
        // unmapped-exactly-once after the last view drops.
        let slice: &'static [u16] = unsafe {
            std::slice::from_raw_parts(bytes.as_ptr().add(offset as usize) as *const u16, count)
        };
        Ok(SliceView::new(slice, self.clone()))
    }

    /// `u16_view`'s `u64` counterpart (bitmap words; 8-byte alignment).
    fn u64_view(self: &Arc<Self>, offset: u64, count: usize) -> Result<SliceView<u64>, ColarmError> {
        let bytes = self.bytes();
        let need = (count as u64) * 8;
        if !offset.is_multiple_of(8) {
            return Err(corrupt(format!(
                "u64 payload at misaligned offset {offset}"
            )));
        }
        if offset.checked_add(need).is_none_or(|e| e > bytes.len() as u64) {
            return Err(corrupt(format!(
                "u64 payload at {offset} (+{need}) overruns the {}-byte snapshot",
                bytes.len()
            )));
        }
        // SAFETY: as in `u16_view`, with 8-byte alignment checked.
        let slice: &'static [u64] = unsafe {
            std::slice::from_raw_parts(bytes.as_ptr().add(offset as usize) as *const u64, count)
        };
        Ok(SliceView::new(slice, self.clone()))
    }
}

impl Backing {
    #[cfg(unix)]
    fn new(file: &std::fs::File, len: usize) -> Result<Backing, ColarmError> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: mapping a whole, open file read-only; the result is
        // checked against MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(corrupt(format!(
                "mmap of {len}-byte snapshot failed: {}",
                std::io::Error::last_os_error()
            )));
        }
        Ok(Backing::Map {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn new(file: &std::fs::File, len: usize) -> Result<Backing, ColarmError> {
        use std::io::Read;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: viewing an initialized u64 buffer as bytes for the read.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        let mut f = file;
        f.read_exact(dst).map_err(|e| io_err("reading snapshot", e))?;
        Ok(Backing::Heap { words, len })
    }
}

// ---------------------------------------------------------------------------
// v4 loader
// ---------------------------------------------------------------------------

/// Decode one tidset's descriptor block into borrowed chunk views.
fn decode_tidset_meta(
    map: &Arc<SnapshotMap>,
    cur: &mut Cursor<'_>,
    tiddata: (u64, u64),
    universe: u32,
    what: &str,
) -> Result<Tidset, ColarmError> {
    let (data_base, data_len) = tiddata;
    let bad = |e: colarm_data::codec::CodecError| corrupt(format!("{what}: {e}"));
    let n_chunks = cur.read_varint().map_err(bad)?;
    if n_chunks > 1 << 16 {
        return Err(corrupt(format!(
            "{what}: {n_chunks} chunks exceeds the 2^16 chunk universe"
        )));
    }
    let mut chunks: Vec<(u16, ChunkView)> = Vec::with_capacity(n_chunks as usize);
    let mut prev_key: Option<u64> = None;
    for _ in 0..n_chunks {
        let delta = cur.read_varint().map_err(bad)?;
        let key = match prev_key {
            None => delta,
            Some(p) => p + 1 + delta,
        };
        if key > u16::MAX as u64 {
            return Err(corrupt(format!("{what}: chunk key {key} exceeds u16")));
        }
        prev_key = Some(key);
        let in_data = |off: u64, bytes: u64| -> Result<u64, ColarmError> {
            if off.checked_add(bytes).is_none_or(|e| e > data_len) {
                return Err(corrupt(format!(
                    "{what}: chunk payload at {off} (+{bytes}) overruns the \
                     {data_len}-byte TIDDATA section"
                )));
            }
            Ok(data_base + off)
        };
        let view = match cur.read_u8().map_err(bad)? {
            KIND_ARRAY => {
                let card = cur.read_varint().map_err(bad)?;
                if !(1..=1 << 16).contains(&card) {
                    return Err(corrupt(format!("{what}: array cardinality {card} out of range")));
                }
                let off = cur.read_varint().map_err(bad)?;
                let abs = in_data(off, 2 * card)?;
                ChunkView::Array(map.u16_view(abs, card as usize)?)
            }
            KIND_BITMAP => {
                let n_words = cur.read_varint().map_err(bad)?;
                if !(1..=1024).contains(&n_words) {
                    return Err(corrupt(format!("{what}: bitmap has {n_words} words, expected 1..=1024")));
                }
                let card = cur.read_varint().map_err(bad)?;
                let off = cur.read_varint().map_err(bad)?;
                let abs = in_data(off, 8 * n_words)?;
                if card > 64 * n_words {
                    return Err(corrupt(format!(
                        "{what}: bitmap cardinality {card} exceeds {n_words} words"
                    )));
                }
                ChunkView::Bitmap {
                    words: map.u64_view(abs, n_words as usize)?,
                    card: card as u32,
                }
            }
            KIND_RUNS => {
                let n_runs = cur.read_varint().map_err(bad)?;
                if !(1..=1 << 15).contains(&n_runs) {
                    return Err(corrupt(format!("{what}: {n_runs} runs out of range")));
                }
                let mut runs = Vec::with_capacity(n_runs as usize);
                let mut prev_end: i64 = -2;
                for _ in 0..n_runs {
                    let gap = cur.read_varint().map_err(bad)?;
                    let len = cur.read_varint().map_err(bad)?;
                    let s = (prev_end + 2).checked_add_unsigned(gap);
                    let e = s.and_then(|s| s.checked_add_unsigned(len));
                    match (s, e) {
                        (Some(s), Some(e)) if e <= u16::MAX as i64 => {
                            runs.push((s as u16, e as u16));
                            prev_end = e;
                        }
                        _ => {
                            return Err(corrupt(format!(
                                "{what}: run exceeds the 16-bit chunk universe"
                            )))
                        }
                    }
                }
                ChunkView::Runs(runs)
            }
            other => {
                return Err(corrupt(format!("{what}: unknown container kind {other}")));
            }
        };
        chunks.push((key as u16, view));
    }
    Tidset::from_chunk_views(chunks, universe).map_err(|e| corrupt(format!("{what}: {e}")))
}

/// Load a v4 snapshot through the mapped path: structural validation,
/// zero-copy dataset / tidset views, persisted vertical index — no
/// per-tid decode, no vertical rebuild.
pub(crate) fn load_v4(
    path: &Path,
    mode: ValidationMode,
) -> Result<(MipIndex, Option<CostConstants>), ColarmError> {
    let map = SnapshotMap::open(path, mode)?;
    let header = SnapshotHeader::decode(map.section_bytes(SEC_HEADER))?;
    let stats = match map.section(SEC_STATS) {
        Some(_) => Some(SnapshotStats::decode(map.section_bytes(SEC_STATS))?),
        None => None,
    };
    let schema = header.schema.clone();
    let num_items = schema.num_items() as u32;
    let m = header.num_records;
    let universe = m as u32;
    let arity = schema.num_attributes() as u64;

    // RECORDS16 → flat zero-copy dataset.
    let rec = *map.section(SEC_RECORDS16).expect("validated");
    let expected = m
        .checked_mul(arity)
        .and_then(|v| v.checked_mul(2))
        .ok_or_else(|| corrupt("record matrix size overflows"))?;
    if rec.len != expected {
        return Err(corrupt(format!(
            "RECORDS16 is {} bytes; header declares {m} records × {arity} attributes \
             ({expected} bytes)",
            rec.len
        )));
    }
    let values = map.u16_view(rec.offset, (m * arity) as usize)?;
    // Shape check only — the per-value domain sweep is deferred along
    // with the RECORDS16 checksum to `MipIndex::ensure_validated`, so a
    // lazy load never scans the record matrix (queries don't read it).
    let dataset = Dataset::from_flat_deferred(schema.clone(), values, m as usize)
        .map_err(|e| corrupt(format!("record matrix: {e}")))?;

    // CFI_OFFSETS frame CFI_META.
    let meta = *map.section(SEC_CFI_META).expect("validated");
    let offs_sec = *map.section(SEC_CFI_OFFSETS).expect("validated");
    if offs_sec.len % 8 != 0 || offs_sec.len < 8 {
        return Err(corrupt(format!(
            "CFI_OFFSETS is {} bytes, expected a non-empty multiple of 8",
            offs_sec.len
        )));
    }
    let n_cfis = (offs_sec.len / 8 - 1) as usize;
    let offs_bytes =
        &map.bytes()[offs_sec.offset as usize..(offs_sec.offset + offs_sec.len) as usize];
    let offs: Vec<u64> = offs_bytes
        .chunks_exact(8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .collect();
    if offs[0] != 0 || offs[n_cfis] != meta.len {
        return Err(corrupt(format!(
            "CFI offset table spans {}..{}, expected 0..{}",
            offs[0], offs[n_cfis], meta.len
        )));
    }
    let tiddata = map.section(SEC_TIDDATA).expect("validated");
    let tiddata = (tiddata.offset, tiddata.len);
    let meta_bytes = &map.bytes()[meta.offset as usize..(meta.offset + meta.len) as usize];
    let mut cfis: Vec<ClosedItemset> = Vec::with_capacity(n_cfis);
    for i in 0..n_cfis {
        let (start, end) = (offs[i], offs[i + 1]);
        if start >= end || end > meta.len {
            return Err(corrupt(format!(
                "CFI {i} metadata spans {start}..{end} of a {}-byte section",
                meta.len
            )));
        }
        let mut cur = Cursor::new(&meta_bytes[start as usize..end as usize]);
        let itemset = decode_itemset(&mut cur, num_items)?;
        let what = format!("CFI {i} tidset");
        let tids = decode_tidset_meta(&map, &mut cur, tiddata, universe, &what)?;
        if !cur.is_empty() {
            return Err(corrupt(format!(
                "CFI {i} metadata has {} trailing bytes",
                cur.remaining()
            )));
        }
        cfis.push(ClosedItemset { itemset, tids });
    }

    // VERTICAL → persisted per-item tid-lists (no rebuild).
    let vert = *map.section(SEC_VERTICAL).expect("validated");
    let vert_bytes = &map.bytes()[vert.offset as usize..(vert.offset + vert.len) as usize];
    let mut cur = Cursor::new(vert_bytes);
    let declared_items = cur
        .read_varint()
        .map_err(|e| corrupt(format!("vertical index: {e}")))?;
    if declared_items != num_items as u64 {
        return Err(corrupt(format!(
            "vertical index covers {declared_items} items, schema has {num_items}"
        )));
    }
    let mut tidlists = Vec::with_capacity(num_items as usize);
    for i in 0..num_items {
        let what = format!("vertical tid-list for item {i}");
        tidlists.push(decode_tidset_meta(&map, &mut cur, tiddata, universe, &what)?);
    }
    if !cur.is_empty() {
        return Err(corrupt(format!(
            "vertical index section has {} trailing bytes",
            cur.remaining()
        )));
    }
    let vertical = VerticalIndex::from_parts(tidlists, universe);

    let config = MipIndexConfig {
        primary_support: header.primary_support,
        fanout: header.fanout,
        packing: header.packing,
        // A runtime knob, not an index property (as in the v3 reader).
        threads: 0,
        collect_stats: true,
    };
    let mut index = MipIndex::from_mapped_parts(dataset, config, cfis, vertical, map)?;
    let constants = stats.map(|s| {
        index.set_catalog(s.catalog);
        s.constants
    });
    if mode == ValidationMode::Eager {
        // Eager promises everything is checked before `load` returns —
        // including the record-domain sweep the lazy path defers.
        index.ensure_validated()?;
    }
    Ok((index, constants))
}
