//! The localized rule-mining query (paper §2.2).
//!
//! A query `Q` carries four parameters:
//!
//! * `range` (`Arange`) — the per-attribute value selections defining the
//!   focal subset `DQ`;
//! * `item_attrs` (`Aitem`) — optional: the attributes whose items may
//!   compose rules (defaults to all attributes);
//! * `minsupp`, `minconf` — the interestingness thresholds, verified
//!   **locally**, w.r.t. `DQ`.
//!
//! Queries can be built fluently ([`LocalizedQuery::builder`]) or parsed
//! from the paper's query language ([`crate::parse::parse_query`]).

use crate::engine::QueryLimits;
use crate::error::ColarmError;
use crate::plan::PlanKind;
use crate::request::QueryRequest;
use colarm_data::{AttributeId, RangeSpec, Schema};
use serde::{Deserialize, Serialize};

/// Output contract of a localized mining query (see DESIGN.md).
/// Serializes as the bare variant name (`"Strict"` / `"Unrestricted"`) —
/// part of the [`crate::request::QueryRequest`] wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Semantics {
    /// Rules whose bodies are the non-redundant localized itemsets:
    /// closed within the focal subset's `Aitem` projection, locally
    /// frequent, and meeting the index's primary support threshold
    /// globally (paper footnote 2). All six plans return identical
    /// answers under this contract.
    #[default]
    Strict,
    /// The ARM plan additionally reports rules whose bodies fall below
    /// the primary threshold globally — itemsets the MIP-index cannot
    /// see. Used by the Simpson's-paradox study.
    Unrestricted,
}

/// A localized association-rule mining query.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizedQuery {
    /// Focal-subset selection (`Arange`).
    pub range: RangeSpec,
    /// Attributes allowed to compose rules (`Aitem`); `None` = all.
    pub item_attrs: Option<Vec<AttributeId>>,
    /// Minimum local support in `(0, 1]`.
    pub minsupp: f64,
    /// Minimum local confidence in `(0, 1]`.
    pub minconf: f64,
    /// Output contract.
    pub semantics: Semantics,
}

impl LocalizedQuery {
    /// Start building a query.
    pub fn builder() -> LocalizedQueryBuilder {
        LocalizedQueryBuilder::default()
    }

    /// Validate thresholds and schema references.
    pub fn validate(&self, schema: &Schema) -> Result<(), ColarmError> {
        for (name, value) in [("minsupport", self.minsupp), ("minconfidence", self.minconf)] {
            if !(value > 0.0 && value <= 1.0) {
                return Err(ColarmError::InvalidThreshold { name, value });
            }
        }
        self.range.validate(schema)?;
        if let Some(attrs) = &self.item_attrs {
            if attrs.is_empty() {
                return Err(ColarmError::EmptyItemAttributes);
            }
            for &a in attrs {
                if a.index() >= schema.num_attributes() {
                    return Err(ColarmError::Data(colarm_data::DataError::UnknownAttribute(
                        format!("{a}"),
                    )));
                }
            }
        }
        Ok(())
    }

    /// True when `attribute` may contribute items to rules.
    pub fn admits_attribute(&self, attribute: AttributeId) -> bool {
        match &self.item_attrs {
            None => true,
            Some(attrs) => attrs.contains(&attribute),
        }
    }

    /// Absolute minimum support count for a focal subset of `dq_len`
    /// records: the smallest count whose fraction reaches `minsupp`
    /// (with a tolerance for floating-point boundary cases), at least 1.
    pub fn minsupp_count(&self, dq_len: usize) -> usize {
        ((self.minsupp * dq_len as f64) - 1e-9).ceil().max(1.0) as usize
    }
}

/// Fluent builder for [`LocalizedQuery`] — and, via
/// [`LocalizedQueryBuilder::build_request`], for a full
/// [`QueryRequest`]: the run-level knobs (forced plan, limits, the
/// metrics / analyze / trace flags) are settable right on the builder,
/// so one fluent chain describes the whole run. [`build`] returns the
/// bare query and ignores the run-level knobs.
///
/// [`build`]: LocalizedQueryBuilder::build
#[derive(Debug, Clone)]
pub struct LocalizedQueryBuilder {
    range: RangeSpec,
    item_attrs: Option<Vec<AttributeId>>,
    minsupp: f64,
    minconf: f64,
    semantics: Semantics,
    plan: Option<PlanKind>,
    limits: Option<QueryLimits>,
    metrics: bool,
    analyze: bool,
    trace: bool,
}

impl Default for LocalizedQueryBuilder {
    fn default() -> Self {
        LocalizedQueryBuilder {
            range: RangeSpec::all(),
            item_attrs: None,
            minsupp: 0.5,
            minconf: 0.8,
            semantics: Semantics::Strict,
            plan: None,
            limits: None,
            metrics: false,
            analyze: false,
            trace: false,
        }
    }
}

impl LocalizedQueryBuilder {
    /// Set the whole range spec at once.
    pub fn range(mut self, range: RangeSpec) -> Self {
        self.range = range;
        self
    }

    /// Constrain one attribute of the range by names.
    pub fn range_named(
        mut self,
        schema: &Schema,
        attribute: &str,
        values: &[&str],
    ) -> Result<Self, ColarmError> {
        self.range = std::mem::take(&mut self.range).with_named(schema, attribute, values)?;
        Ok(self)
    }

    /// Restrict rule items to these attributes.
    pub fn item_attrs(mut self, attrs: impl IntoIterator<Item = AttributeId>) -> Self {
        self.item_attrs = Some(attrs.into_iter().collect());
        self
    }

    /// Restrict rule items to these attributes, by name.
    pub fn item_attrs_named(
        mut self,
        schema: &Schema,
        names: &[&str],
    ) -> Result<Self, ColarmError> {
        let mut attrs = Vec::with_capacity(names.len());
        for n in names {
            attrs.push(schema.attribute_by_name(n).map_err(ColarmError::Data)?);
        }
        self.item_attrs = Some(attrs);
        Ok(self)
    }

    /// Minimum local support (fraction of `|DQ|`).
    pub fn minsupp(mut self, v: f64) -> Self {
        self.minsupp = v;
        self
    }

    /// Minimum local confidence.
    pub fn minconf(mut self, v: f64) -> Self {
        self.minconf = v;
        self
    }

    /// Output contract (see [`Semantics`]).
    pub fn semantics(mut self, s: Semantics) -> Self {
        self.semantics = s;
        self
    }

    /// Force this plan instead of the optimizer's pick
    /// ([`QueryRequest::plan`]; run-level — only [`build_request`]
    /// carries it).
    ///
    /// [`build_request`]: LocalizedQueryBuilder::build_request
    pub fn plan(mut self, plan: PlanKind) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Bound the run with a deadline / cost budget
    /// ([`QueryRequest::limits`]; run-level).
    pub fn limits(mut self, limits: QueryLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Report per-operator execution counters
    /// ([`QueryRequest::metrics`]; run-level).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Return an `EXPLAIN ANALYZE` report ([`QueryRequest::analyze`];
    /// run-level).
    pub fn analyze(mut self, on: bool) -> Self {
        self.analyze = on;
        self
    }

    /// Include the execution trace in the outcome
    /// ([`QueryRequest::trace`]; run-level).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Finish building a full [`QueryRequest`]: the query (checked as in
    /// [`build`]) plus every run-level knob set on this builder.
    ///
    /// [`build`]: LocalizedQueryBuilder::build
    pub fn build_request(self) -> Result<QueryRequest, ColarmError> {
        let (plan, limits) = (self.plan, self.limits.clone());
        let (metrics, analyze, trace) = (self.metrics, self.analyze, self.trace);
        let query = self.build()?;
        Ok(QueryRequest {
            plan,
            limits,
            metrics,
            analyze,
            trace,
            ..QueryRequest::query(&query)
        })
    }

    /// Finish building. Fails fast on everything rejectable without a
    /// schema: thresholds outside `(0, 1]`, an empty `ITEM ATTRIBUTES`
    /// list, and range selections admitting no values. Schema-dependent
    /// checks (unknown attributes or values) still run in
    /// [`LocalizedQuery::validate`] at execution.
    pub fn build(self) -> Result<LocalizedQuery, ColarmError> {
        for (name, value) in [("minsupport", self.minsupp), ("minconfidence", self.minconf)] {
            if !(value > 0.0 && value <= 1.0) {
                return Err(ColarmError::InvalidThreshold { name, value });
            }
        }
        if let Some(attrs) = &self.item_attrs {
            if attrs.is_empty() {
                return Err(ColarmError::EmptyItemAttributes);
            }
        }
        for (attr, values) in self.range.selections() {
            if values.is_empty() {
                return Err(ColarmError::Data(colarm_data::DataError::EmptyRange(
                    format!("{attr}"),
                )));
            }
        }
        Ok(LocalizedQuery {
            range: self.range,
            item_attrs: self.item_attrs,
            minsupp: self.minsupp,
            minconf: self.minconf,
            semantics: self.semantics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary_schema;

    #[test]
    fn builder_defaults_and_validation() {
        let s = salary_schema();
        let q = LocalizedQuery::builder().build().unwrap();
        q.validate(&s).unwrap();
        assert!(q.range.is_all());
        assert!(q.item_attrs.is_none());
        assert!(q.admits_attribute(AttributeId(3)));
    }

    #[test]
    fn builder_rejects_bad_thresholds() {
        for bad in [0.0, -0.1, 1.5] {
            assert!(matches!(
                LocalizedQuery::builder().minsupp(bad).build(),
                Err(ColarmError::InvalidThreshold { name: "minsupport", .. })
            ));
            assert!(matches!(
                LocalizedQuery::builder().minconf(bad).build(),
                Err(ColarmError::InvalidThreshold { name: "minconfidence", .. })
            ));
        }
    }

    #[test]
    fn validate_still_enforces_thresholds_on_hand_built_queries() {
        // Queries constructed without the builder (struct literal, parser
        // bugs) hit the same checks at execution time.
        let s = salary_schema();
        let q = LocalizedQuery {
            range: RangeSpec::all(),
            item_attrs: None,
            minsupp: 2.0,
            minconf: 0.8,
            semantics: Semantics::Strict,
        };
        assert!(matches!(
            q.validate(&s),
            Err(ColarmError::InvalidThreshold { name: "minsupport", .. })
        ));
    }

    #[test]
    fn named_builders_resolve() {
        let s = salary_schema();
        let q = LocalizedQuery::builder()
            .range_named(&s, "Location", &["Seattle"])
            .unwrap()
            .item_attrs_named(&s, &["Age", "Salary"])
            .unwrap()
            .minsupp(0.6)
            .minconf(0.9)
            .build()
            .unwrap();
        q.validate(&s).unwrap();
        let age = s.attribute_by_name("Age").unwrap();
        let company = s.attribute_by_name("Company").unwrap();
        assert!(q.admits_attribute(age));
        assert!(!q.admits_attribute(company));
    }

    #[test]
    fn builder_rejects_empty_item_attrs_and_empty_ranges() {
        assert_eq!(
            LocalizedQuery::builder().item_attrs([]).build(),
            Err(ColarmError::EmptyItemAttributes)
        );
        let empty_range =
            RangeSpec::all().with(AttributeId(0), Vec::<colarm_data::ValueId>::new());
        assert!(matches!(
            LocalizedQuery::builder().range(empty_range).build(),
            Err(ColarmError::Data(colarm_data::DataError::EmptyRange(_)))
        ));
    }

    #[test]
    fn builder_request_knobs_ride_into_the_request() {
        let request = LocalizedQuery::builder()
            .minsupp(0.6)
            .plan(PlanKind::Arm)
            .limits(QueryLimits::none().with_budget_units(1e6))
            .metrics(true)
            .trace(true)
            .build_request()
            .unwrap();
        assert_eq!(request.plan, Some(PlanKind::Arm));
        assert_eq!(request.limits.as_ref().unwrap().budget_units, Some(1e6));
        assert!(request.metrics && request.trace && !request.analyze);
        assert_eq!(request.minsupp, Some(0.6));
        // The run-level knobs never leak into the bare query...
        let query = LocalizedQuery::builder().plan(PlanKind::Sev).build().unwrap();
        assert_eq!(query.minsupp, 0.5);
        // ...and bad thresholds still fail fast on the request path.
        assert!(LocalizedQuery::builder()
            .minsupp(0.0)
            .analyze(true)
            .build_request()
            .is_err());
    }

    #[test]
    fn minsupp_count_rounds_up_with_boundary_tolerance() {
        let q = LocalizedQuery::builder().minsupp(0.75).build().unwrap();
        assert_eq!(q.minsupp_count(4), 3); // exactly 3/4
        assert_eq!(q.minsupp_count(5), 4); // 3.75 → 4
        assert_eq!(q.minsupp_count(0), 1); // degenerate, at least 1
        let q = LocalizedQuery::builder().minsupp(0.1).build().unwrap();
        assert_eq!(q.minsupp_count(10), 1);
        // 0.3 * 10 = 3.0000000000000004 in floating point; tolerance keeps 3.
        let q = LocalizedQuery::builder().minsupp(0.3).build().unwrap();
        assert_eq!(q.minsupp_count(10), 3);
    }
}
