//! Cross-query drill-down reuse: the hook through which a session's
//! restricted-column cache reaches the engine's SELECT operator.
//!
//! COLARM's motivating workload is a chain of refining queries (the
//! Simpson's-paradox drill-down): each query's `RangeSpec` adds conjuncts
//! to the previous one. A session that kept the previous query's
//! restricted vertical DB can serve the next SELECT by intersecting each
//! cached column with the refined subset — bit-identical to the fresh
//! scan (see [`colarm_mine::vertical::derive_restricted_par`]) at a
//! fraction of the tid-list volume. The engine stays cache-agnostic: it
//! asks an optional [`ColumnStore`] how to serve SELECT and offers the
//! result back for caching; sessions own the policy (keys, LRU bounds,
//! parent choice).

use crate::query::LocalizedQuery;
use colarm_data::FocalSubset;
use colarm_mine::vertical::ItemTids;
use std::sync::Arc;

/// How the SELECT operator may serve its restricted vertical DB.
#[derive(Debug, Clone, Default)]
pub enum ColumnReuse {
    /// No reusable materialization: probe the global vertical index.
    #[default]
    Fresh,
    /// The exact `(range, item-attrs)` columns are cached: reuse as-is.
    Exact(Arc<Vec<ItemTids>>),
    /// A *parent* subset's columns (same item-attrs restriction, range
    /// refined by this query) are cached: derive by intersecting each
    /// with the refined subset.
    Derive(Arc<Vec<ItemTids>>),
}

/// A session-owned store of restricted-column materializations consulted
/// by the engine's SELECT operator. Implemented by
/// [`crate::QuerySession`]; standalone executions run without one and
/// always scan fresh.
///
/// Never-cache-partial contract: [`ColumnStore::publish`] is only called
/// with a **complete** materialization — SELECT is single-shot and the
/// engine's limit check runs before it starts, so a canceled execution
/// never publishes anything.
pub trait ColumnStore: Sync {
    /// How should SELECT serve `query` over `subset`?
    fn fetch(&self, query: &LocalizedQuery, subset: &FocalSubset) -> ColumnReuse;

    /// Offer a fully materialized column set for caching. `derived`
    /// distinguishes a parent-derived materialization from a fresh scan
    /// (sessions count the two separately).
    fn publish(
        &self,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        columns: &Arc<Vec<ItemTids>>,
        derived: bool,
    );
}
