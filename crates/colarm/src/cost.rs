//! COLARM's analytical cost model (paper §4, Equations 1–6).
//!
//! Each of the six plans gets a constant-time cost estimate built from
//! index statistics gathered once at MIP-index construction (the "index
//! statistics" box of paper Figure 2) and the online query parameters.
//! The per-operator terms follow the paper:
//!
//! * `COST(S)` / `COST(SS)` / `COST(σ)` — expected R-tree node accesses
//!   (Theodoridis–Sellis \[21\]); the supported variants scale each level by
//!   the fraction of its nodes whose support bound survives `minsupp`.
//! * `COST(E)` — `|{I_S^Q}| × |DQ|` record-level support checks.
//! * `COST(V)` / `COST(VS)` — `Σ C_I × |DQ|` for rule generation plus a
//!   per-candidate-rule confidence-check term.
//! * `COST(U)` — constant.
//! * `COST(εAR)` — `|DQ| × max C_I × n` for from-scratch mining.
//!
//! Candidate-set cardinalities use Lemma 4.1 (R-tree intersection count)
//! and support-histogram selectivities. The paper's Lemma 4.2 prints the
//! ELIMINATE selectivity as `Σ (Supp_i + minsupp)`, which is dimensionally
//! loose; we implement the quantity it plainly stands for — the expected
//! number of candidates whose local support can reach `minsupp` — from the
//! prestored global-support histogram (see DESIGN.md).
//!
//! Raw operator *units* are converted to time by per-operator constants.
//! The defaults were fitted once on this implementation; [`CostModel::fit`]
//! re-fits them from executed query traces (the COLARM optimizer calibrates
//! itself on a handful of sample queries at index-build time).

use crate::ops::OpKind;
use crate::plan::PlanKind;
use crate::stats::{CatalogHints, StatsSource};
use colarm_data::ContainerKind;
use colarm_rtree::{Rect, RTree, TreeStats};
use serde::{Deserialize, Serialize};

/// Stable slot of a container kind in the histogram arrays below:
/// `[array, bitmap, runs]`.
fn kind_slot(kind: ContainerKind) -> usize {
    match kind {
        ContainerKind::Array => 0,
        ContainerKind::Bitmap => 1,
        ContainerKind::Runs => 2,
    }
}

/// Per-tid intersection work of each container kind relative to the
/// sorted-array baseline the ELIMINATE constant is fitted on: a merge or
/// gallop touches every id (1.0), a bitmap word-AND + popcount amortizes
/// 64 ids per word (0.25 — probe-style mixed kernels keep it well above
/// 1/64), and run kernels cost per interval boundary, not per id (0.08).
const CONTAINER_TID_WEIGHTS: [f64; 3] = [1.0, 0.25, 0.08];

/// Index-wide statistics backing the constant-time cost estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexStats {
    /// R-tree level statistics (node counts, average extents).
    pub tree: TreeStats,
    /// Sorted global support counts of all stored CFIs.
    pub supports: Vec<u32>,
    /// Sorted global support counts of all single items.
    pub item_supports: Vec<u32>,
    /// Per CFI, the minimum global support among its items (sorted). A CFI
    /// survives the ARM plan's item restriction only if its weakest item
    /// stays locally frequent — this histogram prices that test.
    pub cfi_min_item_supports: Vec<u32>,
    /// Per R-tree level: sorted node max-weight bounds (level 0 = root).
    pub level_weights: Vec<Vec<u32>>,
    /// Per attribute: fraction of CFIs containing an item of it.
    pub attr_coverage: Vec<f64>,
    /// Mean CFI length (`C_I`). Global fallback — estimates prefer the
    /// conditional [`CatalogHints::avg_len`] when the statistics catalog
    /// is present.
    pub avg_len: f64,
    /// Longest CFI length.
    pub max_len: usize,
    /// Mean candidate-rule count per CFI (`2^len − 2`, capped). Global
    /// fallback for [`CatalogHints::avg_rule_cands`].
    pub avg_rule_cands: f64,
    /// Mean CFI support count (the tidset work one mined itemset costs).
    /// Global fallback for [`CatalogHints::avg_supp_tidwork`].
    pub avg_supp_tidwork: f64,
    /// Chunk-container histogram over every stored CFI tid-list, gathered
    /// at index build: chunks of each [`ContainerKind`], indexed
    /// `[array, bitmap, runs]`.
    pub container_chunks: [u64; 3],
    /// Total tids held by chunks of each container kind (same order) —
    /// the mass distribution behind
    /// [`intersection_cost_scale`](IndexStats::intersection_cost_scale).
    pub container_tids: [f64; 3],
    /// Records in the dataset (`|D|`).
    pub num_records: usize,
    /// Attributes in the schema (`n`).
    pub num_attrs: usize,
    /// The primary support threshold, as an absolute count.
    pub primary_count: usize,
}

impl IndexStats {
    /// Gather statistics from the built index structures.
    #[allow(clippy::too_many_arguments)]
    pub fn collect<T>(
        rtree: &RTree<T>,
        domains: &[u32],
        cfi_lens: &[usize],
        cfi_supports: &[u32],
        cfi_attr_presence: &[Vec<bool>],
        item_supports: &[u32],
        cfi_min_item_supports: &[u32],
        container_stats: impl IntoIterator<Item = (ContainerKind, usize)>,
        num_records: usize,
        primary_count: usize,
    ) -> IndexStats {
        let mut container_chunks = [0u64; 3];
        let mut container_tids = [0.0f64; 3];
        for (kind, card) in container_stats {
            container_chunks[kind_slot(kind)] += 1;
            container_tids[kind_slot(kind)] += card as f64;
        }
        let tree = rtree.stats(domains);
        let mut supports = cfi_supports.to_vec();
        supports.sort_unstable();
        let mut item_supports = item_supports.to_vec();
        item_supports.sort_unstable();
        let mut cfi_min_item_supports = cfi_min_item_supports.to_vec();
        cfi_min_item_supports.sort_unstable();
        let mut level_weights: Vec<Vec<u32>> = vec![Vec::new(); tree.height()];
        rtree.walk_levels(|level, _, max_weight, _| {
            level_weights[level].push(max_weight);
        });
        for lw in &mut level_weights {
            lw.sort_unstable();
        }
        let n = cfi_lens.len().max(1) as f64;
        let num_attrs = domains.len();
        let mut attr_coverage = vec![0.0f64; num_attrs];
        for presence in cfi_attr_presence {
            for (a, &p) in presence.iter().enumerate() {
                if p {
                    attr_coverage[a] += 1.0;
                }
            }
        }
        for c in &mut attr_coverage {
            *c /= n;
        }
        let avg_len = cfi_lens.iter().sum::<usize>() as f64 / n;
        let max_len = cfi_lens.iter().copied().max().unwrap_or(0);
        let avg_rule_cands = cfi_lens
            .iter()
            .map(|&l| ((1u64 << l.min(12)) - 2) as f64)
            .sum::<f64>()
            / n;
        let avg_supp_tidwork = cfi_supports.iter().map(|&s| s as f64).sum::<f64>() / n;
        IndexStats {
            tree,
            supports,
            item_supports,
            cfi_min_item_supports,
            level_weights,
            attr_coverage,
            avg_len,
            max_len,
            avg_rule_cands,
            avg_supp_tidwork,
            container_chunks,
            container_tids,
            num_records,
            num_attrs,
            primary_count,
        }
    }

    /// Seconds-per-unit scale of tidset-intersection work relative to the
    /// all-array baseline the ELIMINATE constant describes, from the
    /// container histogram: the tid-mass-weighted mean of
    /// `CONTAINER_TID_WEIGHTS`. PR 1's binary sparse/dense split scored
    /// a whole set by one global density; the per-chunk histogram instead
    /// prices each 64k chunk by its own container, so an index that is
    /// globally sparse but locally clustered (the shape drill-down
    /// produces) is no longer billed at the scattered-array rate. `1.0`
    /// when the histogram is empty (nothing indexed yet, or a snapshot
    /// from a pre-container index version).
    pub fn intersection_cost_scale(&self) -> f64 {
        let mass: f64 = self.container_tids.iter().sum();
        if mass <= 0.0 {
            return 1.0;
        }
        let weighted: f64 = self
            .container_tids
            .iter()
            .zip(CONTAINER_TID_WEIGHTS)
            .map(|(&tids, w)| tids * w)
            .sum();
        weighted / mass
    }

    /// Number of CFIs whose weakest item has global support ≥ `count` —
    /// the expected volume of the ARM plan's restricted re-mining.
    pub fn cfis_surviving_item_restriction(&self, count: usize) -> f64 {
        let idx = self
            .cfi_min_item_supports
            .partition_point(|&s| (s as usize) < count);
        (self.cfi_min_item_supports.len() - idx) as f64
    }

    /// Fraction of single items with global support count ≥ `count`.
    pub fn item_selectivity(&self, count: usize) -> f64 {
        if self.item_supports.is_empty() {
            return 0.0;
        }
        let idx = self
            .item_supports
            .partition_point(|&s| (s as usize) < count);
        (self.item_supports.len() - idx) as f64 / self.item_supports.len() as f64
    }

    /// Fraction of CFIs with global support count ≥ `count`.
    pub fn support_selectivity(&self, count: usize) -> f64 {
        if self.supports.is_empty() {
            return 0.0;
        }
        let idx = self.supports.partition_point(|&s| (s as usize) < count);
        (self.supports.len() - idx) as f64 / self.supports.len() as f64
    }

    /// Expected R-tree node accesses for a plain range search.
    pub fn expected_search_nodes(&self, query: &Rect) -> f64 {
        colarm_rtree::expected_node_accesses(&self.tree, query)
    }

    /// Expected node accesses for a *supported* search: each level's term
    /// is additionally scaled by the fraction of that level's nodes whose
    /// max-weight bound reaches `min_count` (Equation 3's
    /// `(Supp_j + minsupp)` factor, realized as a histogram selectivity).
    pub fn expected_supported_search_nodes(&self, query: &Rect, min_count: usize) -> f64 {
        if self.tree.levels.is_empty() {
            return 0.0;
        }
        let q_ext = query.normalized_extents(&self.tree.domains);
        let mut total = 1.0;
        for (level, stats) in self.tree.levels.iter().enumerate().skip(1) {
            let geo: f64 = stats
                .avg_extents
                .iter()
                .zip(&q_ext)
                .map(|(s, q)| (s + q).min(1.0))
                .product();
            let weights = &self.level_weights[level];
            let surviving = if weights.is_empty() {
                1.0
            } else {
                let idx = weights.partition_point(|&w| (w as usize) < min_count);
                (weights.len() - idx) as f64 / weights.len() as f64
            };
            total += stats.nodes as f64 * geo * surviving;
        }
        total
    }

    /// Expected number of candidate MIPs intersected by the query box
    /// (paper Lemma 4.1).
    pub fn expected_candidates(&self, query: &Rect) -> f64 {
        colarm_rtree::cost::expected_intersections(&self.tree, query)
    }
}

/// Per-operator unit-cost constants (seconds per unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConstants {
    /// Per R-tree node access (SEARCH / SUPPORTED-SEARCH).
    pub node: f64,
    /// Per record-level support-check unit (ELIMINATE: candidates × |DQ|).
    pub eliminate: f64,
    /// Per rule-generation unit (VERIFY: Σ C_I × |DQ|).
    pub verify: f64,
    /// Per candidate-rule confidence check.
    pub confidence: f64,
    /// Per record extracted by SELECT.
    pub select: f64,
    /// Per from-scratch mining unit (|DQ| × max_len × n).
    pub arm: f64,
    /// Constant UNION overhead.
    pub union_const: f64,
}

impl Default for CostConstants {
    fn default() -> Self {
        // Fitted once against this implementation on the chess-analog
        // dataset; recalibrated per index by `Colarm::calibrate`.
        CostConstants {
            node: 2.0e-7,
            eliminate: 1.2e-9,
            verify: 2.5e-9,
            confidence: 3.0e-7,
            select: 5.0e-8,
            arm: 6.0e-9,
            union_const: 1.0e-6,
        }
    }
}

/// How the ARM plan's SELECT would be served, given the session's caches.
///
/// Standalone executions always scan fresh; a [`crate::QuerySession`]
/// probes its restricted-column cache before optimizing and threads the
/// answer into the [`QueryProfile`] so the plan choice reflects the real
/// (cheaper) SELECT the engine is about to run. Predicted *units* are
/// unchanged — only the seconds drop, mirroring the executor, whose
/// traces stay cache-independent while its wall-clock does not.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum SelectReuse {
    /// No reusable materialization: SELECT probes the global vertical DB.
    #[default]
    Fresh,
    /// A refined parent's columns are cached; SELECT intersects them with
    /// the focal subset. `volume` is the parent columns' total tid count —
    /// the work actually scanned instead of the global tid-lists.
    Derive {
        /// Total tids across the cached parent's columns.
        volume: f64,
    },
    /// The exact column set is cached: SELECT is a constant-time handoff.
    Cached,
}

/// Query-specific inputs to the estimator, computed once per query.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// The focal subset's hull rectangle.
    pub dq_rect: Rect,
    /// `|DQ|`.
    pub dq_len: usize,
    /// Local minimum support as an absolute count.
    pub minsupp_count: usize,
    /// Number of item attributes in play.
    pub item_attrs: usize,
    /// Estimated fraction of candidates fully contained in `DQ`.
    pub contained_frac: f64,
    /// Exact count of CFIs surviving the ARM plan's locally-frequent-item
    /// restriction, when the profile pass could afford to compute it
    /// (`None` → fall back to the min-item-support histogram).
    pub arm_mined: Option<f64>,
    /// Tidset volume of the restricted item columns the ARM plan clones
    /// (exact when `arm_mined` is exact, else estimated).
    pub arm_clone_units: f64,
    /// How SELECT would be served by the session's column cache.
    pub select_reuse: SelectReuse,
    /// Conditional statistics for this query's admitted item attributes,
    /// looked up in the index's [`StatsCatalog`](crate::stats::StatsCatalog)
    /// by [`MipIndex::query_profile`](crate::MipIndex::query_profile).
    /// `None` (stats-absent index) selects the global-average fallback
    /// path and stamps every term [`StatsSource::GlobalFallback`].
    pub catalog: Option<CatalogHints>,
}

/// The cost model: statistics + constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Index statistics.
    pub stats: IndexStats,
    /// Unit-cost constants.
    pub constants: CostConstants,
}

/// One operator's share of a plan estimate: the raw cost *units* the
/// paper's formulae predict (node accesses, support checks, …) and the
/// seconds those units convert to under the fitted [`CostConstants`].
///
/// `seconds` is not always `units × constant`: VERIFY folds the
/// per-candidate-rule confidence-check term into its seconds while its
/// units stay the paper's `nver × C_I × |DQ|`, the quantity the executor
/// measures. `OpKind` serializes as its name string, so the JSON wire
/// format is unchanged from the string-keyed days; terms round-trip
/// (deserialize) so analyze reports survive the server wire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostTerm {
    /// The operator this term predicts, matching [`crate::ops::OpTrace`]'s
    /// typed kind.
    pub op: OpKind,
    /// Predicted raw operator units (the executor's `OpTrace::units` scale).
    pub units: f64,
    /// Predicted seconds for this operator.
    pub seconds: f64,
    /// Which statistics produced this prediction: the per-query catalog,
    /// or the index-wide averages (stats-absent fallback).
    pub stats_source: StatsSource,
}

/// A per-plan cost estimate, broken into operator terms (seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// The estimated plan.
    pub plan: PlanKind,
    /// Per-operator terms, pipeline order.
    pub terms: Vec<CostTerm>,
}

impl CostEstimate {
    /// Total estimated seconds.
    pub fn total(&self) -> f64 {
        self.terms.iter().map(|t| t.seconds).sum()
    }

    /// Total predicted raw units across operators.
    pub fn total_units(&self) -> f64 {
        self.terms.iter().map(|t| t.units).sum()
    }

    /// The term of the given operator, if the plan has one.
    pub fn term(&self, op: OpKind) -> Option<&CostTerm> {
        self.terms.iter().find(|t| t.op == op)
    }
}

impl CostModel {
    /// Estimate one plan's execution cost for a query profile.
    pub fn estimate(&self, plan: PlanKind, q: &QueryProfile) -> CostEstimate {
        let s = &self.stats;
        let c = &self.constants;
        let dq = q.dq_len as f64;
        // Cardinality chain.
        let cand_s = s.expected_candidates(&q.dq_rect);
        let sigma_ss = s.support_selectivity(q.minsupp_count);
        let cand_ss = cand_s * sigma_ss;
        // A partially-overlapped candidate keeps roughly |DQ|/|D| of its
        // global support; it passes local minsupp when its global count
        // reaches minsupp × |D|.
        let global_equiv = (((q.minsupp_count as f64) * s.num_records as f64 / dq.max(1.0))
            as usize)
            .min(s.num_records);
        let sigma_e = s.support_selectivity(global_equiv);
        // Shape statistics: conditional on the query's admitted item
        // attributes when the catalog supplied hints, else the index-wide
        // averages (the documented stats-absent fallback — identical to
        // the pre-catalog model).
        let (avg_len, avg_rule_cands, avg_supp_tidwork, item_frac, stats_source) = match &q.catalog
        {
            Some(h) => (
                h.avg_len,
                h.avg_rule_cands,
                h.avg_supp_tidwork,
                h.item_restriction_frac,
                StatsSource::Catalog,
            ),
            None => (
                s.avg_len,
                s.avg_rule_cands,
                s.avg_supp_tidwork,
                (q.item_attrs as f64 / s.num_attrs.max(1) as f64).clamp(0.0, 1.0),
                StatsSource::GlobalFallback,
            ),
        };
        let elim_s = cand_s * sigma_e * item_frac;
        let elim_ss = cand_ss * sigma_e * item_frac;
        // Operator terms: predicted raw units on the executor's OpTrace
        // scale, plus the seconds they convert to.
        let search_units = s.expected_search_nodes(&q.dq_rect);
        let ss_units = s.expected_supported_search_nodes(&q.dq_rect, q.minsupp_count);
        let term_s = CostTerm {
            op: OpKind::Search,
            units: search_units,
            seconds: c.node * search_units,
            stats_source,
        };
        let term_ss = CostTerm {
            op: OpKind::SupportedSearch,
            units: ss_units,
            seconds: c.node * ss_units,
            stats_source,
        };
        // ELIMINATE's work is tidset intersections; its per-unit seconds
        // scale with the index's container mix (units stay the paper's
        // candidate × |DQ| scale, which the executor traces measure).
        let elim_secs_per_unit = c.eliminate * s.intersection_cost_scale();
        let units_e = |ncand: f64| ncand * dq;
        let term_e = |ncand: f64| CostTerm {
            op: OpKind::Eliminate,
            units: units_e(ncand),
            seconds: elim_secs_per_unit * units_e(ncand),
            stats_source,
        };
        // VERIFY's units are the rule-generation volume `nver × C_I × |DQ|`;
        // its seconds additionally carry the confidence-check term, so the
        // seconds/units ratio is deliberately not a single constant.
        let units_v = |nver: f64| nver * avg_len * dq;
        let secs_v = |nver: f64| c.verify * units_v(nver) + c.confidence * nver * avg_rule_cands;
        let term_v = |nver: f64| CostTerm {
            op: OpKind::Verify,
            units: units_v(nver),
            seconds: secs_v(nver),
            stats_source,
        };
        let terms = match plan {
            PlanKind::Sev => vec![term_s, term_e(cand_s), term_v(elim_s)],
            // In this implementation the push-up operator performs the
            // same support check + rule generation as E→V, so its estimate
            // mirrors that sum (the plans are near-ties by construction;
            // the paper's separation came from double record scans its
            // basic plan performed).
            PlanKind::Svs => vec![
                term_s,
                CostTerm {
                    op: OpKind::SupportedVerify,
                    units: units_e(cand_s) + units_v(elim_s),
                    seconds: elim_secs_per_unit * units_e(cand_s) + secs_v(elim_s),
                    stats_source,
                },
            ],
            PlanKind::SsEv => vec![term_ss, term_e(cand_ss), term_v(elim_ss)],
            PlanKind::SsVs => vec![
                term_ss,
                CostTerm {
                    op: OpKind::SupportedVerify,
                    units: units_e(cand_ss) + units_v(elim_ss),
                    seconds: elim_secs_per_unit * units_e(cand_ss) + secs_v(elim_ss),
                    stats_source,
                },
            ],
            PlanKind::SsEuv => {
                let contained = cand_ss * q.contained_frac;
                let partial = cand_ss - contained;
                vec![
                    term_ss,
                    term_e(partial),
                    CostTerm {
                        op: OpKind::Union,
                        units: 1.0,
                        seconds: c.union_const,
                        stats_source,
                    },
                    term_v((partial * sigma_e + contained) * item_frac),
                ]
            }
            PlanKind::Arm => {
                // The traditional plan re-runs the offline mining over the
                // dataset restricted to the locally frequent items. A CFI
                // contributes to that mining volume only if its *weakest*
                // item stays locally frequent; approximating local
                // frequency by global frequency at the same fraction
                // (random placement), the per-CFI min-item-support
                // histogram prices the restriction. Note the volume is
                // largely |DQ|-independent — which is why ARM's cost curve
                // is flat where the index plans' shrink with the subset.
                let est_mined = q.arm_mined.unwrap_or_else(|| match &q.catalog {
                    // The catalog already counted the surviving CFIs
                    // *inside the admitted attribute set*; the global
                    // histogram cannot distinguish admitted from excluded
                    // items.
                    Some(h) => h.arm_surviving.max(1.0),
                    None => {
                        let local_frac_threshold = ((q.minsupp_count as f64 / dq.max(1.0))
                            * s.num_records as f64)
                            as usize;
                        s.cfis_surviving_item_restriction(local_frac_threshold)
                            .max(1.0)
                    }
                });
                let mining_units = dq * q.item_attrs.max(1) as f64
                    + q.arm_clone_units
                    + est_mined * avg_supp_tidwork
                    + est_mined * dq * sigma_e;
                let select_units = dq * s.num_attrs.max(1) as f64;
                // A session-cached materialization serves SELECT cheaper
                // than the fresh scan the units describe: deriving scans
                // only the parent columns' tids (a strict subset of the
                // global volume for any proper refinement), and an exact
                // hit is a constant-time handoff. Units stay the fresh
                // scan's — they are the executor's trace scale, which is
                // deliberately cache-independent.
                let select_seconds = match q.select_reuse {
                    SelectReuse::Fresh => c.select * select_units,
                    SelectReuse::Derive { volume } => {
                        let global =
                            (s.num_records as f64) * q.item_attrs.max(1) as f64;
                        c.select * select_units * (volume / global.max(1.0)).min(1.0)
                    }
                    SelectReuse::Cached => c.union_const,
                };
                vec![
                    CostTerm {
                        op: OpKind::Select,
                        units: select_units,
                        seconds: select_seconds,
                        stats_source,
                    },
                    CostTerm {
                        op: OpKind::Arm,
                        units: mining_units,
                        seconds: c.arm * mining_units,
                        stats_source,
                    },
                ]
            }
        };
        CostEstimate { plan, terms }
    }

    /// Estimate every plan, cheapest first.
    pub fn estimate_all(&self, q: &QueryProfile) -> Vec<CostEstimate> {
        let mut all: Vec<CostEstimate> = PlanKind::ALL
            .iter()
            .map(|&p| self.estimate(p, q))
            .collect();
        all.sort_by(|a, b| a.total().total_cmp(&b.total()));
        all
    }

    /// Re-fit the unit constants from observed `(operator name, raw units,
    /// seconds)` samples: each constant becomes the ratio of total observed
    /// time to total raw units for its operator. Samples with unknown
    /// operator names are ignored.
    pub fn fit(&mut self, samples: &[(&str, f64, f64)]) {
        let fit_one = |names: &[&str], slot: &mut f64| {
            let (mut units, mut secs) = (0.0, 0.0);
            for (name, u, t) in samples {
                if names.contains(name) {
                    units += u;
                    secs += t;
                }
            }
            if units > 0.0 && secs > 0.0 {
                *slot = secs / units;
            }
        };
        let scale = self.stats.intersection_cost_scale();
        let c = &mut self.constants;
        fit_one(&["SEARCH", "SUPPORTED-SEARCH"], &mut c.node);
        // The estimator prices ELIMINATE at `eliminate × container scale`,
        // so the stored constant is the observed per-unit time *deflated*
        // by the scale: re-estimating under the same index reproduces the
        // observed seconds, and the constant stays on the all-array
        // baseline scale (comparable across indexes with different mixes).
        let mut elim_effective = c.eliminate * scale;
        fit_one(&["ELIMINATE"], &mut elim_effective);
        c.eliminate = elim_effective / scale;
        fit_one(&["VERIFY", "SUPPORTED-VERIFY"], &mut c.verify);
        fit_one(&["SELECT"], &mut c.select);
        fit_one(&["ARM"], &mut c.arm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_stats() -> IndexStats {
        // A hand-built two-level stats object over a 2-D domain.
        let tree = TreeStats {
            levels: vec![
                colarm_rtree::LevelStats {
                    nodes: 1,
                    avg_extents: vec![1.0, 1.0],
                    avg_fanout: 10.0,
                    avg_max_weight: 90.0,
                },
                colarm_rtree::LevelStats {
                    nodes: 10,
                    avg_extents: vec![0.3, 0.3],
                    avg_fanout: 10.0,
                    avg_max_weight: 70.0,
                },
            ],
            domains: vec![10, 10],
            entries: 100,
        };
        IndexStats {
            tree,
            supports: (1..=100).collect(),
            item_supports: (10..=100).step_by(10).collect(),
            cfi_min_item_supports: (1..=100).collect(),
            level_weights: vec![vec![100], (10..=100).step_by(10).collect()],
            attr_coverage: vec![0.5, 0.5],
            avg_len: 2.0,
            max_len: 4,
            avg_rule_cands: 4.0,
            avg_supp_tidwork: 50.0,
            container_chunks: [2, 1, 1],
            container_tids: [100.0, 200.0, 100.0],
            num_records: 100,
            num_attrs: 2,
            primary_count: 10,
        }
    }

    fn profile(dq_len: usize, minsupp_count: usize) -> QueryProfile {
        QueryProfile {
            dq_rect: Rect::new(vec![0, 0], vec![4, 4]),
            dq_len,
            minsupp_count,
            item_attrs: 2,
            contained_frac: 0.3,
            arm_mined: None,
            arm_clone_units: 100.0,
            select_reuse: SelectReuse::Fresh,
            catalog: None,
        }
    }

    #[test]
    fn catalog_hints_replace_global_averages_and_stamp_the_source() {
        let model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        let fallback = model.estimate(PlanKind::Sev, &profile(50, 25));
        assert!(fallback
            .terms
            .iter()
            .all(|t| t.stats_source == StatsSource::GlobalFallback));
        let mut q = profile(50, 25);
        // Hints mirroring the global averages with full restriction: the
        // estimate must be numerically identical, only the source changes.
        q.catalog = Some(CatalogHints {
            avg_len: model.stats.avg_len,
            avg_rule_cands: model.stats.avg_rule_cands,
            avg_supp_tidwork: model.stats.avg_supp_tidwork,
            item_restriction_frac: 1.0,
            arm_surviving: 1.0,
        });
        let mirrored = model.estimate(PlanKind::Sev, &q);
        assert!(mirrored
            .terms
            .iter()
            .all(|t| t.stats_source == StatsSource::Catalog));
        assert_eq!(mirrored.total().to_bits(), fallback.total().to_bits());
        // A sharper restriction fraction lowers ELIMINATE/VERIFY volume.
        q.catalog = Some(CatalogHints {
            avg_len: model.stats.avg_len,
            avg_rule_cands: model.stats.avg_rule_cands,
            avg_supp_tidwork: model.stats.avg_supp_tidwork,
            item_restriction_frac: 0.25,
            arm_surviving: 1.0,
        });
        let restricted = model.estimate(PlanKind::Sev, &q);
        assert!(restricted.total() < mirrored.total());
        // The ARM plan prices its re-mining from the conditional
        // surviving count instead of the global histogram.
        q.catalog = Some(CatalogHints {
            avg_len: 2.0,
            avg_rule_cands: 4.0,
            avg_supp_tidwork: 50.0,
            item_restriction_frac: 1.0,
            arm_surviving: 500.0,
        });
        let arm_hinted = model.estimate(PlanKind::Arm, &q);
        q.catalog = None;
        let arm_fallback = model.estimate(PlanKind::Arm, &q);
        assert!(arm_hinted.total() > arm_fallback.total());
    }

    #[test]
    fn cached_parent_lowers_predicted_select_seconds() {
        let model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        let fresh = model.estimate(PlanKind::Arm, &profile(50, 25));
        let mut q = profile(50, 25);
        q.select_reuse = SelectReuse::Derive { volume: 80.0 }; // 80 of 100×2 global tids
        let derive = model.estimate(PlanKind::Arm, &q);
        q.select_reuse = SelectReuse::Cached;
        let cached = model.estimate(PlanKind::Arm, &q);
        let secs = |e: &CostEstimate| e.term(OpKind::Select).unwrap().seconds;
        assert!(secs(&derive) < secs(&fresh), "derive must beat fresh");
        assert!(secs(&cached) < secs(&derive), "exact hit must beat derive");
        // Predicted units are the executor's trace scale: cache-independent.
        let units = |e: &CostEstimate| e.term(OpKind::Select).unwrap().units;
        assert_eq!(units(&fresh).to_bits(), units(&derive).to_bits());
        assert_eq!(units(&fresh).to_bits(), units(&cached).to_bits());
        // A volume at (or above) the global volume clamps to the fresh cost.
        q.select_reuse = SelectReuse::Derive { volume: 1.0e9 };
        let clamped = model.estimate(PlanKind::Arm, &q);
        assert_eq!(secs(&clamped).to_bits(), secs(&fresh).to_bits());
    }

    #[test]
    fn support_selectivity_from_histogram() {
        let s = synthetic_stats();
        assert_eq!(s.support_selectivity(0), 1.0);
        assert_eq!(s.support_selectivity(1), 1.0);
        assert_eq!(s.support_selectivity(101), 0.0);
        assert!((s.support_selectivity(51) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn supported_search_is_never_costlier_than_search() {
        let s = synthetic_stats();
        let q = Rect::new(vec![0, 0], vec![4, 4]);
        for count in [0usize, 20, 50, 90, 200] {
            assert!(
                s.expected_supported_search_nodes(&q, count) <= s.expected_search_nodes(&q) + 1e-12,
                "count {count}"
            );
        }
    }

    #[test]
    fn estimates_cover_all_plans_and_are_positive() {
        let model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        let all = model.estimate_all(&profile(50, 25));
        assert_eq!(all.len(), PlanKind::ALL.len());
        for e in &all {
            assert!(e.total() > 0.0, "{:?}", e.plan);
        }
        // Sorted ascending.
        for w in all.windows(2) {
            assert!(w[0].total() <= w[1].total());
        }
    }

    #[test]
    fn terms_expose_predicted_units() {
        let model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        let est = model.estimate(PlanKind::Sev, &profile(50, 25));
        let ops: Vec<&str> = est.terms.iter().map(|t| t.op.name()).collect();
        assert_eq!(ops, ["SEARCH", "ELIMINATE", "VERIFY"]);
        assert!(est.total_units() > 0.0);
        assert!(est.term(OpKind::Verify).is_some());
        assert!(est.term(OpKind::Arm).is_none());
        // ELIMINATE prices its units at the container-scaled constant.
        let e = est.term(OpKind::Eliminate).unwrap();
        let per_unit =
            CostConstants::default().eliminate * model.stats.intersection_cost_scale();
        assert!((e.seconds - e.units * per_unit).abs() < 1e-15);
        // The push-up term prices exactly the E + V work it merges.
        let sev = model.estimate(PlanKind::Sev, &profile(50, 25));
        let svs = model.estimate(PlanKind::Svs, &profile(50, 25));
        let merged = svs.term(OpKind::SupportedVerify).unwrap();
        let split =
            sev.term(OpKind::Eliminate).unwrap().units + sev.term(OpKind::Verify).unwrap().units;
        assert!((merged.units - split).abs() < 1e-9);
    }

    #[test]
    fn higher_minsupp_never_increases_ss_plan_estimates() {
        let model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        let lo = model.estimate(PlanKind::SsVs, &profile(50, 10)).total();
        let hi = model.estimate(PlanKind::SsVs, &profile(50, 60)).total();
        assert!(hi <= lo);
    }

    #[test]
    fn fit_recovers_constants_from_samples() {
        let mut model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        model.fit(&[
            ("SEARCH", 100.0, 1.0e-3),
            ("SUPPORTED-SEARCH", 100.0, 1.0e-3),
            ("ELIMINATE", 1e6, 2.0e-3),
            ("VERIFY", 1e6, 4.0e-3),
            ("SELECT", 1e4, 1.0e-3),
            ("ARM", 1e6, 9.0e-3),
            ("bogus", 1.0, 1.0),
        ]);
        let c = model.constants;
        assert!((c.node - 1.0e-5).abs() < 1e-12);
        // The stored ELIMINATE constant is deflated by the container scale
        // so the estimator's `constant × scale` reproduces the observed
        // 2.0e-9 seconds per unit under this index.
        let scale = model.stats.intersection_cost_scale();
        assert!((c.eliminate * scale - 2.0e-9).abs() < 1e-15);
        assert!((c.verify - 4.0e-9).abs() < 1e-15);
        assert!((c.select - 1.0e-7).abs() < 1e-13);
        assert!((c.arm - 9.0e-9).abs() < 1e-15);
    }

    #[test]
    fn intersection_scale_follows_container_mix() {
        let mut s = synthetic_stats();
        // Empty histogram (pre-container snapshot): neutral scale.
        s.container_tids = [0.0; 3];
        s.container_chunks = [0; 3];
        assert_eq!(s.intersection_cost_scale(), 1.0);
        // All-array index: the fitted baseline, scale 1.
        s.container_tids = [1000.0, 0.0, 0.0];
        assert_eq!(s.intersection_cost_scale(), 1.0);
        // Moving tid mass into bitmaps and runs cheapens intersections,
        // bounded below by the run weight.
        s.container_tids = [500.0, 500.0, 0.0];
        let half_bitmap = s.intersection_cost_scale();
        s.container_tids = [0.0, 500.0, 500.0];
        let no_array = s.intersection_cost_scale();
        assert!(half_bitmap < 1.0);
        assert!(no_array < half_bitmap);
        assert!(no_array >= CONTAINER_TID_WEIGHTS[2]);
        // The scale only touches seconds: predicted units are identical
        // across container mixes of the same logical index.
        let dense_stats = {
            let mut st = synthetic_stats();
            st.container_tids = [0.0, 400.0, 0.0];
            st
        };
        let sparse_model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        let dense_model = CostModel {
            stats: dense_stats,
            constants: CostConstants::default(),
        };
        let q = profile(50, 25);
        for plan in PlanKind::ALL {
            let a = sparse_model.estimate(plan, &q);
            let b = dense_model.estimate(plan, &q);
            assert_eq!(a.total_units().to_bits(), b.total_units().to_bits(), "{plan}");
        }
    }

    #[test]
    fn fit_round_trips_through_the_container_scale() {
        // Whatever the index's container mix, fitting on observed traces
        // and re-estimating must reproduce the observed per-unit seconds.
        let mut model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        model.fit(&[("ELIMINATE", 1e6, 5.0e-3)]);
        let est = model.estimate(PlanKind::Sev, &profile(50, 25));
        let e = est.term(OpKind::Eliminate).unwrap();
        let observed_per_unit = 5.0e-3 / 1e6;
        assert!((e.seconds / e.units - observed_per_unit).abs() < 1e-18);
    }

    #[test]
    fn fit_ignores_empty_samples() {
        let mut model = CostModel {
            stats: synthetic_stats(),
            constants: CostConstants::default(),
        };
        let before = model.constants;
        model.fit(&[]);
        assert_eq!(model.constants, before);
    }
}
