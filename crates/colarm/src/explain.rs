//! Structured `EXPLAIN` and `EXPLAIN ANALYZE` for localized mining
//! queries: what the optimizer saw, what it estimated, why it chose the
//! plan it chose — and, for ANALYZE, what the execution actually cost,
//! operator by operator, predicted vs. measured. Rendered by the CLI's
//! `:explain` / `:analyze` and available programmatically for tooling
//! (JSON via [`AnalyzeReport::to_json`]).

use crate::cost::{CostEstimate, CostTerm};
use crate::framework::Colarm;
use crate::error::ColarmError;
use crate::ops::OpKind;
use crate::optimizer::PlanChoice;
use crate::plan::{PlanKind, QueryAnswer};
use crate::query::LocalizedQuery;
use crate::stats::StatsSource;
use colarm_data::metrics::OpMetrics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The optimizer's full view of one query, before execution.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// `|DQ|`.
    pub subset_size: usize,
    /// `|DQ| / |D|`.
    pub subset_fraction: f64,
    /// Absolute local minimum support count.
    pub minsupp_count: usize,
    /// Number of prestored MIPs the index holds.
    pub num_mips: usize,
    /// All six estimates, cheapest first.
    pub estimates: Vec<CostEstimate>,
    /// The chosen plan.
    pub chosen: PlanKind,
}

impl Explanation {
    /// Ratio between the runner-up's and the winner's estimates — how
    /// confident the argmin decision is (1.0 = dead heat).
    pub fn decision_margin(&self) -> f64 {
        if self.estimates.len() < 2 {
            return f64::INFINITY;
        }
        let best = self.estimates[0].total();
        if best <= 0.0 {
            return f64::INFINITY;
        }
        self.estimates[1].total() / best
    }

    /// The estimate of a specific plan.
    pub fn estimate_for(&self, plan: PlanKind) -> &CostEstimate {
        self.estimates
            .iter()
            .find(|e| e.plan == plan)
            .expect("all plans estimated")
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "focal subset: {} records ({:.1}% of D); minsupp count {}; {} MIPs prestored",
            self.subset_size,
            self.subset_fraction * 100.0,
            self.minsupp_count,
            self.num_mips
        )?;
        writeln!(
            f,
            "decision margin: runner-up is estimated {:.2}x the winner",
            self.decision_margin()
        )?;
        for est in &self.estimates {
            let marker = if est.plan == self.chosen { "→" } else { " " };
            let terms: Vec<String> = est
                .terms
                .iter()
                .map(|t| format!("{} {:.2e}", t.op, t.seconds))
                .collect();
            writeln!(
                f,
                "{marker} {:<10} {:.3e} s   [{}]",
                est.plan.name(),
                est.total(),
                terms.join(" + ")
            )?;
        }
        Ok(())
    }
}

/// One operator's row in an `EXPLAIN ANALYZE` report: the cost model's
/// prediction next to what the executor measured. Predictions are absent
/// for operators the model carries no term for (CLASSIFY — its work is
/// priced into its neighbours).
///
/// `measured_units` and `metrics` are exact, thread-count-independent
/// quantities; the two `*_seconds` fields are wall-clock and vary run to
/// run. `OpKind` serializes as its name string, keeping the JSON wire
/// format identical to the string-keyed days.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzedOp {
    /// The operator this row measures (typed; renders as the same name
    /// string the trace reports).
    pub op: OpKind,
    /// Raw units the cost model predicted for this operator.
    pub predicted_units: Option<f64>,
    /// Seconds the cost model predicted for this operator.
    pub predicted_seconds: Option<f64>,
    /// Input cardinality the operator saw.
    pub input: usize,
    /// Output cardinality it produced.
    pub output: usize,
    /// Raw units it actually consumed (the calibration quantity).
    pub measured_units: f64,
    /// Wall-clock seconds it took.
    pub measured_seconds: f64,
    /// Execution counters (`None` when the run had metrics reporting off).
    pub metrics: Option<OpMetrics>,
    /// Where the prediction's cardinality inputs came from — the
    /// statistics catalog or the global-average fallback. Absent for
    /// operators without a cost-model term.
    #[serde(default)]
    pub stats_source: Option<StatsSource>,
}

impl AnalyzedOp {
    /// `measured_units / predicted_units` — how far off the cardinality
    /// model was (`None` without a prediction or with a zero prediction).
    pub fn units_error(&self) -> Option<f64> {
        match self.predicted_units {
            Some(p) if p > 0.0 => Some(self.measured_units / p),
            _ => None,
        }
    }
}

/// Roll-up of the per-operator predicted-vs-measured rows: one line for
/// tooling that wants the headline numbers without walking `ops`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AnalyzeTotals {
    /// Sum of the operators' predicted seconds (rows with a prediction).
    pub predicted_seconds: f64,
    /// Sum of the operators' measured wall-clock seconds.
    pub measured_seconds: f64,
    /// `(measured - predicted) / predicted × 100` — signed percentage
    /// error of the roll-up (`None` when nothing was predicted).
    pub error_pct: Option<f64>,
}

impl AnalyzeTotals {
    fn from_ops(ops: &[AnalyzedOp]) -> AnalyzeTotals {
        let predicted_seconds: f64 = ops.iter().filter_map(|o| o.predicted_seconds).sum();
        let measured_seconds: f64 = ops.iter().map(|o| o.measured_seconds).sum();
        let error_pct = (predicted_seconds > 0.0)
            .then(|| (measured_seconds - predicted_seconds) / predicted_seconds * 100.0);
        AnalyzeTotals {
            predicted_seconds,
            measured_seconds,
            error_pct,
        }
    }
}

impl fmt::Display for AnalyzeTotals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total: predicted {:.3e} s / measured {:.3e} s / error ",
            self.predicted_seconds, self.measured_seconds
        )?;
        match self.error_pct {
            Some(pct) => write!(f, "{pct:+.1}%"),
            None => write!(f, "n/a"),
        }
    }
}

/// The full `EXPLAIN ANALYZE` view of one executed query: the optimizer's
/// six estimates, the executed plan, and per-operator predicted-vs-actual
/// accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzeReport {
    /// The plan that ran.
    pub plan: PlanKind,
    /// Whether the optimizer picked it (false for forced-plan runs).
    pub chosen_by_optimizer: bool,
    /// `|DQ|`.
    pub subset_size: usize,
    /// Absolute local minimum support count.
    pub minsupp_count: usize,
    /// Rules the execution produced.
    pub num_rules: usize,
    /// The executed plan's total predicted seconds.
    pub predicted_seconds: f64,
    /// Measured wall-clock seconds for the whole plan.
    pub actual_seconds: f64,
    /// All six estimates, cheapest first.
    pub estimates: Vec<CostEstimate>,
    /// Per-operator predicted-vs-actual rows, pipeline order.
    pub ops: Vec<AnalyzedOp>,
    /// One-line roll-up over `ops` (summed predicted / measured seconds
    /// and signed error percentage).
    #[serde(default)]
    pub totals: AnalyzeTotals,
    /// Where the executed plan's cardinality inputs came from — the
    /// statistics catalog or the global-average fallback.
    #[serde(default)]
    pub stats_source: StatsSource,
    /// Worker-pool activity over this execution ([`colarm_data::par`]
    /// counter deltas; `workers` is the pool's current size). The pool is
    /// process-global, so concurrent executions' tasks land in whichever
    /// report is in flight — treat as observability, not accounting.
    pub pool: colarm_data::par::PoolStats,
}

impl AnalyzeReport {
    pub(crate) fn new(
        answer: &QueryAnswer,
        choice: &PlanChoice,
        minsupp_count: usize,
        chosen_by_optimizer: bool,
        pool: colarm_data::par::PoolStats,
    ) -> AnalyzeReport {
        let estimate = choice.estimate_for(answer.plan);
        let ops = answer
            .trace
            .ops
            .iter()
            .map(|o| {
                let term: Option<&CostTerm> = estimate.term(o.kind);
                AnalyzedOp {
                    op: o.kind,
                    predicted_units: term.map(|t| t.units),
                    predicted_seconds: term.map(|t| t.seconds),
                    input: o.input,
                    output: o.output,
                    measured_units: o.units,
                    measured_seconds: o.duration.as_secs_f64(),
                    metrics: o.metrics,
                    stats_source: term.map(|t| t.stats_source),
                }
            })
            .collect::<Vec<_>>();
        let totals = AnalyzeTotals::from_ops(&ops);
        let stats_source = estimate
            .terms
            .first()
            .map(|t| t.stats_source)
            .unwrap_or(StatsSource::GlobalFallback);
        AnalyzeReport {
            plan: answer.plan,
            chosen_by_optimizer,
            subset_size: answer.subset_size,
            minsupp_count,
            num_rules: answer.rules.len(),
            predicted_seconds: estimate.total(),
            actual_seconds: answer.trace.total.as_secs_f64(),
            estimates: choice.estimates.clone(),
            ops,
            totals,
            stats_source,
            pool,
        }
    }

    /// The row of the named operator, if the plan ran it. Resolves
    /// through the typed kind's name, so string lookups stay robust.
    pub fn op(&self, name: &str) -> Option<&AnalyzedOp> {
        self.ops.iter().find(|o| o.op.name() == name)
    }

    /// The row of the given operator kind, if the plan ran it.
    pub fn op_kind(&self, kind: OpKind) -> Option<&AnalyzedOp> {
        self.ops.iter().find(|o| o.op == kind)
    }

    /// Total measured raw units across operators — matches
    /// [`crate::plan::ExecutionTrace::total_units`] for the same run, and
    /// is the quantity the optimizer's feedback accounting sums.
    pub fn total_measured_units(&self) -> f64 {
        self.ops.iter().map(|o| o.measured_units).sum()
    }

    /// Fieldwise sum of the per-operator execution counters (zero when
    /// the run had metrics reporting off).
    pub fn metrics_total(&self) -> OpMetrics {
        OpMetrics::fold(self.ops.iter().filter_map(|o| o.metrics.as_ref()))
    }

    /// `actual_seconds / predicted_seconds` (`None` on a zero prediction).
    pub fn time_error(&self) -> Option<f64> {
        if self.predicted_seconds > 0.0 {
            Some(self.actual_seconds / self.predicted_seconds)
        } else {
            None
        }
    }

    /// The report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

impl fmt::Display for AnalyzeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan {} ({}); {} records; minsupp count {}; {} rules",
            self.plan.name(),
            if self.chosen_by_optimizer {
                "optimizer choice"
            } else {
                "forced"
            },
            self.subset_size,
            self.minsupp_count,
            self.num_rules
        )?;
        match self.time_error() {
            Some(ratio) => writeln!(
                f,
                "predicted {:.3e} s, actual {:.3e} s ({ratio:.2}x)",
                self.predicted_seconds, self.actual_seconds
            )?,
            None => writeln!(f, "actual {:.3e} s (no prediction)", self.actual_seconds)?,
        }
        writeln!(
            f,
            "{:<18} {:>11} {:>11} {:>10} {:>10}  counters",
            "operator", "pred.units", "meas.units", "pred.s", "meas.s"
        )?;
        for op in &self.ops {
            let pu = match op.predicted_units {
                Some(u) => format!("{u:.1}"),
                None => "-".to_string(),
            };
            let ps = match op.predicted_seconds {
                Some(s) => format!("{s:.2e}"),
                None => "-".to_string(),
            };
            let counters = match &op.metrics {
                Some(m) => {
                    // Break total intersections down by the chunk-kernel
                    // container pairing (a=array, b=bitmap, r=runs),
                    // omitting pairs that never ran.
                    let mut kernels = String::new();
                    for (label, count) in [
                        ("a*a", m.isect_array_array),
                        ("a*b", m.isect_array_bitmap),
                        ("a*r", m.isect_array_runs),
                        ("b*b", m.isect_bitmap_bitmap),
                        ("b*r", m.isect_bitmap_runs),
                        ("r*r", m.isect_runs_runs),
                    ] {
                        if count > 0 {
                            let sep = if kernels.is_empty() { "" } else { " " };
                            kernels.push_str(&format!("{sep}{label} {count}"));
                        }
                    }
                    let isect = if kernels.is_empty() {
                        "isect 0".to_string()
                    } else {
                        format!("isect {} [{kernels}]", m.intersections())
                    };
                    format!(
                        "scan {} emit {} {} rtree {} lookups {} hits {}",
                        m.scanned,
                        m.emitted,
                        isect,
                        m.rtree_nodes,
                        m.support_lookups,
                        m.cache_hits
                    )
                }
                None => "off".to_string(),
            };
            writeln!(
                f,
                "{:<18} {:>11} {:>11.1} {:>10} {:>10.2e}  {}",
                op.op, pu, op.measured_units, ps, op.measured_seconds, counters
            )?;
        }
        writeln!(f, "{} (estimates from {})", self.totals, self.stats_source)?;
        writeln!(
            f,
            "pool: {} workers, {} tasks, {} steals, {} parks/{} unparks",
            self.pool.workers,
            self.pool.tasks_submitted,
            self.pool.steals,
            self.pool.parks,
            self.pool.unparks
        )?;
        Ok(())
    }
}

/// An `EXPLAIN ANALYZE` result: the executed answer, the optimizer's
/// decision, and the predicted-vs-actual report.
#[derive(Debug, Clone)]
pub struct AnalyzedAnswer {
    /// The executed answer (rules, trace — metrics reporting on).
    pub answer: QueryAnswer,
    /// The optimizer's decision and all six estimates.
    pub choice: PlanChoice,
    /// The per-operator predicted-vs-actual report.
    pub report: AnalyzeReport,
}

/// Explain a query against a built system without executing it.
pub fn explain(colarm: &Colarm, query: &LocalizedQuery) -> Result<Explanation, ColarmError> {
    query.validate(colarm.index().dataset().schema())?;
    let subset = colarm.index().resolve_subset(query.range.clone())?;
    if subset.is_empty() {
        return Err(ColarmError::EmptySubset);
    }
    let choice = colarm.optimizer().choose(colarm.index(), query, &subset);
    Ok(Explanation {
        subset_size: subset.len(),
        subset_fraction: subset.fraction(),
        minsupp_count: query.minsupp_count(subset.len()),
        num_mips: colarm.index().num_mips(),
        chosen: choice.chosen,
        estimates: choice.estimates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn system() -> Colarm {
        Colarm::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn explanation_matches_execution() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.8)
            .build()
            .unwrap();
        let ex = explain(&colarm, &q).unwrap();
        assert_eq!(ex.subset_size, 4);
        assert_eq!(ex.estimates.len(), 6);
        assert!(ex.decision_margin() >= 1.0);
        let out = colarm
            .run(&crate::request::QueryRequest::query(&q))
            .unwrap();
        assert_eq!(ex.chosen, out.plan);
        // Render includes every plan name.
        let text = ex.to_string();
        for p in PlanKind::ALL {
            assert!(text.contains(p.name()), "missing {p} in explain output");
        }
    }

    #[test]
    fn explain_validates_inputs() {
        let colarm = system();
        // The builder refuses the bad threshold up front; a hand-built
        // query hits the same check inside `explain`.
        assert!(LocalizedQuery::builder().minsupp(0.0).build().is_err());
        let bad = LocalizedQuery {
            range: colarm_data::RangeSpec::all(),
            item_attrs: None,
            minsupp: 0.0,
            minconf: 0.8,
            semantics: crate::query::Semantics::Strict,
        };
        assert!(explain(&colarm, &bad).is_err());
    }

    #[test]
    fn analyze_reports_predicted_vs_actual_per_operator() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.8)
            .build()
            .unwrap();
        let out = colarm
            .run(
                &crate::request::QueryRequest::query(&q)
                    .with_analyze(true)
                    .with_trace(true),
            )
            .unwrap();
        let report = out.analyze.as_ref().expect("analyze report present");
        let trace = out.trace.as_ref().expect("trace requested");
        assert_eq!(report.plan, out.plan);
        assert!(report.chosen_by_optimizer);
        assert_eq!(report.estimates.len(), PlanKind::ALL.len());
        assert_eq!(report.ops.len(), trace.ops.len());
        // Measured units/metrics mirror the trace exactly.
        assert_eq!(report.total_measured_units(), trace.total_units());
        assert_eq!(report.metrics_total(), trace.metrics_total());
        for (row, op) in report.ops.iter().zip(&trace.ops) {
            assert_eq!(row.op, op.kind);
            assert_eq!(row.measured_units, op.units);
            assert!(row.metrics.is_some(), "ANALYZE forces metrics on");
        }
        // Every cost-model operator in the plan has a prediction.
        let estimate = out
            .choice
            .as_ref()
            .expect("optimizer ran")
            .estimate_for(report.plan);
        for row in &report.ops {
            assert_eq!(row.predicted_units.is_some(), estimate.term(row.op).is_some());
        }
        assert!(report.predicted_seconds > 0.0);
        assert!(report.actual_seconds > 0.0);
        // The rendering carries the plan and the operator names.
        let text = report.to_string();
        assert!(text.contains(report.plan.name()));
        for row in &report.ops {
            assert!(
                text.contains(row.op.name()),
                "missing {} in analyze output",
                row.op
            );
        }
        // The totals footer rolls up exactly the op rows, renders, and
        // names the estimate source (default build → catalog present).
        let pred_sum: f64 = report.ops.iter().filter_map(|o| o.predicted_seconds).sum();
        let meas_sum: f64 = report.ops.iter().map(|o| o.measured_seconds).sum();
        assert_eq!(report.totals.predicted_seconds, pred_sum);
        assert_eq!(report.totals.measured_seconds, meas_sum);
        assert!(report.totals.error_pct.is_some());
        assert!(text.contains("total: predicted"), "missing totals footer");
        assert_eq!(report.stats_source, StatsSource::Catalog);
        assert!(text.contains("estimates from catalog"));
        for row in &report.ops {
            assert_eq!(row.stats_source.is_some(), row.predicted_units.is_some());
        }
        // JSON round-trips through serde_json's parser.
        let json = report.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value["plan"].is_string());
        assert!(value["totals"]["predicted_seconds"].is_number());
        assert_eq!(value["stats_source"].as_str(), Some("catalog"));
        assert_eq!(value["ops"].as_array().unwrap().len(), report.ops.len());
        assert_eq!(
            value["estimates"].as_array().unwrap().len(),
            PlanKind::ALL.len()
        );
    }

    #[test]
    fn analyze_forced_plan_is_flagged() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Boston"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        let chosen = colarm
            .run(&crate::request::QueryRequest::query(&q).with_analyze(true))
            .unwrap()
            .analyze
            .expect("analyze report present")
            .plan;
        let other = PlanKind::ALL
            .into_iter()
            .find(|&p| p != chosen)
            .unwrap();
        let forced = colarm
            .run(
                &crate::request::QueryRequest::query(&q)
                    .with_plan(other)
                    .with_analyze(true),
            )
            .unwrap()
            .analyze
            .expect("analyze report present");
        assert_eq!(forced.plan, other);
        assert!(!forced.chosen_by_optimizer);
    }
}
