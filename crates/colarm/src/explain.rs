//! Structured `EXPLAIN` for localized mining queries: what the optimizer
//! saw, what it estimated, and why it chose the plan it chose. Rendered by
//! the CLI's `:explain` and available programmatically for tooling.

use crate::cost::CostEstimate;
use crate::framework::Colarm;
use crate::error::ColarmError;
use crate::plan::PlanKind;
use crate::query::LocalizedQuery;
use std::fmt;

/// The optimizer's full view of one query, before execution.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// `|DQ|`.
    pub subset_size: usize,
    /// `|DQ| / |D|`.
    pub subset_fraction: f64,
    /// Absolute local minimum support count.
    pub minsupp_count: usize,
    /// Number of prestored MIPs the index holds.
    pub num_mips: usize,
    /// All six estimates, cheapest first.
    pub estimates: Vec<CostEstimate>,
    /// The chosen plan.
    pub chosen: PlanKind,
}

impl Explanation {
    /// Ratio between the runner-up's and the winner's estimates — how
    /// confident the argmin decision is (1.0 = dead heat).
    pub fn decision_margin(&self) -> f64 {
        if self.estimates.len() < 2 {
            return f64::INFINITY;
        }
        let best = self.estimates[0].total();
        if best <= 0.0 {
            return f64::INFINITY;
        }
        self.estimates[1].total() / best
    }

    /// The estimate of a specific plan.
    pub fn estimate_for(&self, plan: PlanKind) -> &CostEstimate {
        self.estimates
            .iter()
            .find(|e| e.plan == plan)
            .expect("all plans estimated")
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "focal subset: {} records ({:.1}% of D); minsupp count {}; {} MIPs prestored",
            self.subset_size,
            self.subset_fraction * 100.0,
            self.minsupp_count,
            self.num_mips
        )?;
        writeln!(
            f,
            "decision margin: runner-up is estimated {:.2}x the winner",
            self.decision_margin()
        )?;
        for est in &self.estimates {
            let marker = if est.plan == self.chosen { "→" } else { " " };
            let terms: Vec<String> = est
                .terms
                .iter()
                .map(|(name, secs)| format!("{name} {secs:.2e}"))
                .collect();
            writeln!(
                f,
                "{marker} {:<10} {:.3e} s   [{}]",
                est.plan.name(),
                est.total(),
                terms.join(" + ")
            )?;
        }
        Ok(())
    }
}

/// Explain a query against a built system without executing it.
pub fn explain(colarm: &Colarm, query: &LocalizedQuery) -> Result<Explanation, ColarmError> {
    query.validate(colarm.index().dataset().schema())?;
    let subset = colarm.index().resolve_subset(query.range.clone())?;
    if subset.is_empty() {
        return Err(ColarmError::EmptySubset);
    }
    let choice = colarm.optimizer().choose(colarm.index(), query, &subset);
    Ok(Explanation {
        subset_size: subset.len(),
        subset_fraction: subset.fraction(),
        minsupp_count: query.minsupp_count(subset.len()),
        num_mips: colarm.index().num_mips(),
        chosen: choice.chosen,
        estimates: choice.estimates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn system() -> Colarm {
        Colarm::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn explanation_matches_execution() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.8)
            .build();
        let ex = explain(&colarm, &q).unwrap();
        assert_eq!(ex.subset_size, 4);
        assert_eq!(ex.estimates.len(), 6);
        assert!(ex.decision_margin() >= 1.0);
        let out = colarm.execute(&q).unwrap();
        assert_eq!(ex.chosen, out.answer.plan);
        // Render includes every plan name.
        let text = ex.to_string();
        for p in PlanKind::ALL {
            assert!(text.contains(p.name()), "missing {p} in explain output");
        }
    }

    #[test]
    fn explain_validates_inputs() {
        let colarm = system();
        let bad = LocalizedQuery::builder().minsupp(0.0).build();
        assert!(explain(&colarm, &bad).is_err());
    }
}
