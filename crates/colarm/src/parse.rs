//! Parser for the paper's localized-mining query language (§2.2):
//!
//! ```text
//! REPORT LOCALIZED ASSOCIATION RULES
//! FROM Dataset D
//! WHERE RANGE Location = (Seattle), Gender = (F)
//! [ AND ITEM ATTRIBUTES Age, Salary ]
//! HAVING minsupport = 0.75 AND minconfidence = 0.9;
//! ```
//!
//! The grammar is deliberately permissive about whitespace/case and maps
//! directly onto [`LocalizedQuery`]. Attribute and value names are resolved
//! against the schema; multi-value selections are comma-separated inside
//! parentheses. Thresholds accept fractions (`0.75`) or percentages
//! (`75%`).

use crate::error::ColarmError;
use crate::query::{LocalizedQuery, Semantics};
use colarm_data::{RangeSpec, Schema};

/// Parse a query-language string against a schema.
pub fn parse_query(text: &str, schema: &Schema) -> Result<LocalizedQuery, ColarmError> {
    let mut p = Parser::new(text);
    p.expect_keywords(&["REPORT", "LOCALIZED", "ASSOCIATION", "RULES"])?;
    if p.peek_keyword("FROM") {
        p.expect_keywords(&["FROM"])?;
        // Dataset name is informational; consume tokens until WHERE.
        while !p.peek_keyword("WHERE") && !p.at_end() {
            p.any_token()?;
        }
    }
    p.expect_keywords(&["WHERE", "RANGE"])?;
    let mut range = RangeSpec::all();
    loop {
        let attr = p.identifier("range attribute name")?;
        p.expect_symbol('=')?;
        let values = p.value_list()?;
        let value_refs: Vec<&str> = values.iter().map(String::as_str).collect();
        range = range
            .with_named(schema, &attr, &value_refs)
            .map_err(ColarmError::Data)?;
        if p.peek_symbol(',') {
            p.expect_symbol(',')?;
            continue;
        }
        break;
    }
    let mut item_attrs = None;
    if p.peek_keyword("AND") {
        let save = p.pos;
        p.expect_keywords(&["AND"])?;
        if p.peek_keyword("ITEM") {
            p.expect_keywords(&["ITEM", "ATTRIBUTES"])?;
            let mut attrs = Vec::new();
            loop {
                let name = p.identifier("item attribute name")?;
                attrs.push(schema.attribute_by_name(&name).map_err(ColarmError::Data)?);
                if p.peek_symbol(',') {
                    p.expect_symbol(',')?;
                    continue;
                }
                break;
            }
            item_attrs = Some(attrs);
        } else {
            p.pos = save; // the AND belonged to something else
        }
    }
    p.expect_keywords(&["HAVING", "MINSUPPORT"])?;
    p.expect_symbol('=')?;
    let minsupp = p.threshold()?;
    p.expect_keywords(&["AND", "MINCONFIDENCE"])?;
    p.expect_symbol('=')?;
    let minconf = p.threshold()?;
    if p.peek_symbol(';') {
        p.expect_symbol(';')?;
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after query"));
    }
    let query = LocalizedQuery {
        range,
        item_attrs,
        minsupp,
        minconf,
        semantics: Semantics::Strict,
    };
    query.validate(schema)?;
    Ok(query)
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ColarmError {
        ColarmError::QueryParse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.text.len() - trimmed.len();
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.text.len()
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        rest.len() >= kw.len()
            && rest[..kw.len()].eq_ignore_ascii_case(kw)
            && rest[kw.len()..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_')
    }

    fn expect_keywords(&mut self, kws: &[&str]) -> Result<(), ColarmError> {
        for kw in kws {
            if !self.peek_keyword(kw) {
                return Err(self.error(format!("expected keyword `{kw}`")));
            }
            self.pos += kw.len();
        }
        Ok(())
    }

    fn peek_symbol(&mut self, sym: char) -> bool {
        self.skip_ws();
        self.rest().starts_with(sym)
    }

    fn expect_symbol(&mut self, sym: char) -> Result<(), ColarmError> {
        if !self.peek_symbol(sym) {
            return Err(self.error(format!("expected `{sym}`")));
        }
        self.pos += sym.len_utf8();
        Ok(())
    }

    /// Next bare token (identifier-ish run), for skipping dataset names.
    fn any_token(&mut self) -> Result<&'a str, ColarmError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find(|c: char| c.is_whitespace())
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error("unexpected end of input"));
        }
        let tok = &rest[..end];
        self.pos += end;
        Ok(tok)
    }

    fn identifier(&mut self, what: &str) -> Result<String, ColarmError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error(format!("expected {what}")));
        }
        let ident = rest[..end].to_string();
        self.pos += end;
        Ok(ident)
    }

    /// `( v1, v2, … )` — values may contain anything except `,` and `)`.
    fn value_list(&mut self) -> Result<Vec<String>, ColarmError> {
        self.expect_symbol('(')?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let rest = self.rest();
            let end = rest
                .find([',', ')'])
                .ok_or_else(|| self.error("unterminated value list"))?;
            let value = rest[..end].trim();
            if value.is_empty() {
                return Err(self.error("empty value in value list"));
            }
            out.push(value.to_string());
            self.pos += end;
            if self.peek_symbol(',') {
                self.expect_symbol(',')?;
                continue;
            }
            self.expect_symbol(')')?;
            break;
        }
        Ok(out)
    }

    /// A fraction (`0.75`) or percentage (`75%`).
    fn threshold(&mut self) -> Result<f64, ColarmError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error("expected a threshold value"));
        }
        let raw: f64 = rest[..end]
            .parse()
            .map_err(|_| self.error(format!("invalid number `{}`", &rest[..end])))?;
        self.pos += end;
        if self.peek_symbol('%') {
            self.expect_symbol('%')?;
            Ok(raw / 100.0)
        } else {
            Ok(raw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary_schema;

    #[test]
    fn parses_the_paper_example_query() {
        let s = salary_schema();
        let q = parse_query(
            "REPORT LOCALIZED ASSOCIATION RULES \
             FROM Dataset salary \
             WHERE RANGE Location = (Seattle), Gender = (F) \
             AND ITEM ATTRIBUTES Age, Salary \
             HAVING minsupport = 0.75 AND minconfidence = 0.9;",
            &s,
        )
        .unwrap();
        assert_eq!(q.minsupp, 0.75);
        assert_eq!(q.minconf, 0.9);
        assert_eq!(q.range.num_constrained(), 2);
        let attrs = q.item_attrs.unwrap();
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn percentages_and_multi_values() {
        let s = salary_schema();
        let q = parse_query(
            "report localized association rules where range \
             Age = (20-30, 30-40) having minsupport = 80% and minconfidence = 85%",
            &s,
        )
        .unwrap();
        assert!((q.minsupp - 0.8).abs() < 1e-12);
        assert!((q.minconf - 0.85).abs() < 1e-12);
        let sel = q.range.selections();
        assert_eq!(sel.values().next().unwrap().len(), 2);
        assert!(q.item_attrs.is_none());
    }

    #[test]
    fn unknown_names_are_reported() {
        let s = salary_schema();
        let err = parse_query(
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Bogus = (x) \
             HAVING minsupport = 0.5 AND minconfidence = 0.5",
            &s,
        )
        .unwrap_err();
        assert!(matches!(err, ColarmError::Data(_)));
        let err = parse_query(
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (X) \
             HAVING minsupport = 0.5 AND minconfidence = 0.5",
            &s,
        )
        .unwrap_err();
        assert!(matches!(err, ColarmError::Data(_)));
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let s = salary_schema();
        let err = parse_query("REPORT LOCAL RULES", &s).unwrap_err();
        assert!(matches!(err, ColarmError::QueryParse { .. }));
        let err = parse_query(
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F \
             HAVING minsupport = 0.5 AND minconfidence = 0.5",
            &s,
        )
        .unwrap_err();
        assert!(matches!(err, ColarmError::QueryParse { .. }));
        let err = parse_query(
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
             HAVING minsupport = abc AND minconfidence = 0.5",
            &s,
        )
        .unwrap_err();
        assert!(matches!(err, ColarmError::QueryParse { .. }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let s = salary_schema();
        let err = parse_query(
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
             HAVING minsupport = 0.5 AND minconfidence = 0.5; SELECT *",
            &s,
        )
        .unwrap_err();
        assert!(matches!(err, ColarmError::QueryParse { .. }));
    }

    #[test]
    fn out_of_range_threshold_fails_validation() {
        let s = salary_schema();
        let err = parse_query(
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
             HAVING minsupport = 1.5 AND minconfidence = 0.5",
            &s,
        )
        .unwrap_err();
        assert!(matches!(err, ColarmError::InvalidThreshold { .. }));
    }
}
