//! The COLARM framework facade (paper Figure 2): offline preprocessing +
//! online query processing with cost-based plan selection, execution
//! feedback, and `EXPLAIN ANALYZE`.

use crate::cost::{CostConstants, CostModel, SelectReuse};
use crate::engine::QueryLimits;
use crate::error::ColarmError;
use crate::explain::{AnalyzeReport, AnalyzedAnswer};
use crate::mip::{MipIndex, MipIndexConfig};
use crate::ops::ExecOptions;
use crate::optimizer::{FeedbackLog, Optimizer, PlanChoice};
use crate::plan::{execute_plan, execute_plan_hooked, PlanKind, QueryAnswer};
use crate::query::LocalizedQuery;
use crate::request::{QueryOutcome, QueryRequest};
use crate::reuse::ColumnStore;
use colarm_data::{Dataset, FocalSubset};
use std::sync::Arc;

/// An optimizer-executed answer: the rules plus the plan decision that
/// produced them.
#[derive(Debug, Clone)]
pub struct OptimizedAnswer {
    /// The executed answer (rules, trace).
    pub answer: QueryAnswer,
    /// The optimizer's decision and all six estimates.
    pub choice: PlanChoice,
}

/// What one [`Colarm::run_inner`] execution produced, before it is shaped
/// for a caller: the answer, the optimizer's decision, and (for analyze
/// runs) the `EXPLAIN ANALYZE` report. Internal — public surfaces convert
/// it to [`QueryOutcome`] or the legacy answer types.
#[derive(Debug, Clone)]
pub(crate) struct RunOutput {
    pub(crate) answer: QueryAnswer,
    pub(crate) choice: PlanChoice,
    pub(crate) report: Option<AnalyzeReport>,
}

impl RunOutput {
    /// Shape for the unified API: decompose the answer, attach the
    /// requested extras.
    pub(crate) fn into_outcome(
        self,
        include_trace: bool,
        session: Option<crate::session::SessionStats>,
    ) -> QueryOutcome {
        QueryOutcome {
            plan: self.answer.plan,
            subset_size: self.answer.subset_size,
            rules: self.answer.rules,
            choice: Some(self.choice),
            trace: include_trace.then_some(self.answer.trace),
            analyze: self.report,
            session,
        }
    }

    /// Shape for the legacy execute* surface.
    pub(crate) fn into_optimized(self) -> OptimizedAnswer {
        OptimizedAnswer {
            answer: self.answer,
            choice: self.choice,
        }
    }

    /// Shape for the legacy explain_analyze* surface. Panics if the run
    /// was not an analyze run.
    pub(crate) fn into_analyzed(self) -> AnalyzedAnswer {
        AnalyzedAnswer {
            answer: self.answer,
            choice: self.choice,
            report: self.report.expect("analyze run carries a report"),
        }
    }
}

/// The COLARM system: a MIP-index, a calibrated cost-based optimizer, and
/// the execution feedback log that closes the loop between them.
#[derive(Debug)]
pub struct Colarm {
    index: MipIndex,
    optimizer: Optimizer,
    feedback: FeedbackLog,
}

impl Colarm {
    /// Offline phase: build the MIP-index and an optimizer seeded with the
    /// default cost constants. Call [`Colarm::calibrate`] to fit the
    /// constants to this machine.
    pub fn build(dataset: Dataset, config: MipIndexConfig) -> Result<Self, ColarmError> {
        let index = MipIndex::build(dataset, config)?;
        Ok(Colarm::from_index(index))
    }

    /// Wrap an already-built (e.g. snapshot-restored) MIP-index.
    pub fn from_index(index: MipIndex) -> Self {
        let model = CostModel {
            stats: index.stats().clone(),
            constants: CostConstants::default(),
        };
        Colarm {
            index,
            optimizer: Optimizer::new(model),
            feedback: FeedbackLog::default(),
        }
    }

    /// Move the system behind an [`Arc`] for sharing across owned
    /// sessions and threads (see [`crate::session::QuerySession`]).
    pub fn into_shared(self) -> Arc<Colarm> {
        Arc::new(self)
    }

    /// The underlying MIP-index.
    pub fn index(&self) -> &MipIndex {
        &self.index
    }

    /// The cost-based optimizer.
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The execution feedback log: every query executed through this
    /// system is recorded as `(query, per-plan predictions, chosen plan,
    /// actual cost)`.
    pub fn feedback(&self) -> &FeedbackLog {
        &self.feedback
    }

    /// Persist the MIP-index to a binary snapshot at `path` (streamed,
    /// checksummed, atomic temp-file + `rename`; see [`crate::persist`]).
    /// The snapshot's STATS section carries the statistics catalog and the
    /// effective fitted cost constants ([`Colarm::fitted_constants`]), so
    /// everything calibration has learned survives the restart. Returns
    /// the snapshot size in bytes.
    pub fn save_index_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<u64, ColarmError> {
        crate::persist::save_index_with_constants(&self.index, self.fitted_constants(), path)
    }

    /// Build a system from an index snapshot at `path` (binary or legacy
    /// JSON, auto-detected). A v3 snapshot restores the statistics catalog
    /// and the persisted fitted cost constants bit-exactly; older
    /// snapshots start from defaults (call [`Colarm::calibrate`] to fit
    /// this machine).
    pub fn load_index_snapshot(path: impl AsRef<std::path::Path>) -> Result<Colarm, ColarmError> {
        Self::load_index_snapshot_with(path, crate::persist::ValidationMode::Lazy)
    }

    /// [`Colarm::load_index_snapshot`] with an explicit
    /// [`ValidationMode`](crate::persist::ValidationMode) for v4 mapped
    /// snapshots: `Eager` checksums the whole file before returning,
    /// `Lazy` (the default) returns in milliseconds and lets the first
    /// query pay the checksum pass. Ignored for v1–v3 / legacy JSON
    /// snapshots, which always validate fully at load.
    pub fn load_index_snapshot_with(
        path: impl AsRef<std::path::Path>,
        mode: crate::persist::ValidationMode,
    ) -> Result<Colarm, ColarmError> {
        let (index, constants) = crate::persist::load_index_with_mode(path, mode)?;
        let mut colarm = Colarm::from_index(index);
        if let Some(constants) = constants {
            colarm.set_cost_constants(constants);
        }
        Ok(colarm)
    }

    /// The cost constants this system would persist: the current model
    /// constants, refined by a fit over the feedback log when it holds
    /// observations. The fit is deterministic, so a system that has not
    /// executed anything since its last calibration returns its current
    /// constants unchanged — which is what makes save → load → query
    /// round-trips bit-exact.
    pub fn fitted_constants(&self) -> CostConstants {
        let observations = self.feedback.observations();
        if observations.is_empty() {
            return self.optimizer.model().constants;
        }
        let borrowed: Vec<(&str, f64, f64)> =
            observations.iter().map(|&(n, u, t)| (n, u, t)).collect();
        let mut model = self.optimizer.model().clone();
        model.fit(&borrowed);
        model.constants
    }

    /// Overwrite the cost model's unit constants (restoring persisted
    /// calibration, or adopting another system's via
    /// [`Colarm::adopt_calibration`]).
    pub fn set_cost_constants(&mut self, constants: CostConstants) {
        self.optimizer.model_mut().constants = constants;
    }

    /// Carry calibration across an index reload: adopt the effective
    /// fitted constants of `previous` (its current constants refined by
    /// its feedback log), so a SIGHUP swap does not forget what the
    /// retiring generation learned.
    pub fn adopt_calibration(&mut self, previous: &Colarm) {
        self.set_cost_constants(previous.fitted_constants());
    }

    /// The single validation path every execution funnels through:
    /// thresholds and schema references checked, the focal subset
    /// resolved, and empty subsets rejected.
    pub fn prepare(&self, query: &LocalizedQuery) -> Result<FocalSubset, ColarmError> {
        query.validate(self.index.dataset().schema())?;
        let subset = self.index.resolve_subset(query.range.clone())?;
        if subset.is_empty() {
            return Err(ColarmError::EmptySubset);
        }
        Ok(subset)
    }

    /// Run one [`QueryRequest`] — **the** online entry point. Resolves
    /// the query (text or parsed fields), validates it, lets the
    /// optimizer pick a plan (or honours the request's override),
    /// executes under the request's limits, records feedback, and
    /// returns a [`QueryOutcome`] carrying whatever extras the request
    /// asked for. Canceled executions propagate
    /// [`ColarmError::Canceled`] and are never recorded in the feedback
    /// log (a truncated run would poison calibration).
    ///
    /// Every other execution surface — the deprecated method matrix
    /// ([`crate::compat`]), the CLI, the REPL, and the HTTP
    /// server — funnels through the same inner path, so answers are
    /// bit-identical across transports. Session-aware runs go through
    /// [`crate::QuerySession::run`], which adds cache reuse on that
    /// path.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryOutcome, ColarmError> {
        let query = request.resolve(self.index.dataset().schema())?;
        let subset = self.prepare(&query)?;
        let out = self.run_inner(
            &query,
            &subset,
            ExecOptions::default().with_metrics(request.metrics),
            &request.effective_limits(),
            None,
            SelectReuse::Fresh,
            request.plan,
            request.analyze,
        )?;
        Ok(out.into_outcome(request.trace, None))
    }

    /// Parse and run a query-language string — sugar for [`Colarm::run`]
    /// with [`QueryRequest::text`].
    pub fn run_text(&self, text: &str) -> Result<QueryOutcome, ColarmError> {
        self.run(&QueryRequest::text(text))
    }

    /// The single execution path every surface funnels through:
    /// reuse-aware plan choice, the Unrestricted→ARM coercion, the
    /// optional forced plan, hooked execution under limits, feedback
    /// recording, and (for analyze runs) the `EXPLAIN ANALYZE` report.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_inner(
        &self,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        opts: ExecOptions,
        limits: &QueryLimits,
        store: Option<&dyn ColumnStore>,
        reuse: SelectReuse,
        plan_override: Option<PlanKind>,
        analyze: bool,
    ) -> Result<RunOutput, ColarmError> {
        let mut choice = self
            .optimizer
            .choose_with_reuse(&self.index, query, subset, reuse);
        if query.semantics == crate::query::Semantics::Unrestricted {
            // Only the from-scratch plan can see below the primary
            // threshold; the optimizer's estimates stay informational.
            choice.chosen = PlanKind::Arm;
        }
        if let Some(plan) = plan_override {
            choice.chosen = plan;
        }
        let chosen_by_optimizer = choice.chosen == choice.estimates[0].plan;
        if !analyze {
            let answer = execute_plan_hooked(
                &self.index,
                query,
                subset,
                choice.chosen,
                opts,
                limits,
                store,
            )?;
            self.feedback.record(query, &choice, &answer, chosen_by_optimizer);
            return Ok(RunOutput {
                answer,
                choice,
                report: None,
            });
        }
        let pool_before = colarm_data::par::pool_stats();
        let answer = execute_plan_hooked(
            &self.index,
            query,
            subset,
            choice.chosen,
            opts.with_metrics(true),
            limits,
            store,
        )?;
        let pool = colarm_data::par::pool_stats().delta_since(&pool_before);
        self.feedback.record(query, &choice, &answer, chosen_by_optimizer);
        let report = AnalyzeReport::new(
            &answer,
            &choice,
            query.minsupp_count(subset.len()),
            chosen_by_optimizer,
            pool,
        );
        Ok(RunOutput {
            answer,
            choice,
            report: Some(report),
        })
    }

    /// Execute all six plans on one query (the §5.1 experiment shape).
    /// Returns answers in [`PlanKind::ALL`] order. Every execution lands
    /// in the feedback log, so a follow-up [`FeedbackLog::mispicks`] tells
    /// whether the optimizer's pick was actually fastest.
    pub fn execute_all_plans(
        &self,
        query: &LocalizedQuery,
    ) -> Result<Vec<QueryAnswer>, ColarmError> {
        let subset = self.prepare(query)?;
        let choice = self.optimizer.choose(&self.index, query, &subset);
        PlanKind::ALL
            .iter()
            .map(|&p| {
                let answer = execute_plan(&self.index, query, &subset, p)?;
                self.feedback
                    .record(query, &choice, &answer, p == choice.chosen);
                Ok(answer)
            })
            .collect()
    }

    /// Calibrate the cost model's unit constants by executing the sample
    /// queries with every plan and fitting constants from the observed
    /// per-operator traces. Queries whose subsets are empty are skipped.
    pub fn calibrate(&mut self, samples: &[LocalizedQuery]) -> Result<(), ColarmError> {
        let mut observations: Vec<(String, f64, f64)> = Vec::new();
        for query in samples {
            query.validate(self.index.dataset().schema())?;
            let subset = self.index.resolve_subset(query.range.clone())?;
            if subset.is_empty() {
                continue;
            }
            for plan in PlanKind::ALL {
                // The ARM plan re-mines from scratch; calibrating it on
                // large subsets would cost more than every query it later
                // informs. Small subsets fit its unit constant just as well.
                if plan == PlanKind::Arm && subset.len() * 10 > self.index.dataset().num_records()
                {
                    continue;
                }
                let answer = execute_plan(&self.index, query, &subset, plan)?;
                for op in &answer.trace.ops {
                    observations.push((
                        op.name().to_string(),
                        op.units,
                        op.duration.as_secs_f64(),
                    ));
                }
            }
        }
        let borrowed: Vec<(&str, f64, f64)> = observations
            .iter()
            .map(|(n, u, t)| (n.as_str(), *u, *t))
            .collect();
        self.optimizer.model_mut().fit(&borrowed);
        Ok(())
    }

    /// Re-fit the cost constants from the executions already recorded in
    /// the feedback log — calibration from real workload traffic instead
    /// of dedicated sample queries. Returns the number of per-operator
    /// observations consumed (0 = nothing recorded yet, constants
    /// untouched).
    pub fn calibrate_from_feedback(&mut self) -> usize {
        let observations = self.feedback.observations();
        if observations.is_empty() {
            return 0;
        }
        let borrowed: Vec<(&str, f64, f64)> = observations
            .iter()
            .map(|&(n, u, t)| (n, u, t))
            .collect();
        self.optimizer.model_mut().fit(&borrowed);
        observations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary;

    fn system() -> Colarm {
        Colarm::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_paper_walkthrough() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build()
            .unwrap();
        let out = colarm.run(&QueryRequest::query(&query)).unwrap();
        assert_eq!(out.subset_size, 4);
        // RL = (Age=30-40 → Salary=90K-120K) at 75% / 100%.
        let a1 = schema.encode_named("Age", "30-40").unwrap();
        let rl = out
            .rules
            .iter()
            .find(|r| r.antecedent.contains(a1))
            .expect("RL present");
        assert!((rl.support() - 0.75).abs() < 1e-12);
        assert!((rl.confidence() - 1.0).abs() < 1e-12);
        // The optimizer's decision covers all six plans.
        let choice = out.choice.as_ref().unwrap();
        assert_eq!(choice.estimates.len(), 6);
        assert_eq!(out.plan, choice.chosen);
    }

    #[test]
    fn text_interface_matches_builder_interface() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let via_text = colarm
            .run_text(
                "REPORT LOCALIZED ASSOCIATION RULES FROM Dataset salary \
                 WHERE RANGE Location = (Seattle), Gender = (F) \
                 HAVING minsupport = 75% AND minconfidence = 90%;",
            )
            .unwrap();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build()
            .unwrap();
        let via_builder = colarm.run(&QueryRequest::query(&query)).unwrap();
        assert_eq!(via_text.rules, via_builder.rules);
    }

    #[test]
    fn all_plans_agree_and_calibration_runs() {
        let mut colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Boston"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        let answers = colarm.execute_all_plans(&query).unwrap();
        assert_eq!(answers.len(), 6);
        for a in &answers[1..] {
            assert_eq!(a.rules, answers[0].rules, "{} diverged", a.plan);
        }
        colarm.calibrate(std::slice::from_ref(&query)).unwrap();
        // Constants were re-fitted and remain sane.
        let after = colarm.optimizer().model().constants;
        assert!(after.node > 0.0 && after.eliminate >= 0.0);
    }

    #[test]
    fn errors_propagate() {
        let colarm = system();
        assert!(matches!(
            colarm.run_text("DELETE EVERYTHING"),
            Err(ColarmError::QueryParse { .. })
        ));
        assert!(matches!(
            LocalizedQuery::builder().minconf(0.0).build(),
            Err(ColarmError::InvalidThreshold { .. })
        ));
        // Hand-built (non-builder) queries hit the same check in
        // `Colarm::prepare`.
        let bad = LocalizedQuery {
            range: colarm_data::RangeSpec::all(),
            item_attrs: None,
            minsupp: 0.5,
            minconf: 0.0,
            semantics: crate::query::Semantics::Strict,
        };
        assert!(matches!(
            colarm.run(&QueryRequest::query(&bad)),
            Err(ColarmError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn executions_land_in_the_feedback_log() {
        let mut colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        assert!(colarm.feedback().is_empty());
        colarm.run(&QueryRequest::query(&query)).unwrap();
        assert_eq!(colarm.feedback().len(), 1);
        let entry = &colarm.feedback().snapshot()[0];
        assert!(entry.chosen_by_optimizer);
        assert_eq!(entry.predicted.len(), PlanKind::ALL.len());
        assert!(entry.total_units() > 0.0);
        // Forced-plan runs are recorded too, flagged by whether they match
        // the optimizer's pick.
        let chosen = entry.chosen;
        let other = PlanKind::ALL.into_iter().find(|&p| p != chosen).unwrap();
        colarm
            .run(&QueryRequest::query(&query).with_plan(other))
            .unwrap();
        assert_eq!(colarm.feedback().len(), 2);
        assert!(!colarm.feedback().snapshot()[1].chosen_by_optimizer);
        // Real-traffic calibration consumes the recorded observations.
        let consumed = colarm.calibrate_from_feedback();
        assert!(consumed > 0);
        let after = colarm.optimizer().model().constants;
        assert!(after.node > 0.0 && after.eliminate >= 0.0);
    }

    #[test]
    fn feedback_total_units_match_trace_accounting() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Boston"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        let out = colarm
            .run(&QueryRequest::query(&query).with_trace(true))
            .unwrap();
        let entry = &colarm.feedback().snapshot()[0];
        assert_eq!(entry.total_units(), out.trace.unwrap().total_units());
    }

    #[test]
    fn shared_system_executes_from_plain_threads() {
        let colarm = system().into_shared();
        let schema = colarm.index().dataset().schema().clone();
        let handles: Vec<_> = ["Seattle", "Boston"]
            .into_iter()
            .map(|loc| {
                let colarm = colarm.clone();
                let schema = schema.clone();
                std::thread::spawn(move || {
                    let q = LocalizedQuery::builder()
                        .range_named(&schema, "Location", &[loc])
                        .unwrap()
                        .minsupp(0.5)
                        .minconf(0.7)
                        .build()
                        .unwrap();
                    colarm.run(&QueryRequest::query(&q)).unwrap().rules.len()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(colarm.feedback().len(), 2);
    }
}
