//! The COLARM framework facade (paper Figure 2): offline preprocessing +
//! online query processing with cost-based plan selection.

use crate::cost::{CostConstants, CostModel};
use crate::error::ColarmError;
use crate::mip::{MipIndex, MipIndexConfig};
use crate::optimizer::{Optimizer, PlanChoice};
use crate::parse::parse_query;
use crate::plan::{execute_plan, PlanKind, QueryAnswer};
use crate::query::LocalizedQuery;
use colarm_data::Dataset;

/// An optimizer-executed answer: the rules plus the plan decision that
/// produced them.
#[derive(Debug, Clone)]
pub struct OptimizedAnswer {
    /// The executed answer (rules, trace).
    pub answer: QueryAnswer,
    /// The optimizer's decision and all six estimates.
    pub choice: PlanChoice,
}

/// The COLARM system: a MIP-index plus a calibrated cost-based optimizer.
#[derive(Debug)]
pub struct Colarm {
    index: MipIndex,
    optimizer: Optimizer,
}

impl Colarm {
    /// Offline phase: build the MIP-index and an optimizer seeded with the
    /// default cost constants. Call [`Colarm::calibrate`] to fit the
    /// constants to this machine.
    pub fn build(dataset: Dataset, config: MipIndexConfig) -> Result<Self, ColarmError> {
        let index = MipIndex::build(dataset, config)?;
        let model = CostModel {
            stats: index.stats().clone(),
            constants: CostConstants::default(),
        };
        Ok(Colarm {
            index,
            optimizer: Optimizer::new(model),
        })
    }

    /// Wrap an already-built (e.g. snapshot-restored) MIP-index.
    pub fn from_index(index: MipIndex) -> Self {
        let model = CostModel {
            stats: index.stats().clone(),
            constants: CostConstants::default(),
        };
        Colarm {
            index,
            optimizer: Optimizer::new(model),
        }
    }

    /// The underlying MIP-index.
    pub fn index(&self) -> &MipIndex {
        &self.index
    }

    /// The cost-based optimizer.
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// Online phase: pick the cheapest plan and execute it.
    pub fn execute(&self, query: &LocalizedQuery) -> Result<OptimizedAnswer, ColarmError> {
        query.validate(self.index.dataset().schema())?;
        let subset = self.index.resolve_subset(query.range.clone())?;
        if subset.is_empty() {
            return Err(ColarmError::EmptySubset);
        }
        let mut choice = self.optimizer.choose(&self.index, query, &subset);
        if query.semantics == crate::query::Semantics::Unrestricted {
            // Only the from-scratch plan can see below the primary
            // threshold; the optimizer's estimates stay informational.
            choice.chosen = PlanKind::Arm;
        }
        let answer = execute_plan(&self.index, query, &subset, choice.chosen)?;
        Ok(OptimizedAnswer { answer, choice })
    }

    /// Execute a specific plan (experiments, ablations).
    pub fn execute_with_plan(
        &self,
        query: &LocalizedQuery,
        plan: PlanKind,
    ) -> Result<QueryAnswer, ColarmError> {
        let subset = self.index.resolve_subset(query.range.clone())?;
        execute_plan(&self.index, query, &subset, plan)
    }

    /// Execute all six plans on one query (the §5.1 experiment shape).
    /// Returns answers in [`PlanKind::ALL`] order.
    pub fn execute_all_plans(
        &self,
        query: &LocalizedQuery,
    ) -> Result<Vec<QueryAnswer>, ColarmError> {
        let subset = self.index.resolve_subset(query.range.clone())?;
        PlanKind::ALL
            .iter()
            .map(|&p| execute_plan(&self.index, query, &subset, p))
            .collect()
    }

    /// Parse and execute a query-language string.
    pub fn execute_text(&self, text: &str) -> Result<OptimizedAnswer, ColarmError> {
        let query = parse_query(text, self.index.dataset().schema())?;
        self.execute(&query)
    }

    /// Calibrate the cost model's unit constants by executing the sample
    /// queries with every plan and fitting constants from the observed
    /// per-operator traces. Queries whose subsets are empty are skipped.
    pub fn calibrate(&mut self, samples: &[LocalizedQuery]) -> Result<(), ColarmError> {
        let mut observations: Vec<(String, f64, f64)> = Vec::new();
        for query in samples {
            query.validate(self.index.dataset().schema())?;
            let subset = self.index.resolve_subset(query.range.clone())?;
            if subset.is_empty() {
                continue;
            }
            for plan in PlanKind::ALL {
                // The ARM plan re-mines from scratch; calibrating it on
                // large subsets would cost more than every query it later
                // informs. Small subsets fit its unit constant just as well.
                if plan == PlanKind::Arm && subset.len() * 10 > self.index.dataset().num_records()
                {
                    continue;
                }
                let answer = execute_plan(&self.index, query, &subset, plan)?;
                for op in &answer.trace.ops {
                    observations.push((
                        op.name.to_string(),
                        op.units,
                        op.duration.as_secs_f64(),
                    ));
                }
            }
        }
        let borrowed: Vec<(&str, f64, f64)> = observations
            .iter()
            .map(|(n, u, t)| (n.as_str(), *u, *t))
            .collect();
        self.optimizer.model_mut().fit(&borrowed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary;

    fn system() -> Colarm {
        Colarm::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_paper_walkthrough() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build();
        let out = colarm.execute(&query).unwrap();
        assert_eq!(out.answer.subset_size, 4);
        // RL = (Age=30-40 → Salary=90K-120K) at 75% / 100%.
        let a1 = schema.encode_named("Age", "30-40").unwrap();
        let rl = out
            .answer
            .rules
            .iter()
            .find(|r| r.antecedent.contains(a1))
            .expect("RL present");
        assert!((rl.support() - 0.75).abs() < 1e-12);
        assert!((rl.confidence() - 1.0).abs() < 1e-12);
        // The optimizer's decision covers all six plans.
        assert_eq!(out.choice.estimates.len(), 6);
        assert_eq!(out.answer.plan, out.choice.chosen);
    }

    #[test]
    fn text_interface_matches_builder_interface() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let via_text = colarm
            .execute_text(
                "REPORT LOCALIZED ASSOCIATION RULES FROM Dataset salary \
                 WHERE RANGE Location = (Seattle), Gender = (F) \
                 HAVING minsupport = 75% AND minconfidence = 90%;",
            )
            .unwrap();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build();
        let via_builder = colarm.execute(&query).unwrap();
        assert_eq!(via_text.answer.rules, via_builder.answer.rules);
    }

    #[test]
    fn all_plans_agree_and_calibration_runs() {
        let mut colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Boston"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build();
        let answers = colarm.execute_all_plans(&query).unwrap();
        assert_eq!(answers.len(), 6);
        for a in &answers[1..] {
            assert_eq!(a.rules, answers[0].rules, "{} diverged", a.plan);
        }
        colarm.calibrate(std::slice::from_ref(&query)).unwrap();
        // Constants were re-fitted and remain sane.
        let after = colarm.optimizer().model().constants;
        assert!(after.node > 0.0 && after.eliminate >= 0.0);
    }

    #[test]
    fn errors_propagate() {
        let colarm = system();
        assert!(matches!(
            colarm.execute_text("DELETE EVERYTHING"),
            Err(ColarmError::QueryParse { .. })
        ));
        let bad = LocalizedQuery::builder().minconf(0.0).build();
        assert!(matches!(
            colarm.execute(&bad),
            Err(ColarmError::InvalidThreshold { .. })
        ));
    }
}
