//! The six alternative mining plans (paper §4, Table 4) and their executor.
//!
//! | Plan      | Optimization                                            |
//! |-----------|---------------------------------------------------------|
//! | S-E-V     | basic SEARCH + ELIMINATE + VERIFY pipeline              |
//! | S-VS      | selection push-up (ELIMINATE merged into VERIFY)        |
//! | SS-E-V    | supported R-tree filter                                 |
//! | SS-VS     | supported filter + selection push-up                    |
//! | SS-E-U-V  | supported filter + differential contained/partial MIPs  |
//! | ARM       | traditional from-scratch mining over the focal subset   |
//!
//! All plans return the **same** rule set under strict semantics; they
//! differ only in execution cost. Plan equivalence is enforced by the
//! integration and property tests.

use crate::engine::{self, QueryLimits};
use crate::error::ColarmError;
use crate::mip::MipIndex;
use crate::ops::{ExecOptions, OpKind, OpTrace};
use crate::query::LocalizedQuery;
use colarm_data::FocalSubset;
use colarm_mine::rules::Rule;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One of the six mining plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanKind {
    /// Basic SEARCH → ELIMINATE → VERIFY.
    Sev,
    /// SEARCH → SUPPORTED-VERIFY (selection push-up).
    Svs,
    /// SUPPORTED-SEARCH → ELIMINATE → VERIFY.
    SsEv,
    /// SUPPORTED-SEARCH → SUPPORTED-VERIFY.
    SsVs,
    /// SUPPORTED-SEARCH → ELIMINATE (partial only) → UNION → VERIFY.
    SsEuv,
    /// SELECT → traditional ARM over the subset.
    Arm,
}

impl PlanKind {
    /// All six plans, in the paper's Table 4 order.
    pub const ALL: [PlanKind; 6] = [
        PlanKind::Sev,
        PlanKind::Svs,
        PlanKind::SsEv,
        PlanKind::SsVs,
        PlanKind::SsEuv,
        PlanKind::Arm,
    ];

    /// Short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::Sev => "S-E-V",
            PlanKind::Svs => "S-VS",
            PlanKind::SsEv => "SS-E-V",
            PlanKind::SsVs => "SS-VS",
            PlanKind::SsEuv => "SS-E-U-V",
            PlanKind::Arm => "ARM",
        }
    }

    /// The optimization the plan embodies (paper Table 4's middle column).
    pub fn optimization(self) -> &'static str {
        match self {
            PlanKind::Sev => "Basic SEARCH+ELIMINATE+VERIFY plan",
            PlanKind::Svs => "Selection push-up",
            PlanKind::SsEv => "Supported R-tree filter",
            PlanKind::SsVs => "Supported R-tree filter + selection push-up",
            PlanKind::SsEuv => {
                "Supported R-tree filter + differential treatment of containment and overlap"
            }
            PlanKind::Arm => "Traditional rule mining over focal subset",
        }
    }

    /// The cost formula of paper Table 4's last column.
    pub fn cost_formula(self) -> &'static str {
        match self {
            PlanKind::Sev => "COST(S) + COST(E) + COST(V)",
            PlanKind::Svs => "COST(S) + COST(VS)",
            PlanKind::SsEv => "COST(SS) + COST(E) + COST(V)",
            PlanKind::SsVs => "COST(SS) + COST(VS)",
            PlanKind::SsEuv => "COST(SS) + COST(E) + COST(U) + COST(V)",
            PlanKind::Arm => "COST(σ) + COST(εAR)",
        }
    }
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-operator instrumentation of one plan execution. Part of the
/// server wire format (`QueryOutcome::trace`), so the field names are
/// wire-stable.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Operator traces in pipeline order.
    pub ops: Vec<OpTrace>,
    /// Total wall-clock time.
    pub total: Duration,
}

impl ExecutionTrace {
    /// The trace of the named operator, if it ran. Resolves through each
    /// trace's typed [`OpKind`] (`o.name()`), so lookups stay robust to
    /// how the trace was produced.
    pub fn op(&self, name: &str) -> Option<&OpTrace> {
        self.ops.iter().find(|o| o.name() == name)
    }

    /// The trace of the given operator kind, if it ran — the typed
    /// counterpart of [`ExecutionTrace::op`].
    pub fn op_kind(&self, kind: OpKind) -> Option<&OpTrace> {
        self.ops.iter().find(|o| o.kind == kind)
    }

    /// Total raw cost units across all operators — the quantity the
    /// optimizer's actual-units accounting sums for calibration. Exact
    /// (integer-valued f64 additions) and thread-count-independent.
    pub fn total_units(&self) -> f64 {
        self.ops.iter().map(|o| o.units).sum()
    }

    /// Fieldwise sum of the per-operator execution counters. Zero when the
    /// plan ran with metrics reporting disabled.
    pub fn metrics_total(&self) -> colarm_data::metrics::OpMetrics {
        colarm_data::metrics::OpMetrics::fold(self.ops.iter().filter_map(|o| o.metrics.as_ref()))
    }
}

/// The answer to a localized mining query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// The plan that produced the answer.
    pub plan: PlanKind,
    /// The localized rules, sorted by (antecedent, consequent).
    pub rules: Vec<Rule>,
    /// `|DQ|`.
    pub subset_size: usize,
    /// Per-operator instrumentation.
    pub trace: ExecutionTrace,
}

/// Execute one plan over a resolved focal subset with default execution
/// options (threads = session default; see [`ExecOptions`]).
pub fn execute_plan(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
) -> Result<QueryAnswer, ColarmError> {
    execute_plan_with(index, query, subset, plan, ExecOptions::default())
}

/// Execute one plan over a resolved focal subset. The answer — rules,
/// ordering, per-operator units — is bit-identical at every `opts.threads`
/// setting; only durations vary.
///
/// Every plan runs through the operator engine ([`crate::engine`]): this
/// is a thin wrapper applying no limits (no deadline, no budget, no
/// cancellation). Use [`execute_plan_limited`] to bound the execution.
pub fn execute_plan_with(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
    opts: ExecOptions,
) -> Result<QueryAnswer, ColarmError> {
    engine::execute(index, query, subset, plan, opts, &QueryLimits::none())
}

/// [`execute_plan_with`] under explicit [`QueryLimits`]: a deadline, cost
/// budget, or armed cancel token stops the run at the next batch boundary
/// with [`ColarmError::Canceled`].
pub fn execute_plan_limited(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
    opts: ExecOptions,
    limits: &QueryLimits,
) -> Result<QueryAnswer, ColarmError> {
    engine::execute(index, query, subset, plan, opts, limits)
}

/// [`execute_plan_limited`] with an optional session `ColumnStore`
/// hooked into the ARM plan's SELECT (cross-query drill-down reuse).
/// Rules, trace kinds, and units stay bit-identical to the storeless
/// path — only durations and cache-revealing metric counters differ.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_hooked(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
    opts: ExecOptions,
    limits: &QueryLimits,
    store: Option<&dyn crate::reuse::ColumnStore>,
) -> Result<QueryAnswer, ColarmError> {
    engine::execute_with_store(index, query, subset, plan, opts, limits, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn setup() -> (MipIndex, LocalizedQuery) {
        let index = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let schema = index.dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build().unwrap();
        (index, query)
    }

    #[test]
    fn all_six_plans_agree_on_the_paper_query() {
        let (index, query) = setup();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        let answers: Vec<QueryAnswer> = PlanKind::ALL
            .iter()
            .map(|&p| execute_plan(&index, &query, &subset, p).unwrap())
            .collect();
        let reference = &answers[0].rules;
        assert!(!reference.is_empty(), "the paper query yields rules");
        for a in &answers[1..] {
            assert_eq!(&a.rules, reference, "plan {} diverged", a.plan);
        }
    }

    #[test]
    fn plan_metadata_is_table_4() {
        assert_eq!(PlanKind::ALL.len(), 6);
        for p in PlanKind::ALL {
            assert!(!p.name().is_empty());
            assert!(!p.optimization().is_empty());
            assert!(p.cost_formula().starts_with("COST("));
        }
        assert_eq!(PlanKind::SsEuv.name(), "SS-E-U-V");
        assert_eq!(PlanKind::SsEuv.to_string(), "SS-E-U-V");
    }

    #[test]
    fn traces_record_the_pipeline_shape() {
        let (index, query) = setup();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        let a = execute_plan(&index, &query, &subset, PlanKind::SsEuv).unwrap();
        let names: Vec<&str> = a.trace.ops.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            ["SUPPORTED-SEARCH", "CLASSIFY", "ELIMINATE", "UNION", "VERIFY"]
        );
        assert!(a.trace.op("UNION").is_some());
        assert!(a.trace.total >= a.trace.ops.iter().map(|o| o.duration).sum());
    }

    #[test]
    fn empty_subset_is_an_error() {
        let (index, _) = setup();
        let schema = index.dataset().schema().clone();
        // SFO women between 30 and 40: no such record.
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["SFO"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .range_named(&schema, "Age", &["30-40"])
            .unwrap()
            .build().unwrap();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        assert!(matches!(
            execute_plan(&index, &query, &subset, PlanKind::Sev),
            Err(ColarmError::EmptySubset)
        ));
    }

    #[test]
    fn invalid_query_rejected_before_execution() {
        let (index, _) = setup();
        // The builder refuses this threshold, so hand-build the query to
        // prove execute_plan validates even adversarial inputs.
        let query = LocalizedQuery {
            range: colarm_data::RangeSpec::all(),
            item_attrs: None,
            minsupp: 2.0,
            minconf: 0.9,
            semantics: crate::query::Semantics::Strict,
        };
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        assert!(matches!(
            execute_plan(&index, &query, &subset, PlanKind::Sev),
            Err(ColarmError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn rules_are_sorted_deterministically() {
        let (index, _) = setup();
        let schema = index.dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Boston"])
            .unwrap()
            .minsupp(0.4)
            .minconf(0.6)
            .build().unwrap();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        let a = execute_plan(&index, &query, &subset, PlanKind::SsVs).unwrap();
        for w in a.rules.windows(2) {
            assert!(
                (&w[0].antecedent, &w[0].consequent) <= (&w[1].antecedent, &w[1].consequent)
            );
        }
    }
}
