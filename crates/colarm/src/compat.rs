//! The deprecated pre-[`QueryRequest`] execution surface, kept as thin
//! forwarders onto the unified path.
//!
//! Before the API redesign, [`Colarm`] exposed a matrix of entry points —
//! `execute` × {plain, `_limited`, `_on_subset`, `_on_subset_limited`,
//! `_on_subset_hooked`} plus the mirror `explain_analyze*` family — one
//! method per combination of subset handling, limits, and session hooks.
//! [`Colarm::run`] (and [`crate::QuerySession::run`]) with a
//! [`QueryRequest`] replaces all of them: the request says what to do,
//! one method does it.
//!
//! | Deprecated | Replacement |
//! |---|---|
//! | `execute`, `execute_limited` | `run(&QueryRequest::query(q))`, `.with_limits(…)` |
//! | `execute_on_subset*`, `execute_on_subset_hooked` | `QuerySession::run` (cached subsets + hooks) |
//! | `execute_with_plan` | `run(&…​.with_plan(p))` |
//! | `execute_text` | `run_text` / `run(&QueryRequest::text(…))` |
//! | `explain_analyze*` | `run(&…​.with_analyze(true))` |
//!
//! Every forwarder routes through the same `run_inner` path as `run`, so
//! answers stay bit-identical; only the calling convention is legacy.
//! This module is the **only** place in the workspace allowed to mention
//! the deprecated names (`scripts/ci.sh` builds the rest with
//! `-D deprecated`).
#![allow(deprecated)]

use crate::cost::{SelectReuse, SelectReuse::Fresh};
use crate::engine::QueryLimits;
use crate::error::ColarmError;
use crate::explain::AnalyzedAnswer;
use crate::framework::{Colarm, OptimizedAnswer};
use crate::ops::ExecOptions;
use crate::plan::{PlanKind, QueryAnswer};
use crate::query::LocalizedQuery;
use crate::request::QueryRequest;
use crate::reuse::ColumnStore;
use colarm_data::FocalSubset;

impl Colarm {
    /// Online phase: pick the cheapest plan and execute it.
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn execute(&self, query: &LocalizedQuery) -> Result<OptimizedAnswer, ColarmError> {
        self.execute_limited(query, &QueryLimits::none())
    }

    /// [`Colarm::execute`] under explicit [`QueryLimits`].
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn execute_limited(
        &self,
        query: &LocalizedQuery,
        limits: &QueryLimits,
    ) -> Result<OptimizedAnswer, ColarmError> {
        let subset = self.prepare(query)?;
        self.execute_on_subset_limited(query, &subset, ExecOptions::default(), limits)
    }

    /// [`Colarm::execute`] against an already-resolved subset with
    /// explicit execution options. The subset must come from this
    /// system's [`Colarm::prepare`].
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn execute_on_subset(
        &self,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        opts: ExecOptions,
    ) -> Result<OptimizedAnswer, ColarmError> {
        self.execute_on_subset_limited(query, subset, opts, &QueryLimits::none())
    }

    /// [`Colarm::execute_on_subset`] under explicit [`QueryLimits`].
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn execute_on_subset_limited(
        &self,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        opts: ExecOptions,
        limits: &QueryLimits,
    ) -> Result<OptimizedAnswer, ColarmError> {
        self.execute_on_subset_hooked(query, subset, opts, limits, None, Fresh)
    }

    /// [`Colarm::execute_on_subset_limited`] with the session hooks.
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn execute_on_subset_hooked(
        &self,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        opts: ExecOptions,
        limits: &QueryLimits,
        store: Option<&dyn ColumnStore>,
        reuse: SelectReuse,
    ) -> Result<OptimizedAnswer, ColarmError> {
        self.run_inner(query, subset, opts, limits, store, reuse, None, false)
            .map(crate::framework::RunOutput::into_optimized)
    }

    /// Execute a specific plan (experiments, ablations).
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn execute_with_plan(
        &self,
        query: &LocalizedQuery,
        plan: PlanKind,
    ) -> Result<QueryAnswer, ColarmError> {
        let subset = self.prepare(query)?;
        let opts = ExecOptions::default();
        let limits = QueryLimits::none();
        self.run_inner(query, &subset, opts, &limits, None, Fresh, Some(plan), false)
            .map(|out| out.answer)
    }

    /// Parse and execute a query-language string.
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn execute_text(&self, text: &str) -> Result<OptimizedAnswer, ColarmError> {
        let request = QueryRequest::text(text);
        let query = request.resolve(self.index().dataset().schema())?;
        let subset = self.prepare(&query)?;
        let opts = ExecOptions::default();
        let limits = QueryLimits::none();
        self.run_inner(&query, &subset, opts, &limits, None, Fresh, None, false)
            .map(crate::framework::RunOutput::into_optimized)
    }

    /// `EXPLAIN ANALYZE` the optimizer's chosen plan.
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn explain_analyze(&self, query: &LocalizedQuery) -> Result<AnalyzedAnswer, ColarmError> {
        self.explain_analyze_with(query, ExecOptions::default())
    }

    /// [`Colarm::explain_analyze`] with explicit execution options
    /// (metrics reporting is forced on regardless of `opts.metrics`).
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn explain_analyze_with(
        &self,
        query: &LocalizedQuery,
        opts: ExecOptions,
    ) -> Result<AnalyzedAnswer, ColarmError> {
        let subset = self.prepare(query)?;
        self.explain_analyze_on_subset(query, &subset, opts)
    }

    /// [`Colarm::explain_analyze_with`] against an already-resolved
    /// subset. The subset must come from this system's
    /// [`Colarm::prepare`].
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn explain_analyze_on_subset(
        &self,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        opts: ExecOptions,
    ) -> Result<AnalyzedAnswer, ColarmError> {
        self.explain_analyze_on_subset_limited(query, subset, opts, &QueryLimits::none())
    }

    /// [`Colarm::explain_analyze_on_subset`] under explicit
    /// [`QueryLimits`].
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn explain_analyze_on_subset_limited(
        &self,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        opts: ExecOptions,
        limits: &QueryLimits,
    ) -> Result<AnalyzedAnswer, ColarmError> {
        self.explain_analyze_on_subset_hooked(query, subset, opts, limits, None, Fresh)
    }

    /// [`Colarm::explain_analyze_on_subset_limited`] with the session
    /// hooks.
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn explain_analyze_on_subset_hooked(
        &self,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        opts: ExecOptions,
        limits: &QueryLimits,
        store: Option<&dyn ColumnStore>,
        reuse: SelectReuse,
    ) -> Result<AnalyzedAnswer, ColarmError> {
        self.run_inner(query, subset, opts, limits, store, reuse, None, true)
            .map(crate::framework::RunOutput::into_analyzed)
    }

    /// `EXPLAIN ANALYZE` for a specific (possibly non-optimal) plan.
    #[deprecated(since = "0.2.0", note = "use Colarm::run / QuerySession::run with a QueryRequest")]
    pub fn explain_analyze_plan(
        &self,
        query: &LocalizedQuery,
        plan: PlanKind,
        opts: ExecOptions,
    ) -> Result<AnalyzedAnswer, ColarmError> {
        let subset = self.prepare(query)?;
        let limits = QueryLimits::none();
        self.run_inner(query, &subset, opts, &limits, None, Fresh, Some(plan), true)
            .map(crate::framework::RunOutput::into_analyzed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn system() -> Colarm {
        Colarm::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap()
    }

    /// The forwarders stay bit-identical to the unified path they wrap.
    #[test]
    fn forwarders_match_the_unified_path() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        let legacy = colarm.execute(&query).unwrap();
        let unified = colarm.run(&QueryRequest::query(&query)).unwrap();
        assert_eq!(legacy.answer.rules, unified.rules);
        assert_eq!(legacy.answer.plan, unified.plan);
        assert_eq!(
            legacy.choice.chosen,
            unified.choice.as_ref().unwrap().chosen
        );

        let legacy_text = colarm
            .execute_text(
                "REPORT LOCALIZED ASSOCIATION RULES FROM Dataset salary \
                 WHERE RANGE Location = (Seattle) \
                 HAVING minsupport = 50% AND minconfidence = 70%;",
            )
            .unwrap();
        assert_eq!(legacy_text.answer.rules, unified.rules);

        for plan in PlanKind::ALL {
            let forced = colarm.execute_with_plan(&query, plan).unwrap();
            let via_run = colarm
                .run(&QueryRequest::query(&query).with_plan(plan))
                .unwrap();
            assert_eq!(forced.rules, via_run.rules, "{plan} diverged");
        }

        let analyzed = colarm.explain_analyze(&query).unwrap();
        let via_run = colarm
            .run(&QueryRequest::query(&query).with_analyze(true))
            .unwrap();
        let report = via_run.analyze.expect("analyze report present");
        assert_eq!(analyzed.report.plan, report.plan);
        assert_eq!(analyzed.report.num_rules, report.num_rules);
        assert_eq!(analyzed.answer.rules, via_run.rules);
    }
}
