//! A small deterministic LRU map backing the session caches.
//!
//! Recency is tracked with a monotonic stamp per entry (bumped on every
//! hit), so the eviction victim — the minimum stamp — is a pure function
//! of the operation sequence: no wall-clock, no hasher iteration order.
//! Eviction scans all entries (O(n)), which is the right trade at session
//! cache sizes (tens to hundreds of entries) and keeps the structure a
//! single `HashMap` with no intrusive list to maintain.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map evicting the least-recently-used entry on overflow.
///
/// `capacity == 0` disables the cache entirely: inserts are dropped and
/// lookups always miss (the knob sessions use to turn caching off).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
    capacity: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            tick: 0,
            capacity,
            evictions: 0,
        }
    }

    /// Maximum number of retained entries (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted over the cache's lifetime (survives
    /// [`LruCache::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = tick;
                Some(value)
            }
            None => None,
        }
    }

    /// Insert (or replace) an entry, evicting the least-recently-used
    /// entry first when at capacity. No-op when the cache is disabled.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Victim = minimum stamp; stamps are unique (monotonic tick),
            // so the choice is deterministic.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Visit every entry with its recency stamp, without refreshing
    /// recency. Iteration order is the backing map's (NOT deterministic);
    /// callers scanning for a "best" entry must pick by a total order —
    /// stamps are unique, so `(score, stamp)` works as one.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V, u64)> {
        self.map.iter().map(|(k, (v, stamp))| (k, v, *stamp))
    }

    /// Drop every entry (the lifetime eviction counter is preserved).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_deterministically() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c"); // evicts 1
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(&"b"));
        // 2 is now the most recent; inserting 4 evicts 3.
        c.insert(4, "d");
        assert!(c.get(&3).is_none());
        assert_eq!(c.get(&2), Some(&"b"));
        assert_eq!(c.get(&4), Some(&"d"));
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 2 becomes the LRU entry
        c.insert(3, 30);
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&10));
    }

    #[test]
    fn replacing_an_existing_key_never_evicts() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn iter_exposes_unique_stamps_without_refreshing() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        let mut stamps: Vec<u64> = c.iter().map(|(_, _, s)| s).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 3, "stamps are unique");
        // Scanning must not count as a use: 1 is still the LRU victim.
        let best = c.iter().min_by_key(|&(_, _, s)| s).map(|(k, _, _)| *k);
        assert_eq!(best, Some(1));
        c.insert(4, 40);
        c.insert(5, 50);
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn clear_keeps_the_lifetime_eviction_counter() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.evictions(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 1);
        c.insert(3, 30);
        assert_eq!(c.get(&3), Some(&30));
    }
}
