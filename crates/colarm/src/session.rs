//! Multi-query sessions — the paper's future-work item (b): "multi-query
//! optimization in the context of localized association rule mining" (§7).
//!
//! Interactive exploration issues bursts of related queries: the analyst
//! drills into one region with varying thresholds, or sweeps neighbouring
//! regions. A [`QuerySession`] amortizes that workload two ways:
//!
//! * **subset reuse** — resolved focal subsets (`DQ` tidsets) are cached
//!   per range spec, so threshold-only refinements skip the SELECT work;
//! * **answer reuse** — full answers are cached per (range, item
//!   attributes, thresholds, semantics), so repeated questions are free.
//!
//! Both caches are **bounded** ([`SessionConfig`]) with deterministic
//! least-recently-used eviction ([`crate::lru::LruCache`]), so a
//! long-lived session's memory stays proportional to its working set, not
//! its history. Sessions **own** their system behind an
//! [`Arc<Colarm>`] — `Send + Sync + 'static` — so they move freely into
//! worker threads and async tasks; clones of the `Arc` can serve multiple
//! sessions at once.

use crate::cost::SelectReuse;
use crate::engine::{CancelToken, QueryLimits};
use crate::error::ColarmError;
use crate::explain::AnalyzedAnswer;
use crate::framework::Colarm;
use crate::lru::LruCache;
use crate::ops::ExecOptions;
use crate::plan::{PlanKind, QueryAnswer};
use crate::query::{LocalizedQuery, Semantics};
use crate::request::{QueryOutcome, QueryRequest};
use crate::reuse::{ColumnReuse, ColumnStore};
use colarm_data::{AttributeId, FocalSubset, RangeSpec};
use colarm_mine::vertical::ItemTids;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cache key: the query with thresholds in hashable (bit) form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AnswerKey {
    range: RangeSpec,
    item_attrs: Option<Vec<AttributeId>>,
    minsupp_bits: u64,
    minconf_bits: u64,
    semantics: Semantics,
}

impl AnswerKey {
    fn of(query: &LocalizedQuery) -> AnswerKey {
        AnswerKey {
            range: query.range.clone(),
            item_attrs: query.item_attrs.clone(),
            minsupp_bits: query.minsupp.to_bits(),
            minconf_bits: query.minconf.to_bits(),
            semantics: query.semantics,
        }
    }
}

/// Cache key of one restricted-column materialization: the query inputs
/// that determine it (the focal range and the `Aitem` restriction —
/// thresholds and semantics don't change the columns).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ColumnsKey {
    range: RangeSpec,
    item_attrs: Option<Vec<AttributeId>>,
}

impl ColumnsKey {
    fn of(query: &LocalizedQuery) -> ColumnsKey {
        ColumnsKey {
            range: query.range.clone(),
            item_attrs: query.item_attrs.clone(),
        }
    }
}

/// Total tids across a materialization's columns — the work a derivation
/// from it would scan, and the deterministic parent-choice score.
fn column_volume(columns: &[ItemTids]) -> usize {
    columns.iter().map(|c| c.tids.len()).sum()
}

/// Capacity knobs for one session's caches. `0` disables a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Maximum cached answers (default 256).
    pub max_answers: usize,
    /// Maximum cached focal subsets (default 64).
    pub max_subsets: usize,
    /// Maximum cached restricted-column materializations (default 16).
    /// These are the heaviest entries — each holds a restricted vertical
    /// DB — so the default is deliberately small.
    pub max_columns: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_answers: 256,
            max_subsets: 64,
            max_columns: 16,
        }
    }
}

/// Hit/miss/eviction counters of one session. Part of the server wire
/// format (`QueryOutcome::session`, `GET /sessions/{id}`), so the field
/// names are wire-stable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SessionStats {
    /// Focal subsets served from cache.
    pub subset_hits: usize,
    /// Focal subsets resolved fresh.
    pub subset_misses: usize,
    /// Focal subsets evicted to stay within [`SessionConfig::max_subsets`].
    pub subset_evictions: usize,
    /// Answers served from cache.
    pub answer_hits: usize,
    /// Answers executed fresh.
    pub answer_misses: usize,
    /// Answers evicted to stay within [`SessionConfig::max_answers`].
    pub answer_evictions: usize,
    /// Focal subsets derived from a cached parent by intersecting only
    /// the refining delta selections (neither a hit nor a miss).
    pub subsets_derived: usize,
    /// Restricted-column sets served exactly from cache.
    pub column_hits: usize,
    /// Restricted-column sets materialized by a fresh scan.
    pub column_misses: usize,
    /// Restricted-column sets derived from a cached parent
    /// materialization (neither a hit nor a miss).
    pub columns_derived: usize,
    /// Column materializations evicted to stay within
    /// [`SessionConfig::max_columns`].
    pub column_evictions: usize,
}

/// An owned, bounded caching façade over a shared [`Colarm`] for
/// interactive query bursts.
pub struct QuerySession {
    colarm: Arc<Colarm>,
    config: SessionConfig,
    /// Worker threads for plan operators (0 = process default, 1 =
    /// sequential). Answers are bit-identical at any setting, so cached
    /// entries stay valid across changes.
    threads: AtomicUsize,
    /// Per-query deadline in nanoseconds; 0 = none. Applied to every
    /// execution this session runs.
    timeout_ns: AtomicU64,
    /// Cooperative cancellation flag shared with every execution this
    /// session runs; armed via [`QuerySession::cancel`].
    cancel: CancelToken,
    subsets: Mutex<LruCache<RangeSpec, Arc<FocalSubset>>>,
    answers: Mutex<LruCache<AnswerKey, Arc<QueryAnswer>>>,
    /// Restricted-column materializations (the ARM plan's SELECT output),
    /// shared with the engine via the [`ColumnStore`] hook.
    columns: Mutex<LruCache<ColumnsKey, Arc<Vec<ItemTids>>>>,
    subset_hits: AtomicUsize,
    subset_misses: AtomicUsize,
    subsets_derived: AtomicUsize,
    answer_hits: AtomicUsize,
    answer_misses: AtomicUsize,
    column_hits: AtomicUsize,
    column_misses: AtomicUsize,
    columns_derived: AtomicUsize,
}

impl QuerySession {
    /// Open a session over a shared system with default cache bounds.
    pub fn new(colarm: Arc<Colarm>) -> Self {
        QuerySession::with_config(colarm, SessionConfig::default())
    }

    /// Open a session with explicit cache bounds.
    pub fn with_config(colarm: Arc<Colarm>, config: SessionConfig) -> Self {
        QuerySession {
            colarm,
            config,
            threads: AtomicUsize::new(0),
            timeout_ns: AtomicU64::new(0),
            cancel: CancelToken::new(),
            subsets: Mutex::new(LruCache::new(config.max_subsets)),
            answers: Mutex::new(LruCache::new(config.max_answers)),
            columns: Mutex::new(LruCache::new(config.max_columns)),
            subset_hits: AtomicUsize::new(0),
            subset_misses: AtomicUsize::new(0),
            subsets_derived: AtomicUsize::new(0),
            answer_hits: AtomicUsize::new(0),
            answer_misses: AtomicUsize::new(0),
            column_hits: AtomicUsize::new(0),
            column_misses: AtomicUsize::new(0),
            columns_derived: AtomicUsize::new(0),
        }
    }

    /// The shared system this session queries.
    pub fn colarm(&self) -> &Arc<Colarm> {
        &self.colarm
    }

    /// The session's cache bounds.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Cap the worker threads used by this session's plan executions
    /// (`0` = process default, `1` = sequential). Safe to flip at any
    /// point: answers don't depend on the thread count.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads, Ordering::Relaxed);
    }

    fn exec_options(&self) -> ExecOptions {
        ExecOptions::with_threads(self.threads.load(Ordering::Relaxed))
    }

    /// Set (or clear, with `None`) the per-query deadline applied to
    /// every execution this session runs. A timed-out execution fails
    /// with [`ColarmError::Canceled`] naming the operator it stopped in;
    /// canceled answers are never cached, so a later retry without the
    /// deadline re-executes fully. `Some(Duration::ZERO)` is a valid
    /// setting: every execution cancels before its first operator.
    pub fn set_timeout(&self, timeout: Option<Duration>) {
        let ns = timeout.map_or(0, |t| {
            u64::try_from(t.as_nanos()).unwrap_or(u64::MAX).max(1)
        });
        self.timeout_ns.store(ns, Ordering::Relaxed);
    }

    /// The session's current per-query deadline, if one is set.
    pub fn timeout(&self) -> Option<Duration> {
        match self.timeout_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Arm the session's cancel token: in-flight and subsequent
    /// executions fail with [`ColarmError::Canceled`] at their next batch
    /// boundary until [`QuerySession::reset_cancel`] disarms it. The
    /// session itself stays fully usable — caches, stats, and later
    /// queries are unaffected.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Disarm the cancel token so executions run normally again.
    pub fn reset_cancel(&self) {
        self.cancel.reset();
    }

    /// The session's cancel token — clone it into whatever (signal
    /// handler, watchdog thread) may need to cancel from outside.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    fn limits(&self) -> QueryLimits {
        let mut limits = QueryLimits::none().with_cancel(self.cancel.clone());
        limits.timeout = self.timeout();
        limits
    }

    /// Resolve (or reuse) the focal subset of a range spec. A drill-down
    /// refinement of a cached subset is *derived* — the cached tidset is
    /// intersected with only the delta selections' tid-lists instead of
    /// re-resolving every conjunct (bit-identical result; see
    /// [`FocalSubset::derive_refinement`]). Counted in
    /// [`SessionStats::subsets_derived`], separate from hits and misses.
    pub fn subset(&self, range: &RangeSpec) -> Result<Arc<FocalSubset>, ColarmError> {
        if let Some(cached) = self.subsets.lock().get(range) {
            self.subset_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.clone());
        }
        if let Some(derived) = self.derive_subset(range)? {
            let derived = Arc::new(derived);
            self.subsets_derived.fetch_add(1, Ordering::Relaxed);
            self.subsets.lock().insert(range.clone(), derived.clone());
            return Ok(derived);
        }
        let resolved = Arc::new(self.colarm.index().resolve_subset(range.clone())?);
        self.subset_misses.fetch_add(1, Ordering::Relaxed);
        self.subsets.lock().insert(range.clone(), resolved.clone());
        Ok(resolved)
    }

    /// Try to derive `range`'s subset from the best cached parent it
    /// refines. Parent choice is deterministic: the smallest parent tidset
    /// (least intersection work), recency stamps breaking exact-size ties
    /// — stamps are unique, so the backing map's iteration order never
    /// shows through.
    fn derive_subset(&self, range: &RangeSpec) -> Result<Option<FocalSubset>, ColarmError> {
        let parent: Option<Arc<FocalSubset>> = {
            let cache = self.subsets.lock();
            cache
                .iter()
                .filter(|(spec, _, _)| range.refinement_delta(spec).is_some())
                .min_by_key(|(_, subset, stamp)| (subset.len(), *stamp))
                .map(|(_, subset, _)| subset.clone())
        };
        let Some(parent) = parent else {
            return Ok(None);
        };
        let index = self.colarm.index();
        Ok(FocalSubset::derive_refinement(
            &parent,
            range.clone(),
            index.dataset(),
            index.vertical(),
        )?)
    }

    /// Run one [`QueryRequest`] through this session — the session-aware
    /// twin of [`Colarm::run`]. Adds three things to the direct path:
    /// the session's subset / answer / column caches (so drill-downs
    /// derive instead of re-resolving), the session's own limits
    /// (deadline and cancel token, clamped together with the request's),
    /// and a [`SessionStats`] snapshot on the outcome.
    ///
    /// Plain runs (no forced plan, no analyze, no metrics) are served
    /// from — and land in — the answer cache; cache-hit outcomes carry
    /// no [`crate::PlanChoice`] (the optimizer didn't run). Forced-plan,
    /// analyze, and metrics runs bypass the answer cache so plan
    /// comparisons and measurements stay honest, while still reusing
    /// cached subsets and columns.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryOutcome, ColarmError> {
        let schema = self.colarm.index().dataset().schema();
        let query = request.resolve(schema)?;
        query.validate(schema)?;
        let plain = request.plan.is_none() && !request.analyze && !request.metrics;
        let key = AnswerKey::of(&query);
        if plain {
            // Clone the hit out and drop the guard first: `stats()` below
            // re-locks the answer cache, and the scrutinee temporary of an
            // `if let` lives for the whole body — holding it across
            // `stats()` self-deadlocks.
            let hit = self.answers.lock().get(&key).cloned();
            if let Some(cached) = hit {
                self.answer_hits.fetch_add(1, Ordering::Relaxed);
                let answer = (*cached).clone();
                return Ok(QueryOutcome {
                    plan: answer.plan,
                    subset_size: answer.subset_size,
                    rules: answer.rules,
                    choice: None,
                    trace: request.trace.then_some(answer.trace),
                    analyze: None,
                    session: Some(self.stats()),
                });
            }
        }
        let subset = self.subset(&query.range)?;
        if subset.is_empty() {
            return Err(ColarmError::EmptySubset);
        }
        // Request limits clamped by the session's deadline; executions
        // answer to the session's cancel token (the request's token is
        // process-local and never crosses the wire).
        let limits = request
            .effective_limits()
            .clamped(self.timeout(), None)
            .with_cancel(self.cancel.clone());
        let out = self.colarm.run_inner(
            &query,
            &subset,
            self.exec_options().with_metrics(request.metrics),
            &limits,
            Some(self),
            self.probe_reuse(&query),
            request.plan,
            request.analyze,
        )?;
        // A canceled execution propagated above before anything was
        // cached: partial work never masquerades as an answer.
        let outcome = if plain {
            self.answer_misses.fetch_add(1, Ordering::Relaxed);
            let cached = Arc::new(out.answer.clone());
            self.answers.lock().insert(key, cached);
            out.into_outcome(request.trace, None)
        } else {
            out.into_outcome(request.trace, None)
        };
        Ok(QueryOutcome {
            session: Some(self.stats()),
            ..outcome
        })
    }

    /// Execute (or reuse) a query with optimizer-selected plan — the
    /// typed convenience over [`QuerySession::run`] for callers that
    /// want the cached [`Arc<QueryAnswer>`] itself (repeat hits share
    /// one allocation).
    pub fn execute(&self, query: &LocalizedQuery) -> Result<Arc<QueryAnswer>, ColarmError> {
        query.validate(self.colarm.index().dataset().schema())?;
        let key = AnswerKey::of(query);
        if let Some(cached) = self.answers.lock().get(&key) {
            self.answer_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.clone());
        }
        let subset = self.subset(&query.range)?;
        if subset.is_empty() {
            return Err(ColarmError::EmptySubset);
        }
        // A canceled execution propagates here before anything is cached:
        // partial work never masquerades as an answer. The session hooks
        // in as the engine's column store, and tells the optimizer how
        // SELECT would actually be served so plan choice reflects reality.
        let out = self.colarm.run_inner(
            query,
            &subset,
            self.exec_options(),
            &self.limits(),
            Some(self),
            self.probe_reuse(query),
            None,
            false,
        )?;
        let answer = Arc::new(out.answer);
        self.answer_misses.fetch_add(1, Ordering::Relaxed);
        self.answers.lock().insert(key, answer.clone());
        Ok(answer)
    }

    /// Execute with a forced plan, still reusing the cached subset (the
    /// answer cache is bypassed so plan comparisons stay honest).
    pub fn execute_with_plan(
        &self,
        query: &LocalizedQuery,
        plan: PlanKind,
    ) -> Result<QueryAnswer, ColarmError> {
        let subset = self.subset(&query.range)?;
        self.colarm
            .run_inner(
                query,
                &subset,
                self.exec_options(),
                &self.limits(),
                Some(self),
                self.probe_reuse(query),
                Some(plan),
                false,
            )
            .map(|out| out.answer)
    }

    /// `EXPLAIN ANALYZE` through the session: reuses the cached subset,
    /// bypasses the answer cache (the point is to measure an execution),
    /// and leaves the measured run in the system's feedback log. The
    /// report states whether its predictions came from the statistics
    /// catalog or the global-average fallback
    /// ([`crate::explain::AnalyzeReport::stats_source`]).
    pub fn explain_analyze(
        &self,
        query: &LocalizedQuery,
    ) -> Result<AnalyzedAnswer, ColarmError> {
        query.validate(self.colarm.index().dataset().schema())?;
        let subset = self.subset(&query.range)?;
        if subset.is_empty() {
            return Err(ColarmError::EmptySubset);
        }
        self.colarm
            .run_inner(
                query,
                &subset,
                self.exec_options(),
                &self.limits(),
                Some(self),
                self.probe_reuse(query),
                None,
                true,
            )
            .map(crate::framework::RunOutput::into_analyzed)
    }

    /// How this session's column cache would serve the query's SELECT —
    /// the [`SelectReuse`] hint handed to the optimizer before execution.
    /// Purely observational: counts nothing, refreshes no recency.
    fn probe_reuse(&self, query: &LocalizedQuery) -> SelectReuse {
        let key = ColumnsKey::of(query);
        let cache = self.columns.lock();
        let mut best: Option<usize> = None;
        for (k, cols, _) in cache.iter() {
            if *k == key {
                return SelectReuse::Cached;
            }
            if k.item_attrs == key.item_attrs
                && query.range.refinement_delta(&k.range).is_some()
            {
                let vol = column_volume(cols);
                best = Some(best.map_or(vol, |b| b.min(vol)));
            }
        }
        match best {
            Some(volume) => SelectReuse::Derive {
                volume: volume as f64,
            },
            None => SelectReuse::Fresh,
        }
    }

    /// Session cache statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            subset_hits: self.subset_hits.load(Ordering::Relaxed),
            subset_misses: self.subset_misses.load(Ordering::Relaxed),
            subset_evictions: self.subsets.lock().evictions() as usize,
            answer_hits: self.answer_hits.load(Ordering::Relaxed),
            answer_misses: self.answer_misses.load(Ordering::Relaxed),
            answer_evictions: self.answers.lock().evictions() as usize,
            subsets_derived: self.subsets_derived.load(Ordering::Relaxed),
            column_hits: self.column_hits.load(Ordering::Relaxed),
            column_misses: self.column_misses.load(Ordering::Relaxed),
            columns_derived: self.columns_derived.load(Ordering::Relaxed),
            column_evictions: self.columns.lock().evictions() as usize,
        }
    }

    /// Drop all cached state (e.g. after the analyst switches task). The
    /// lifetime hit/miss/eviction counters are preserved.
    pub fn clear(&self) {
        self.subsets.lock().clear();
        self.answers.lock().clear();
        self.columns.lock().clear();
    }
}

impl ColumnStore for QuerySession {
    fn fetch(&self, query: &LocalizedQuery, _subset: &FocalSubset) -> ColumnReuse {
        let key = ColumnsKey::of(query);
        let mut cache = self.columns.lock();
        if let Some(cols) = cache.get(&key) {
            self.column_hits.fetch_add(1, Ordering::Relaxed);
            return ColumnReuse::Exact(cols.clone());
        }
        // Parent scan: same item restriction, range refined by this
        // query. Deterministic choice — smallest tid volume (least
        // derivation work), unique recency stamps breaking ties.
        let parent = cache
            .iter()
            .filter(|(k, _, _)| {
                k.item_attrs == key.item_attrs
                    && query.range.refinement_delta(&k.range).is_some()
            })
            .min_by_key(|(_, cols, stamp)| (column_volume(cols), *stamp))
            .map(|(_, cols, _)| cols.clone());
        match parent {
            Some(cols) => ColumnReuse::Derive(cols),
            None => ColumnReuse::Fresh,
        }
    }

    fn publish(
        &self,
        query: &LocalizedQuery,
        _subset: &FocalSubset,
        columns: &Arc<Vec<ItemTids>>,
        derived: bool,
    ) {
        if derived {
            self.columns_derived.fetch_add(1, Ordering::Relaxed);
        } else {
            self.column_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.columns
            .lock()
            .insert(ColumnsKey::of(query), columns.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn system() -> Arc<Colarm> {
        Colarm::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..Default::default()
            },
        )
        .unwrap()
        .into_shared()
    }

    #[test]
    fn threshold_refinement_reuses_the_subset() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm);
        let base = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap();
        for minsupp in [0.5, 0.6, 0.75] {
            let q = base.clone().minsupp(minsupp).minconf(0.8).build().unwrap();
            session.execute(&q).unwrap();
        }
        let stats = session.stats();
        assert_eq!(stats.subset_misses, 1, "one range → one resolution");
        assert_eq!(stats.subset_hits, 2);
        assert_eq!(stats.answer_misses, 3);
        assert_eq!(stats.answer_evictions, 0);
    }

    #[test]
    fn identical_queries_hit_the_answer_cache() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm);
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.8)
            .build()
            .unwrap();
        let a = session.execute(&q).unwrap();
        let b = session.execute(&q).unwrap();
        assert_eq!(a.rules, b.rules);
        assert!(Arc::ptr_eq(&a, &b), "second answer must come from cache");
        assert_eq!(session.stats().answer_hits, 1);
        // Different threshold → different key.
        let q2 = LocalizedQuery::builder()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.6)
            .minconf(0.8)
            .build()
            .unwrap();
        session.execute(&q2).unwrap();
        assert_eq!(session.stats().answer_misses, 2);
    }

    #[test]
    fn cached_answers_match_uncached_execution() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm.clone());
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Company", &["Google"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        let via_session = session.execute(&q).unwrap();
        let direct = colarm
            .run(&crate::request::QueryRequest::query(&q))
            .unwrap();
        assert_eq!(via_session.rules, direct.rules);
    }

    #[test]
    fn thread_knob_does_not_change_answers() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        let sequential = QuerySession::new(colarm.clone());
        sequential.set_threads(1);
        let a = sequential.execute(&q).unwrap();
        let parallel = QuerySession::new(colarm);
        parallel.set_threads(4);
        let b = parallel.execute(&q).unwrap();
        assert_eq!(a.rules, b.rules);
    }

    #[test]
    fn clear_resets_the_caches() {
        let colarm = system();
        let session = QuerySession::new(colarm);
        let q = LocalizedQuery::builder()
            .minsupp(0.5)
            .minconf(0.8)
            .build()
            .unwrap();
        session.execute(&q).unwrap();
        session.clear();
        session.execute(&q).unwrap();
        assert_eq!(session.stats().answer_misses, 2);
    }

    #[test]
    fn bounded_answer_cache_evicts_lru_deterministically() {
        let colarm = system();
        let session = QuerySession::with_config(
            colarm,
            SessionConfig {
                max_answers: 2,
                max_subsets: 16,
                ..Default::default()
            },
        );
        let query = |minsupp: f64| {
            LocalizedQuery::builder()
                .minsupp(minsupp)
                .minconf(0.7)
                .build()
                .unwrap()
        };
        let (q1, q2, q3) = (query(0.3), query(0.4), query(0.5));
        session.execute(&q1).unwrap();
        session.execute(&q2).unwrap();
        session.execute(&q3).unwrap(); // evicts q1's answer
        assert_eq!(session.stats().answer_evictions, 1);
        session.execute(&q2).unwrap(); // hit: refreshes q2, q3 becomes LRU
        assert_eq!(session.stats().answer_hits, 1);
        session.execute(&q1).unwrap(); // miss again, evicts q3 (q2 refreshed)
        let stats = session.stats();
        assert_eq!(stats.answer_misses, 4);
        assert_eq!(stats.answer_evictions, 2);
        session.execute(&q2).unwrap();
        assert_eq!(session.stats().answer_hits, 2, "q2 survived both evictions");
    }

    #[test]
    fn bounded_subset_cache_evicts_and_recounts() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::with_config(
            colarm,
            SessionConfig {
                max_answers: 16,
                max_subsets: 1,
                ..Default::default()
            },
        );
        let range = |loc: &str| {
            RangeSpec::all()
                .with_named(&schema, "Location", &[loc])
                .unwrap()
        };
        session.subset(&range("Seattle")).unwrap();
        session.subset(&range("Boston")).unwrap(); // evicts Seattle
        session.subset(&range("Seattle")).unwrap(); // miss again
        let stats = session.stats();
        assert_eq!(stats.subset_misses, 3);
        assert_eq!(stats.subset_hits, 0);
        assert_eq!(stats.subset_evictions, 2);
    }

    #[test]
    fn zero_capacity_disables_caching_but_not_execution() {
        let colarm = system();
        let session = QuerySession::with_config(
            colarm,
            SessionConfig {
                max_answers: 0,
                max_subsets: 0,
                max_columns: 0,
            },
        );
        let q = LocalizedQuery::builder()
            .minsupp(0.5)
            .minconf(0.8)
            .build()
            .unwrap();
        let a = session.execute(&q).unwrap();
        let b = session.execute(&q).unwrap();
        assert_eq!(a.rules, b.rules);
        let stats = session.stats();
        assert_eq!(stats.answer_hits, 0);
        assert_eq!(stats.answer_misses, 2);
        assert_eq!(stats.answer_evictions, 0);
    }

    #[test]
    fn sessions_are_owned_send_sync_and_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<QuerySession>();
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm);
        // An owned session moves into a spawned (non-scoped) thread.
        let handle = std::thread::spawn(move || {
            let q = LocalizedQuery::builder()
                .range_named(&schema, "Location", &["Seattle"])
                .unwrap()
                .minsupp(0.5)
                .minconf(0.7)
                .build()
                .unwrap();
            let answer = session.execute(&q).unwrap();
            answer.rules.len()
        });
        handle.join().unwrap();
    }

    #[test]
    fn sessions_are_shareable_across_threads() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm);
        std::thread::scope(|scope| {
            for loc in ["Seattle", "Boston", "SFO"] {
                let session = &session;
                let schema = schema.clone();
                scope.spawn(move || {
                    let q = LocalizedQuery::builder()
                        .range_named(&schema, "Location", &[loc])
                        .unwrap()
                        .minsupp(0.5)
                        .minconf(0.7)
                        .build()
                        .unwrap();
                    // SFO has 2 records; every location subset is nonempty.
                    session.execute(&q).unwrap();
                });
            }
        });
        assert_eq!(session.stats().answer_misses, 3);
    }

    #[test]
    fn zero_timeout_cancels_and_clearing_it_restores_the_session() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm);
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        session.set_timeout(Some(Duration::ZERO));
        let err = session.execute(&q).unwrap_err();
        assert!(
            matches!(err, ColarmError::Canceled { .. }),
            "expected Canceled, got {err:?}"
        );
        assert!(err.to_string().contains("canceled in"));
        // The canceled run was never cached...
        assert_eq!(session.stats().answer_misses, 0);
        // ...and the session works again once the deadline is lifted.
        session.set_timeout(None);
        assert_eq!(session.timeout(), None);
        session.execute(&q).unwrap();
        assert_eq!(session.stats().answer_misses, 1);
    }

    #[test]
    fn armed_cancel_token_blocks_until_reset() {
        let colarm = system();
        let session = QuerySession::new(colarm);
        let q = LocalizedQuery::builder()
            .minsupp(0.5)
            .minconf(0.8)
            .build()
            .unwrap();
        session.cancel();
        let err = session.execute(&q).unwrap_err();
        assert!(matches!(err, ColarmError::Canceled { .. }));
        // Cached state and stats are untouched by the cancellation; a
        // reset session executes (and caches) normally.
        session.reset_cancel();
        session.execute(&q).unwrap();
        session.execute(&q).unwrap();
        let stats = session.stats();
        assert_eq!(stats.answer_misses, 1);
        assert_eq!(stats.answer_hits, 1);
    }

    #[test]
    fn session_analyze_reuses_subset_and_reports_metrics() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm.clone());
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        session.execute(&q).unwrap();
        let analyzed = session.explain_analyze(&q).unwrap();
        assert_eq!(session.stats().subset_hits, 1, "analyze reused the subset");
        assert!(analyzed.report.ops.iter().all(|o| o.metrics.is_some()));
        assert!(!colarm.feedback().is_empty());
    }

    #[test]
    fn drill_down_derives_subsets_and_columns_bit_identically() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm.clone());
        // Unrestricted semantics forces the ARM plan, so SELECT (and the
        // column cache) runs on every query of the chain.
        let q1 = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .semantics(Semantics::Unrestricted)
            .build()
            .unwrap();
        let q2 = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .semantics(Semantics::Unrestricted)
            .build()
            .unwrap();
        session.execute(&q1).unwrap();
        let drilled = session.execute(&q2).unwrap();
        let stats = session.stats();
        assert_eq!(stats.subset_misses, 1, "only q1 resolved from scratch");
        assert_eq!(stats.subsets_derived, 1, "q2's subset derived from q1's");
        assert_eq!(stats.column_misses, 1, "only q1 scanned the vertical DB");
        assert_eq!(stats.columns_derived, 1, "q2's columns derived from q1's");
        // Bit-identical to a cold session that does everything fresh.
        let cold = QuerySession::new(colarm).execute(&q2).unwrap();
        assert_eq!(drilled.rules, cold.rules);
        assert_eq!(drilled.subset_size, cold.subset_size);
        assert_eq!(drilled.trace.ops.len(), cold.trace.ops.len());
        for (a, b) in drilled.trace.ops.iter().zip(&cold.trace.ops) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.units.to_bits(), b.units.to_bits(), "{} units drifted", a.name());
        }
    }

    #[test]
    fn repeated_forced_arm_hits_the_exact_column_cache() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm);
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap();
        let a = session.execute_with_plan(&q, PlanKind::Arm).unwrap();
        let b = session.execute_with_plan(&q, PlanKind::Arm).unwrap();
        assert_eq!(a.rules, b.rules);
        let stats = session.stats();
        assert_eq!(stats.column_misses, 1);
        assert_eq!(stats.column_hits, 1, "second run reused the exact columns");
        // Reuse shows only in wall-clock and counters — units are pinned.
        for (x, y) in a.trace.ops.iter().zip(&b.trace.ops) {
            assert_eq!(x.units.to_bits(), y.units.to_bits());
        }
    }

    #[test]
    fn warmed_cache_lowers_the_predicted_select_cost() {
        use crate::ops::OpKind;
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(colarm);
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .semantics(Semantics::Unrestricted)
            .build()
            .unwrap();
        let cold = session.explain_analyze(&q).unwrap();
        let warm = session.explain_analyze(&q).unwrap();
        let select_secs = |a: &AnalyzedAnswer| {
            a.choice
                .estimate_for(PlanKind::Arm)
                .term(OpKind::Select)
                .unwrap()
                .seconds
        };
        assert!(
            select_secs(&warm) < select_secs(&cold),
            "optimizer must price the cached SELECT cheaper"
        );
        // The executed SELECT reveals the exact hit through its counters.
        let m = warm.report.op_kind(OpKind::Select).unwrap().metrics.unwrap();
        assert!(m.cache_hits > 0, "exact column reuse recorded");
        assert_eq!(session.stats().column_hits, 1);
    }
}
