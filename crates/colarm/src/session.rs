//! Multi-query sessions — the paper's future-work item (b): "multi-query
//! optimization in the context of localized association rule mining" (§7).
//!
//! Interactive exploration issues bursts of related queries: the analyst
//! drills into one region with varying thresholds, or sweeps neighbouring
//! regions. A [`QuerySession`] amortizes that workload two ways:
//!
//! * **subset reuse** — resolved focal subsets (`DQ` tidsets) are cached
//!   per range spec, so threshold-only refinements skip the SELECT work;
//! * **answer reuse** — full answers are cached per (range, item
//!   attributes, thresholds, semantics), so repeated questions are free.
//!
//! The caches are behind `parking_lot` read–write locks, making a session
//! shareable across analyst threads.

use crate::error::ColarmError;
use crate::framework::Colarm;
use crate::ops::ExecOptions;
use crate::plan::{execute_plan_with, PlanKind, QueryAnswer};
use crate::query::{LocalizedQuery, Semantics};
use colarm_data::{AttributeId, FocalSubset, RangeSpec};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache key: the query with thresholds in hashable (bit) form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AnswerKey {
    range: RangeSpec,
    item_attrs: Option<Vec<AttributeId>>,
    minsupp_bits: u64,
    minconf_bits: u64,
    semantics: Semantics,
}

impl AnswerKey {
    fn of(query: &LocalizedQuery) -> AnswerKey {
        AnswerKey {
            range: query.range.clone(),
            item_attrs: query.item_attrs.clone(),
            minsupp_bits: query.minsupp.to_bits(),
            minconf_bits: query.minconf.to_bits(),
            semantics: query.semantics,
        }
    }
}

/// Hit/miss counters of one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Focal subsets served from cache.
    pub subset_hits: usize,
    /// Focal subsets resolved fresh.
    pub subset_misses: usize,
    /// Answers served from cache.
    pub answer_hits: usize,
    /// Answers executed fresh.
    pub answer_misses: usize,
}

/// A caching façade over [`Colarm`] for interactive query bursts.
pub struct QuerySession<'a> {
    colarm: &'a Colarm,
    /// Worker threads for plan operators (0 = process default, 1 =
    /// sequential). Answers are bit-identical at any setting, so cached
    /// entries stay valid across changes.
    threads: AtomicUsize,
    subsets: RwLock<HashMap<RangeSpec, Arc<FocalSubset>>>,
    answers: RwLock<HashMap<AnswerKey, Arc<QueryAnswer>>>,
    subset_hits: AtomicUsize,
    subset_misses: AtomicUsize,
    answer_hits: AtomicUsize,
    answer_misses: AtomicUsize,
}

impl<'a> QuerySession<'a> {
    /// Open a session over a built system.
    pub fn new(colarm: &'a Colarm) -> Self {
        QuerySession {
            colarm,
            threads: AtomicUsize::new(0),
            subsets: RwLock::new(HashMap::new()),
            answers: RwLock::new(HashMap::new()),
            subset_hits: AtomicUsize::new(0),
            subset_misses: AtomicUsize::new(0),
            answer_hits: AtomicUsize::new(0),
            answer_misses: AtomicUsize::new(0),
        }
    }

    /// Cap the worker threads used by this session's plan executions
    /// (`0` = process default, `1` = sequential). Safe to flip at any
    /// point: answers don't depend on the thread count.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads, Ordering::Relaxed);
    }

    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            threads: self.threads.load(Ordering::Relaxed),
        }
    }

    /// Resolve (or reuse) the focal subset of a range spec.
    pub fn subset(&self, range: &RangeSpec) -> Result<Arc<FocalSubset>, ColarmError> {
        if let Some(cached) = self.subsets.read().get(range) {
            self.subset_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.clone());
        }
        let resolved = Arc::new(self.colarm.index().resolve_subset(range.clone())?);
        self.subset_misses.fetch_add(1, Ordering::Relaxed);
        self.subsets
            .write()
            .entry(range.clone())
            .or_insert_with(|| resolved.clone());
        Ok(resolved)
    }

    /// Execute (or reuse) a query with optimizer-selected plan.
    pub fn execute(&self, query: &LocalizedQuery) -> Result<Arc<QueryAnswer>, ColarmError> {
        query.validate(self.colarm.index().dataset().schema())?;
        let key = AnswerKey::of(query);
        if let Some(cached) = self.answers.read().get(&key) {
            self.answer_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.clone());
        }
        let subset = self.subset(&query.range)?;
        if subset.is_empty() {
            return Err(ColarmError::EmptySubset);
        }
        let choice = self
            .colarm
            .optimizer()
            .choose(self.colarm.index(), query, &subset);
        let answer = Arc::new(execute_plan_with(
            self.colarm.index(),
            query,
            &subset,
            choice.chosen,
            self.exec_options(),
        )?);
        self.answer_misses.fetch_add(1, Ordering::Relaxed);
        self.answers
            .write()
            .entry(key)
            .or_insert_with(|| answer.clone());
        Ok(answer)
    }

    /// Execute with a forced plan, still reusing the cached subset (the
    /// answer cache is bypassed so plan comparisons stay honest).
    pub fn execute_with_plan(
        &self,
        query: &LocalizedQuery,
        plan: PlanKind,
    ) -> Result<QueryAnswer, ColarmError> {
        let subset = self.subset(&query.range)?;
        execute_plan_with(self.colarm.index(), query, &subset, plan, self.exec_options())
    }

    /// Session cache statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            subset_hits: self.subset_hits.load(Ordering::Relaxed),
            subset_misses: self.subset_misses.load(Ordering::Relaxed),
            answer_hits: self.answer_hits.load(Ordering::Relaxed),
            answer_misses: self.answer_misses.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached state (e.g. after the analyst switches task).
    pub fn clear(&self) {
        self.subsets.write().clear();
        self.answers.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    fn system() -> Colarm {
        Colarm::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn threshold_refinement_reuses_the_subset() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(&colarm);
        let base = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap();
        for minsupp in [0.5, 0.6, 0.75] {
            let q = base.clone().minsupp(minsupp).minconf(0.8).build();
            session.execute(&q).unwrap();
        }
        let stats = session.stats();
        assert_eq!(stats.subset_misses, 1, "one range → one resolution");
        assert_eq!(stats.subset_hits, 2);
        assert_eq!(stats.answer_misses, 3);
    }

    #[test]
    fn identical_queries_hit_the_answer_cache() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(&colarm);
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.8)
            .build();
        let a = session.execute(&q).unwrap();
        let b = session.execute(&q).unwrap();
        assert_eq!(a.rules, b.rules);
        assert!(Arc::ptr_eq(&a, &b), "second answer must come from cache");
        assert_eq!(session.stats().answer_hits, 1);
        // Different threshold → different key.
        let q2 = LocalizedQuery::builder()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.6)
            .minconf(0.8)
            .build();
        session.execute(&q2).unwrap();
        assert_eq!(session.stats().answer_misses, 2);
    }

    #[test]
    fn cached_answers_match_uncached_execution() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(&colarm);
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Company", &["Google"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build();
        let via_session = session.execute(&q).unwrap();
        let direct = colarm.execute(&q).unwrap();
        assert_eq!(via_session.rules, direct.answer.rules);
    }

    #[test]
    fn thread_knob_does_not_change_answers() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let q = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build();
        let sequential = QuerySession::new(&colarm);
        sequential.set_threads(1);
        let a = sequential.execute(&q).unwrap();
        let parallel = QuerySession::new(&colarm);
        parallel.set_threads(4);
        let b = parallel.execute(&q).unwrap();
        assert_eq!(a.rules, b.rules);
    }

    #[test]
    fn clear_resets_the_caches() {
        let colarm = system();
        let session = QuerySession::new(&colarm);
        let q = LocalizedQuery::builder().minsupp(0.5).minconf(0.8).build();
        session.execute(&q).unwrap();
        session.clear();
        session.execute(&q).unwrap();
        assert_eq!(session.stats().answer_misses, 2);
    }

    #[test]
    fn sessions_are_shareable_across_threads() {
        let colarm = system();
        let schema = colarm.index().dataset().schema().clone();
        let session = QuerySession::new(&colarm);
        std::thread::scope(|scope| {
            for loc in ["Seattle", "Boston", "SFO"] {
                let session = &session;
                let schema = schema.clone();
                scope.spawn(move || {
                    let q = LocalizedQuery::builder()
                        .range_named(&schema, "Location", &[loc])
                        .unwrap()
                        .minsupp(0.5)
                        .minconf(0.7)
                        .build();
                    // SFO has 2 records; every location subset is nonempty.
                    session.execute(&q).unwrap();
                });
            }
        });
        assert_eq!(session.stats().answer_misses, 3);
    }
}
