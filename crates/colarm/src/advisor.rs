//! Parameter advisor — the paper's future-work item (a): "mining the
//! range, support and confidence parameters from the data in an automatic
//! and efficient way" (§7).
//!
//! The advisor works entirely from the MIP-index:
//!
//! * **minsupport** — chosen from the CFI support histogram so that a
//!   target number of itemsets qualifies (analysts drown past a few
//!   hundred);
//! * **minconfidence** — a high default scaled down when the data is so
//!   sparse that nothing would pass;
//! * **ranges** — every single attribute-value selection is scored by the
//!   number of *fresh local* CFIs it would surface (the Figure 13
//!   statistic); the top scorers are the most paradox-rich subsets to
//!   explore first.

use crate::error::ColarmError;
use crate::mip::MipIndex;
use crate::paradox::local_vs_global_cfis;
use crate::query::LocalizedQuery;
use colarm_data::{AttributeId, RangeSpec, ValueId};

/// A suggested focal subset with its paradox score.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeSuggestion {
    /// The attribute to constrain.
    pub attribute: AttributeId,
    /// The value to select.
    pub value: ValueId,
    /// Human-readable `Attr=Value` label.
    pub label: String,
    /// Records selected.
    pub subset_size: usize,
    /// Fresh-local CFIs surfaced at the suggested thresholds.
    pub fresh_local_cfis: usize,
}

impl RangeSuggestion {
    /// Turn the suggestion into a ready-to-run [`LocalizedQuery`] at the
    /// advisor's thresholds, going through the validating builder so a
    /// degenerate suggestion can never smuggle an invalid query into the
    /// engine.
    pub fn to_query(&self, advice: &Advice) -> Result<LocalizedQuery, ColarmError> {
        LocalizedQuery::builder()
            .range(RangeSpec::all().with(self.attribute, [self.value]))
            .minsupp(advice.minsupp)
            .minconf(advice.minconf)
            .build()
    }
}

/// The advisor's output.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Suggested local minsupport.
    pub minsupp: f64,
    /// Suggested local minconfidence.
    pub minconf: f64,
    /// Paradox-rich single-value ranges, best first.
    pub ranges: Vec<RangeSuggestion>,
}

/// Tuning knobs for [`advise`].
#[derive(Debug, Clone, Copy)]
pub struct AdvisorConfig {
    /// Target number of qualifying itemsets behind the minsupport pick.
    pub target_itemsets: usize,
    /// How many range suggestions to return.
    pub top_ranges: usize,
    /// Smallest subset fraction worth suggesting (tiny subsets overfit).
    pub min_subset_fraction: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            target_itemsets: 200,
            top_ranges: 8,
            min_subset_fraction: 0.01,
        }
    }
}

/// Mine suggested query parameters from the index.
pub fn advise(index: &MipIndex, config: &AdvisorConfig) -> Result<Advice, ColarmError> {
    let stats = index.stats();
    let m = index.dataset().num_records();
    // minsupport: the support level at which ~target_itemsets CFIs remain
    // (histogram is sorted ascending; walk back from the top).
    let supports = &stats.supports;
    let primary_frac = stats.primary_count as f64 / m.max(1) as f64;
    let minsupp = if supports.is_empty() {
        0.5
    } else {
        let idx = supports.len().saturating_sub(config.target_itemsets);
        (supports[idx] as f64 / m as f64).clamp(0.05, 0.95)
    }
    // A useful local threshold sits clearly above the primary threshold —
    // otherwise nothing can ever be "fresh" locally.
    .max((primary_frac * 1.5).min(0.95));
    let minconf = (minsupp + 0.2).clamp(0.5, 0.95);

    let schema = index.dataset().schema();
    let mut ranges = Vec::new();
    for (aid, dom) in schema.dimensions() {
        for v in 0..dom as ValueId {
            let spec = RangeSpec::all().with(aid, [v]);
            let subset = index.resolve_subset(spec)?;
            if (subset.len() as f64) < config.min_subset_fraction * m as f64 {
                continue;
            }
            if subset.len() == m {
                continue; // selects everything — nothing local about it
            }
            let counts = local_vs_global_cfis(index, &subset, minsupp, minsupp);
            if counts.fresh_local == 0 {
                continue;
            }
            ranges.push(RangeSuggestion {
                attribute: aid,
                value: v,
                label: schema.item_label(schema.encode(aid, v)),
                subset_size: subset.len(),
                fresh_local_cfis: counts.fresh_local,
            });
        }
    }
    ranges.sort_by(|a, b| {
        b.fresh_local_cfis
            .cmp(&a.fresh_local_cfis)
            .then(a.label.cmp(&b.label))
    });
    ranges.truncate(config.top_ranges);
    Ok(Advice {
        minsupp,
        minconf,
        ranges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mip::MipIndexConfig;
    use colarm_data::synth::salary;

    #[test]
    fn advice_is_actionable() {
        let index = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let advice = advise(&index, &AdvisorConfig::default()).unwrap();
        assert!(advice.minsupp > 0.0 && advice.minsupp < 1.0);
        assert!(advice.minconf >= advice.minsupp);
        assert!(!advice.ranges.is_empty(), "salary data is paradox-rich");
        // Suggestions are sorted by paradox score.
        for w in advice.ranges.windows(2) {
            assert!(w[0].fresh_local_cfis >= w[1].fresh_local_cfis);
        }
        // Every suggestion names a real subset.
        for r in &advice.ranges {
            assert!(r.subset_size > 0 && r.subset_size < 11);
            assert!(r.label.contains('='));
        }
    }

    #[test]
    fn suggestions_convert_to_runnable_queries() {
        let colarm = crate::framework::Colarm::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let advice = advise(colarm.index(), &AdvisorConfig::default()).unwrap();
        let top = &advice.ranges[0];
        let query = top.to_query(&advice).unwrap();
        assert_eq!(query.minsupp, advice.minsupp);
        assert_eq!(query.minconf, advice.minconf);
        let out = colarm
            .run(&crate::request::QueryRequest::query(&query))
            .unwrap();
        assert_eq!(out.subset_size, top.subset_size);
    }

    #[test]
    fn target_itemsets_moves_minsupp() {
        let index = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 1.0 / 11.0,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let strict = advise(
            &index,
            &AdvisorConfig {
                target_itemsets: 5,
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        let loose = advise(
            &index,
            &AdvisorConfig {
                target_itemsets: 500,
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        assert!(strict.minsupp >= loose.minsupp);
    }
}
