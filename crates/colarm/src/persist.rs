//! MIP-index persistence.
//!
//! The offline phase is a one-time cost (paper §3.2), so a production
//! deployment wants to build the index once and reload it across process
//! restarts. The snapshot stores the dataset, the build configuration and
//! the mined closed itemsets with their exact tidsets; loading rebuilds
//! the derived structures (IT-tree inverted lists, packed R-tree, index
//! statistics) deterministically — those rebuilds are cheap compared to
//! re-running CHARM.

use crate::error::ColarmError;
use crate::mip::{MipIndex, MipIndexConfig, Packing};
use colarm_data::{Dataset, Itemset, Tidset};
use serde::{Deserialize, Serialize};

/// Serializable snapshot of a MIP-index.
#[derive(Debug, Serialize, Deserialize)]
pub struct IndexSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    dataset: Dataset,
    primary_support: f64,
    fanout: usize,
    packing: u8,
    cfis: Vec<(Itemset, Tidset)>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl IndexSnapshot {
    /// Capture a snapshot of a built index.
    pub fn capture(index: &MipIndex) -> IndexSnapshot {
        let config = index.config();
        IndexSnapshot {
            version: SNAPSHOT_VERSION,
            dataset: index.dataset().clone(),
            primary_support: config.primary_support,
            fanout: config.fanout,
            packing: match config.packing {
                Packing::Str => 0,
                Packing::Hilbert => 1,
                Packing::Insertion => 2,
            },
            cfis: index
                .ittree()
                .iter()
                .map(|(_, c)| (c.itemset.clone(), c.tids.clone()))
                .collect(),
        }
    }

    /// Restore the index: rebuild the derived structures from the stored
    /// CFIs without re-running the miner.
    pub fn restore(self) -> Result<MipIndex, ColarmError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(ColarmError::QueryParse {
                position: 0,
                message: format!(
                    "unsupported index snapshot version {} (expected {SNAPSHOT_VERSION})",
                    self.version
                ),
            });
        }
        let config = MipIndexConfig {
            primary_support: self.primary_support,
            fanout: self.fanout,
            packing: match self.packing {
                0 => Packing::Str,
                1 => Packing::Hilbert,
                _ => Packing::Insertion,
            },
            // A runtime knob, not an index property: restored indexes
            // fall back to the session default.
            threads: 0,
        };
        MipIndex::from_parts(
            self.dataset,
            config,
            self.cfis
                .into_iter()
                .map(|(itemset, tids)| colarm_mine::ClosedItemset { itemset, tids })
                .collect(),
        )
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot is serializable")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(text: &str) -> Result<IndexSnapshot, ColarmError> {
        serde_json::from_str(text).map_err(|e| ColarmError::QueryParse {
            position: 0,
            message: format!("invalid index snapshot: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::LocalizedQuery;
    use colarm_data::synth::salary;

    fn index() -> MipIndex {
        MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 2.0 / 11.0,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn snapshot_round_trip_preserves_answers() {
        let original = index();
        let json = IndexSnapshot::capture(&original).to_json();
        let restored = IndexSnapshot::from_json(&json).unwrap().restore().unwrap();
        assert_eq!(restored.num_mips(), original.num_mips());
        assert_eq!(restored.primary_count(), original.primary_count());
        let schema = original.dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build().unwrap();
        for plan in crate::plan::PlanKind::ALL {
            let subset_a = original.resolve_subset(query.range.clone()).unwrap();
            let subset_b = restored.resolve_subset(query.range.clone()).unwrap();
            let a = crate::plan::execute_plan(&original, &query, &subset_a, plan).unwrap();
            let b = crate::plan::execute_plan(&restored, &query, &subset_b, plan).unwrap();
            assert_eq!(a.rules, b.rules, "{plan} diverged after restore");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut snap = IndexSnapshot::capture(&index());
        snap.version = 999;
        assert!(snap.restore().is_err());
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(IndexSnapshot::from_json("{not json").is_err());
        assert!(IndexSnapshot::from_json("{}").is_err());
    }
}
