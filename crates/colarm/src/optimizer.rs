//! The COLARM cost-based optimizer (paper §3.1, §5.1).
//!
//! Given a localized mining query, the optimizer evaluates the six cost
//! formulae (a constant-time computation per plan) and picks the plan with
//! the minimum estimate. The experiments of §5.1 measure how often this
//! choice matches the plan that is actually fastest (~93 % in the paper).

use crate::cost::{CostEstimate, CostModel};
use crate::mip::MipIndex;
use crate::plan::PlanKind;
use crate::query::LocalizedQuery;
use colarm_data::FocalSubset;

/// The optimizer's decision for one query.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The plan with the lowest estimated cost.
    pub chosen: PlanKind,
    /// All six estimates, cheapest first.
    pub estimates: Vec<CostEstimate>,
}

impl PlanChoice {
    /// Estimated cost of the chosen plan (seconds).
    pub fn estimated_cost(&self) -> f64 {
        self.estimates[0].total()
    }

    /// The estimate for a specific plan.
    pub fn estimate_for(&self, plan: PlanKind) -> &CostEstimate {
        self.estimates
            .iter()
            .find(|e| e.plan == plan)
            .expect("all plans estimated")
    }
}

/// Cost-based plan selector.
#[derive(Debug, Clone)]
pub struct Optimizer {
    model: CostModel,
}

impl Optimizer {
    /// Build an optimizer over a cost model.
    pub fn new(model: CostModel) -> Self {
        Optimizer { model }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Mutable access (calibration).
    pub fn model_mut(&mut self) -> &mut CostModel {
        &mut self.model
    }

    /// Choose the cheapest plan for a query over a resolved subset.
    pub fn choose(
        &self,
        index: &MipIndex,
        query: &LocalizedQuery,
        subset: &FocalSubset,
    ) -> PlanChoice {
        let profile = index.query_profile(query, subset);
        let estimates = self.model.estimate_all(&profile);
        PlanChoice {
            chosen: estimates[0].plan,
            estimates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostConstants;
    use crate::mip::{MipIndex, MipIndexConfig};
    use colarm_data::synth::salary;
    use colarm_data::RangeSpec;

    fn optimizer_and_index() -> (Optimizer, MipIndex) {
        let index = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 0.2,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let model = CostModel {
            stats: index.stats().clone(),
            constants: CostConstants::default(),
        };
        (Optimizer::new(model), index)
    }

    #[test]
    fn choose_returns_all_estimates_sorted() {
        let (opt, index) = optimizer_and_index();
        let schema = index.dataset().schema().clone();
        let query = crate::query::LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.85)
            .build();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        let choice = opt.choose(&index, &query, &subset);
        assert_eq!(choice.estimates.len(), PlanKind::ALL.len());
        assert_eq!(choice.chosen, choice.estimates[0].plan);
        for w in choice.estimates.windows(2) {
            assert!(w[0].total() <= w[1].total());
        }
        assert!(choice.estimated_cost() > 0.0);
        assert_eq!(choice.estimate_for(PlanKind::Arm).plan, PlanKind::Arm);
    }

    #[test]
    fn choice_is_deterministic() {
        let (opt, index) = optimizer_and_index();
        let query = crate::query::LocalizedQuery::builder().build();
        let subset = index.resolve_subset(RangeSpec::all()).unwrap();
        let a = opt.choose(&index, &query, &subset);
        let b = opt.choose(&index, &query, &subset);
        assert_eq!(a.chosen, b.chosen);
    }
}
