//! The COLARM cost-based optimizer (paper §3.1, §5.1).
//!
//! Given a localized mining query, the optimizer evaluates the six cost
//! formulae (a constant-time computation per plan) and picks the plan with
//! the minimum estimate. The experiments of §5.1 measure how often this
//! choice matches the plan that is actually fastest (~93 % in the paper).
//!
//! The [`FeedbackLog`] closes the loop: every execution the framework
//! observes is recorded as `(query, per-plan predictions, chosen plan,
//! actual cost)`, so mispicks — queries where a plan the optimizer passed
//! over actually ran faster — are detectable after the fact
//! ([`FeedbackLog::mispicks`]), and
//! [`crate::framework::Colarm::calibrate_from_feedback`] can re-fit the
//! unit constants from real executions instead of dedicated samples.

use crate::cost::{CostEstimate, CostModel};
use crate::mip::MipIndex;
use crate::plan::{PlanKind, QueryAnswer};
use crate::query::LocalizedQuery;
use colarm_data::FocalSubset;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The optimizer's decision for one query. Part of the server wire
/// format (`QueryOutcome::choice`), so the field names are wire-stable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanChoice {
    /// The plan with the lowest estimated cost.
    pub chosen: PlanKind,
    /// All six estimates, cheapest first.
    pub estimates: Vec<CostEstimate>,
}

impl PlanChoice {
    /// Estimated cost of the chosen plan (seconds).
    pub fn estimated_cost(&self) -> f64 {
        self.estimates[0].total()
    }

    /// The estimate for a specific plan.
    pub fn estimate_for(&self, plan: PlanKind) -> &CostEstimate {
        self.estimates
            .iter()
            .find(|e| e.plan == plan)
            .expect("all plans estimated")
    }
}

/// One observed execution, as the feedback log stores it: what every plan
/// was predicted to cost, which plan ran, and what it actually cost.
/// Serialize-only (operator names are `&'static str`).
#[derive(Debug, Clone, Serialize)]
pub struct FeedbackEntry {
    /// Stable textual key for the query (grouping re-executions).
    pub query: String,
    /// `|DQ|`.
    pub subset_size: usize,
    /// Predicted seconds for every plan, cheapest first.
    pub predicted: Vec<(PlanKind, f64)>,
    /// The plan that ran.
    pub chosen: PlanKind,
    /// Whether the optimizer picked it (false for forced-plan runs).
    pub chosen_by_optimizer: bool,
    /// Predicted seconds for the plan that ran.
    pub predicted_seconds: f64,
    /// Measured wall-clock seconds.
    pub actual_seconds: f64,
    /// Per-operator `(name, measured raw units, measured seconds)` — the
    /// exact sample shape [`CostModel::fit`] consumes.
    pub observations: Vec<(&'static str, f64, f64)>,
}

impl FeedbackEntry {
    /// Total measured raw units across operators — the optimizer's
    /// actual-units accounting for this execution.
    pub fn total_units(&self) -> f64 {
        self.observations.iter().map(|(_, u, _)| u).sum()
    }
}

/// A detected optimizer mispick: on some query, a plan the optimizer
/// passed over was observed running faster than the plan it chose.
#[derive(Debug, Clone, Serialize)]
pub struct Mispick {
    /// The query key.
    pub query: String,
    /// What the optimizer chose.
    pub chosen: PlanKind,
    /// Best observed seconds for the chosen plan.
    pub chosen_seconds: f64,
    /// The plan that beat it.
    pub better: PlanKind,
    /// Best observed seconds for that plan.
    pub better_seconds: f64,
}

/// Bounded, thread-safe log of observed executions. The framework records
/// every execution it runs; the log keeps the most recent
/// [`FeedbackLog::capacity`] entries (older ones are evicted FIFO).
#[derive(Debug)]
pub struct FeedbackLog {
    entries: Mutex<VecDeque<FeedbackEntry>>,
    capacity: usize,
    /// Bumped on every mutation ([`FeedbackLog::record`] / `clear`), so
    /// [`FeedbackLog::mispicks`] can tell whether its cached result is
    /// still current without rescanning the ring.
    generation: AtomicU64,
    /// `(generation the result was computed at, the result)`. `/stats`
    /// polls mispick counts per request; without this cache every poll
    /// would redo an O(capacity) scan of an unchanged log.
    mispick_cache: Mutex<(Option<u64>, Arc<Vec<Mispick>>)>,
}

impl Default for FeedbackLog {
    fn default() -> Self {
        FeedbackLog::new(1024)
    }
}

impl FeedbackLog {
    /// A log retaining at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        FeedbackLog {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            generation: AtomicU64::new(0),
            mispick_cache: Mutex::new((None, Arc::new(Vec::new()))),
        }
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one executed answer against the decision that produced it.
    pub fn record(
        &self,
        query: &LocalizedQuery,
        choice: &PlanChoice,
        answer: &QueryAnswer,
        chosen_by_optimizer: bool,
    ) {
        let entry = FeedbackEntry {
            query: format!("{query:?}"),
            subset_size: answer.subset_size,
            predicted: choice
                .estimates
                .iter()
                .map(|e| (e.plan, e.total()))
                .collect(),
            chosen: answer.plan,
            chosen_by_optimizer,
            predicted_seconds: choice.estimate_for(answer.plan).total(),
            actual_seconds: answer.trace.total.as_secs_f64(),
            observations: answer
                .trace
                .ops
                .iter()
                .map(|o| (o.name(), o.units, o.duration.as_secs_f64()))
                .collect(),
        };
        let mut entries = self.entries.lock();
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Clone out the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<FeedbackEntry> {
        self.entries.lock().iter().cloned().collect()
    }

    /// Drop all retained entries.
    pub fn clear(&self) {
        self.entries.lock().clear();
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Every `(operator, units, seconds)` observation across retained
    /// entries — the sample set [`CostModel::fit`] consumes.
    pub fn observations(&self) -> Vec<(&'static str, f64, f64)> {
        self.entries
            .lock()
            .iter()
            .flat_map(|e| e.observations.iter().copied())
            .collect()
    }

    /// Detected mispicks: for each query key, compare the best observed
    /// time of each optimizer-chosen plan against the best observed time
    /// of every other plan that ran on the same query (via forced-plan or
    /// ANALYZE executions). One mispick per offending query, reporting the
    /// biggest winner.
    ///
    /// The result is memoized against the log's mutation generation:
    /// repeated calls on an unchanged log (the `/stats` polling pattern)
    /// return the cached result instead of rescanning the ring.
    pub fn mispicks(&self) -> Vec<Mispick> {
        self.mispicks_arc().as_ref().clone()
    }

    /// Number of detected mispicks (see [`FeedbackLog::mispicks`]) without
    /// cloning out the full list — the cheap form `/stats` wants.
    pub fn mispick_count(&self) -> usize {
        self.mispicks_arc().len()
    }

    /// Shared memoized mispick list. Recomputes only when the log's
    /// generation has moved past the cached one; a concurrent `record`
    /// between the generation load and the scan at worst caches a result
    /// one generation stale, which the next call repairs.
    fn mispicks_arc(&self) -> Arc<Vec<Mispick>> {
        let generation = self.generation.load(Ordering::Acquire);
        let mut cache = self.mispick_cache.lock();
        if cache.0 == Some(generation) {
            return Arc::clone(&cache.1);
        }
        let computed = Arc::new(self.compute_mispicks());
        *cache = (Some(generation), Arc::clone(&computed));
        computed
    }

    /// The O(capacity) scan behind [`FeedbackLog::mispicks`].
    fn compute_mispicks(&self) -> Vec<Mispick> {
        /// Per-plan best observed seconds, keyed by plan name.
        type PlanBests = std::collections::BTreeMap<&'static str, (PlanKind, f64)>;
        let entries = self.entries.lock();
        // query key → per-plan best observed seconds (+ the optimizer's
        // chosen plan, when any entry for the key was optimizer-driven).
        let mut by_query: std::collections::BTreeMap<&str, (Option<PlanKind>, PlanBests)> =
            std::collections::BTreeMap::new();
        for e in entries.iter() {
            let slot = by_query.entry(e.query.as_str()).or_default();
            if e.chosen_by_optimizer {
                slot.0 = Some(e.chosen);
            }
            let best = slot.1.entry(e.chosen.name()).or_insert((e.chosen, f64::INFINITY));
            if e.actual_seconds < best.1 {
                best.1 = e.actual_seconds;
            }
        }
        let mut out = Vec::new();
        for (query, (chosen, plans)) in by_query {
            let Some(chosen) = chosen else { continue };
            let Some(&(_, chosen_seconds)) = plans.get(chosen.name()) else {
                continue;
            };
            let beaten = plans
                .values()
                .filter(|(p, secs)| *p != chosen && *secs < chosen_seconds)
                .min_by(|a, b| a.1.total_cmp(&b.1));
            if let Some(&(better, better_seconds)) = beaten {
                out.push(Mispick {
                    query: query.to_string(),
                    chosen,
                    chosen_seconds,
                    better,
                    better_seconds,
                });
            }
        }
        out
    }
}

/// Cost-based plan selector.
#[derive(Debug, Clone)]
pub struct Optimizer {
    model: CostModel,
}

impl Optimizer {
    /// Build an optimizer over a cost model.
    pub fn new(model: CostModel) -> Self {
        Optimizer { model }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Mutable access (calibration).
    pub fn model_mut(&mut self) -> &mut CostModel {
        &mut self.model
    }

    /// Choose the cheapest plan for a query over a resolved subset.
    pub fn choose(
        &self,
        index: &MipIndex,
        query: &LocalizedQuery,
        subset: &FocalSubset,
    ) -> PlanChoice {
        self.choose_with_reuse(index, query, subset, crate::cost::SelectReuse::Fresh)
    }

    /// [`Optimizer::choose`] with a session-provided hint describing how
    /// the ARM plan's SELECT would actually be served (cached columns
    /// beat the fresh scan the standalone profile assumes), so the plan
    /// comparison reflects the execution about to happen.
    pub fn choose_with_reuse(
        &self,
        index: &MipIndex,
        query: &LocalizedQuery,
        subset: &FocalSubset,
        reuse: crate::cost::SelectReuse,
    ) -> PlanChoice {
        let mut profile = index.query_profile(query, subset);
        profile.select_reuse = reuse;
        let estimates = self.model.estimate_all(&profile);
        PlanChoice {
            chosen: estimates[0].plan,
            estimates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostConstants;
    use crate::mip::{MipIndex, MipIndexConfig};
    use colarm_data::synth::salary;
    use colarm_data::RangeSpec;

    fn optimizer_and_index() -> (Optimizer, MipIndex) {
        let index = MipIndex::build(
            salary(),
            MipIndexConfig {
                primary_support: 0.2,
                ..MipIndexConfig::default()
            },
        )
        .unwrap();
        let model = CostModel {
            stats: index.stats().clone(),
            constants: CostConstants::default(),
        };
        (Optimizer::new(model), index)
    }

    #[test]
    fn choose_returns_all_estimates_sorted() {
        let (opt, index) = optimizer_and_index();
        let schema = index.dataset().schema().clone();
        let query = crate::query::LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.85)
            .build().unwrap();
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        let choice = opt.choose(&index, &query, &subset);
        assert_eq!(choice.estimates.len(), PlanKind::ALL.len());
        assert_eq!(choice.chosen, choice.estimates[0].plan);
        for w in choice.estimates.windows(2) {
            assert!(w[0].total() <= w[1].total());
        }
        assert!(choice.estimated_cost() > 0.0);
        assert_eq!(choice.estimate_for(PlanKind::Arm).plan, PlanKind::Arm);
    }

    fn synthetic_choice() -> PlanChoice {
        use crate::cost::{CostEstimate, CostTerm};
        use crate::ops::OpKind;
        PlanChoice {
            chosen: PlanKind::Sev,
            estimates: PlanKind::ALL
                .iter()
                .map(|&p| CostEstimate {
                    plan: p,
                    terms: vec![CostTerm {
                        op: OpKind::Search,
                        units: 1.0,
                        seconds: 1e-6,
                        stats_source: crate::stats::StatsSource::GlobalFallback,
                    }],
                })
                .collect(),
        }
    }

    fn synthetic_answer(plan: PlanKind, secs: f64) -> QueryAnswer {
        QueryAnswer {
            plan,
            rules: Vec::new(),
            subset_size: 4,
            trace: crate::plan::ExecutionTrace {
                ops: Vec::new(),
                total: std::time::Duration::from_secs_f64(secs),
            },
        }
    }

    #[test]
    fn feedback_log_records_and_detects_mispicks() {
        let query = crate::query::LocalizedQuery::builder().build().unwrap();
        let choice = synthetic_choice();
        let log = FeedbackLog::new(8);
        log.record(&query, &choice, &synthetic_answer(PlanKind::Sev, 2e-3), true);
        log.record(&query, &choice, &synthetic_answer(PlanKind::Arm, 1e-3), false);
        assert_eq!(log.len(), 2);
        let mis = log.mispicks();
        assert_eq!(mis.len(), 1);
        assert_eq!(mis[0].chosen, PlanKind::Sev);
        assert_eq!(mis[0].better, PlanKind::Arm);
        assert!(mis[0].better_seconds < mis[0].chosen_seconds);
        // No mispick when the chosen plan is the fastest observed.
        log.clear();
        log.record(&query, &choice, &synthetic_answer(PlanKind::Sev, 1e-4), true);
        log.record(&query, &choice, &synthetic_answer(PlanKind::Arm, 1e-3), false);
        assert!(log.mispicks().is_empty());
        // Forced-only executions never accuse the optimizer.
        log.clear();
        log.record(&query, &choice, &synthetic_answer(PlanKind::Sev, 2e-3), false);
        log.record(&query, &choice, &synthetic_answer(PlanKind::Arm, 1e-3), false);
        assert!(log.mispicks().is_empty());
    }

    #[test]
    fn mispicks_are_memoized_until_the_log_changes() {
        let query = crate::query::LocalizedQuery::builder().build().unwrap();
        let choice = synthetic_choice();
        let log = FeedbackLog::new(8);
        log.record(&query, &choice, &synthetic_answer(PlanKind::Sev, 2e-3), true);
        log.record(&query, &choice, &synthetic_answer(PlanKind::Arm, 1e-3), false);
        // Repeated reads of an unchanged log hit the cache: same Arc.
        let first = log.mispicks_arc();
        let second = log.mispicks_arc();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(log.mispick_count(), 1);
        // A new recording invalidates the cache and updates the answer:
        // the optimizer's pick now ties for fastest, so no mispick.
        log.record(&query, &choice, &synthetic_answer(PlanKind::Sev, 1e-4), true);
        let third = log.mispicks_arc();
        assert!(!Arc::ptr_eq(&second, &third));
        assert_eq!(log.mispick_count(), 0);
        // clear() also invalidates.
        log.clear();
        assert_eq!(log.mispick_count(), 0);
        assert!(log.mispicks().is_empty());
    }

    #[test]
    fn feedback_log_is_bounded_fifo() {
        let choice = synthetic_choice();
        let log = FeedbackLog::new(2);
        for minsupp in [0.3, 0.4, 0.5] {
            let query = crate::query::LocalizedQuery::builder()
                .minsupp(minsupp)
                .build()
                .unwrap();
            log.record(&query, &choice, &synthetic_answer(PlanKind::Sev, 1e-3), true);
        }
        assert_eq!(log.len(), 2);
        let snap = log.snapshot();
        // The oldest entry (minsupp 0.3) was evicted.
        assert!(snap[0].query.contains("0.4"));
        assert!(snap[1].query.contains("0.5"));
        assert_eq!(snap[0].predicted.len(), PlanKind::ALL.len());
    }

    #[test]
    fn choice_is_deterministic() {
        let (opt, index) = optimizer_and_index();
        let query = crate::query::LocalizedQuery::builder().build().unwrap();
        let subset = index.resolve_subset(RangeSpec::all()).unwrap();
        let a = opt.choose(&index, &query, &subset);
        let b = opt.choose(&index, &query, &subset);
        assert_eq!(a.chosen, b.chosen);
    }
}
