//! Schemas: ordered attribute catalogs with the global item encoding.

use crate::attribute::{Attribute, AttributeId, Item, ItemId, ValueId};
use crate::error::DataError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// An ordered collection of nominal attributes.
///
/// The schema owns the dense [`ItemId`] encoding: attribute `a`'s value `v`
/// maps to `offsets[a] + v`. All itemset geometry (paper Figure 1) is
/// derived from the schema: the bounding box of an itemset spans the single
/// selected value on attributes the itemset constrains and the full domain
/// on every other attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "SchemaData", into = "SchemaData")]
pub struct Schema {
    attributes: Vec<Attribute>,
    /// `offsets[a]` = first item id of attribute `a`; a final sentinel holds
    /// the total item count.
    offsets: Vec<u32>,
    by_name: HashMap<String, AttributeId>,
}

/// Serialized form of a schema: only the attributes are stored; the item
/// offsets and the name-lookup map are derived on deserialization.
#[derive(Serialize, Deserialize)]
struct SchemaData {
    attributes: Vec<Attribute>,
}

impl TryFrom<SchemaData> for Schema {
    type Error = DataError;
    fn try_from(data: SchemaData) -> Result<Self, DataError> {
        Schema::new(data.attributes)
    }
}

impl From<Schema> for SchemaData {
    fn from(schema: Schema) -> SchemaData {
        SchemaData {
            attributes: schema.attributes,
        }
    }
}

impl Schema {
    /// Build a schema from attributes, rejecting duplicate names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, DataError> {
        let mut by_name = HashMap::with_capacity(attributes.len());
        let mut offsets = Vec::with_capacity(attributes.len() + 1);
        let mut next = 0u32;
        for (i, attr) in attributes.iter().enumerate() {
            if by_name
                .insert(attr.name().to_string(), AttributeId(i as u16))
                .is_some()
            {
                return Err(DataError::DuplicateAttribute(attr.name().to_string()));
            }
            offsets.push(next);
            next += attr.domain_size() as u32;
        }
        offsets.push(next);
        Ok(Schema {
            attributes,
            offsets,
            by_name,
        })
    }

    /// Number of attributes (`n` in the paper).
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Total number of distinct items across all attributes.
    pub fn num_items(&self) -> usize {
        *self.offsets.last().unwrap_or(&0) as usize
    }

    /// The attribute with the given id.
    pub fn attribute(&self, id: AttributeId) -> &Attribute {
        &self.attributes[id.index()]
    }

    /// All attributes in schema order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Look an attribute up by name.
    pub fn attribute_by_name(&self, name: &str) -> Result<AttributeId, DataError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Encode an `(attribute, value)` pair as a global item id.
    #[inline]
    pub fn encode(&self, attribute: AttributeId, value: ValueId) -> ItemId {
        debug_assert!((value as usize) < self.attribute(attribute).domain_size());
        ItemId(self.offsets[attribute.index()] + value as u32)
    }

    /// Encode by attribute and value *names*.
    pub fn encode_named(&self, attribute: &str, value: &str) -> Result<ItemId, DataError> {
        let aid = self.attribute_by_name(attribute)?;
        let v = self
            .attribute(aid)
            .value_code(value)
            .ok_or_else(|| DataError::UnknownValue {
                attribute: attribute.to_string(),
                value: value.to_string(),
            })?;
        Ok(self.encode(aid, v))
    }

    /// Decode a global item id back to its `(attribute, value)` pair.
    #[inline]
    pub fn decode(&self, item: ItemId) -> Item {
        let a = match self.offsets.binary_search(&item.0) {
            Ok(i) if i < self.attributes.len() => i,
            Ok(i) => i - 1, // sentinel hit can only happen on malformed ids
            Err(i) => i - 1,
        };
        Item {
            attribute: AttributeId(a as u16),
            value: (item.0 - self.offsets[a]) as ValueId,
        }
    }

    /// Attribute that a global item id belongs to.
    #[inline]
    pub fn item_attribute(&self, item: ItemId) -> AttributeId {
        self.decode(item).attribute
    }

    /// Human-readable `Attr=Value` label for an item.
    pub fn item_label(&self, item: ItemId) -> String {
        let it = self.decode(item);
        let attr = self.attribute(it.attribute);
        format!(
            "{}={}",
            attr.name(),
            attr.value_label(it.value).unwrap_or("?")
        )
    }

    /// First item id of the given attribute (items of attribute `a` are the
    /// contiguous range `item_base(a) .. item_base(a) + domain_size`).
    #[inline]
    pub fn item_base(&self, attribute: AttributeId) -> u32 {
        self.offsets[attribute.index()]
    }

    /// Iterate over all `(AttributeId, domain_size)` pairs.
    pub fn dimensions(&self) -> impl Iterator<Item = (AttributeId, usize)> + '_ {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttributeId(i as u16), a.domain_size()))
    }

}

/// Fluent builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attributes: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Start an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a nominal attribute with the given value domain.
    pub fn attribute(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.attributes.push(Attribute::new(name, values));
        self
    }

    /// Finish, validating attribute-name uniqueness.
    pub fn build(self) -> Result<Arc<Schema>, DataError> {
        Schema::new(self.attributes).map(Arc::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .attribute("Age", ["20-30", "30-40", "40-50"])
            .attribute("Salary", ["low", "mid", "high", "top"])
            .attribute("Gender", ["M", "F"])
            .build()
            .unwrap()
    }

    #[test]
    fn encode_decode_round_trip_all_items() {
        let s = schema();
        assert_eq!(s.num_items(), 9);
        for (aid, dom) in s.dimensions() {
            for v in 0..dom as ValueId {
                let id = s.encode(aid, v);
                let item = s.decode(id);
                assert_eq!(item.attribute, aid);
                assert_eq!(item.value, v);
                assert_eq!(s.item_attribute(id), aid);
            }
        }
    }

    #[test]
    fn named_encoding_and_labels() {
        let s = schema();
        let id = s.encode_named("Salary", "high").unwrap();
        assert_eq!(id, ItemId(3 + 2));
        assert_eq!(s.item_label(id), "Salary=high");
        assert!(matches!(
            s.encode_named("Salary", "gigantic"),
            Err(DataError::UnknownValue { .. })
        ));
        assert!(matches!(
            s.encode_named("Bonus", "high"),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = SchemaBuilder::new()
            .attribute("A", ["x"])
            .attribute("A", ["y"])
            .build()
            .unwrap_err();
        assert_eq!(err, DataError::DuplicateAttribute("A".into()));
    }

    #[test]
    fn serde_round_trip_restores_lookup() {
        let s = schema();
        let json = serde_json::to_string(&*s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(back, *s);
        // The regression this guards: the name lookup must work after
        // deserialization.
        assert_eq!(back.attribute_by_name("Gender"), s.attribute_by_name("Gender"));
        assert_eq!(back.num_items(), s.num_items());
    }

    #[test]
    fn item_ranges_are_contiguous_per_attribute() {
        let s = schema();
        assert_eq!(s.item_base(AttributeId(0)), 0);
        assert_eq!(s.item_base(AttributeId(1)), 3);
        assert_eq!(s.item_base(AttributeId(2)), 7);
    }
}
