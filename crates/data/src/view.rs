//! Borrowed-slice views over externally owned memory.
//!
//! A [`SliceView`] is a `&'static [T]` bundled with an `Arc` to the
//! [`ViewOwner`] that keeps the underlying bytes alive — the building
//! block of the zero-copy snapshot path, where tidset containers borrow
//! their payloads straight out of a memory-mapped COLARMIX file instead
//! of decoding into owned vectors.
//!
//! This module contains **no unsafe code**. Through safe Rust the only
//! slices a caller can supply really are `'static` (e.g. leaked or
//! constant data), for which any owner is trivially sufficient. The one
//! place that fabricates a `'static` lifetime for mapped memory is the
//! audited `colarm::persist::mmap` module, whose safety argument is
//! exactly the pairing enforced here: every fabricated slice travels
//! inside a `SliceView` holding an `Arc` to its mapping, so the mapping
//! is never unmapped while a view (and hence any borrow derived from
//! it) exists. Kernels only ever access the data through
//! [`SliceView::as_slice`], whose lifetime is tied to the view itself.

use std::fmt;
use std::sync::Arc;

/// Marker for the owner of a [`SliceView`]'s backing memory. The sole
/// obligation is lifetime: the bytes a view points into must stay valid
/// (and unchanged) until the owner is dropped.
pub trait ViewOwner: Send + Sync + fmt::Debug {}

/// A borrowed slice plus the shared owner keeping it alive.
pub struct SliceView<T: 'static> {
    slice: &'static [T],
    owner: Arc<dyn ViewOwner>,
}

impl<T: 'static> SliceView<T> {
    /// Bundle `slice` with the `owner` that guarantees its lifetime.
    ///
    /// Safe by construction: safe callers can only produce genuinely
    /// `'static` slices. Unsafe callers (the snapshot mapper) discharge
    /// their lifetime obligation by passing the mapping itself as the
    /// owner.
    pub fn new(slice: &'static [T], owner: Arc<dyn ViewOwner>) -> Self {
        SliceView { slice, owner }
    }

    /// The viewed elements. The borrow is tied to `self`, so the owner
    /// (held by `self`) outlives every use of the slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        self.slice
    }

    /// Number of elements viewed.
    #[inline]
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }
}

impl<T: 'static> Clone for SliceView<T> {
    fn clone(&self) -> Self {
        SliceView {
            slice: self.slice,
            owner: Arc::clone(&self.owner),
        }
    }
}

impl<T: fmt::Debug + 'static> fmt::Debug for SliceView<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SliceView")
            .field("len", &self.slice.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct StaticOwner;
    impl ViewOwner for StaticOwner {}

    #[test]
    fn static_slices_view_trivially() {
        static DATA: [u16; 4] = [1, 2, 3, 4];
        let v = SliceView::new(&DATA, Arc::new(StaticOwner));
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        let w = v.clone();
        assert_eq!(w.as_slice(), v.as_slice());
    }
}
