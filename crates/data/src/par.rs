//! Deterministic fork-join parallelism over `std::thread::scope`.
//!
//! The operator loops of the COLARM plans (ELIMINATE's per-candidate
//! support checks, VERIFY's per-candidate rule generation) and the
//! offline index build are embarrassingly parallel, but the system
//! promises *bit-identical* results at every thread count — mined rule
//! sets, `OpTrace` unit accounting, even CFI numbering must not depend on
//! scheduling. The helper here therefore returns results **in input
//! order** regardless of which worker computed what; callers fold unit
//! counters and merge outputs in that order, which makes thread count an
//! invisible knob.
//!
//! No external thread-pool dependency: scoped threads are spawned per
//! call. That costs a few microseconds per invocation, which is noise for
//! the workloads that opt in (callers keep their sequential path for
//! small inputs).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global default thread count. `0` = not yet resolved; resolution reads
/// `COLARM_THREADS` and falls back to the machine's available parallelism.
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The session-wide default thread count: the last `set_max_threads`
/// value, else `COLARM_THREADS`, else the machine's available
/// parallelism. Always ≥ 1.
pub fn max_threads() -> usize {
    let v = MAX_THREADS.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let resolved = std::env::var("COLARM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });
    MAX_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Set the session-wide default thread count (clamped to ≥ 1). `1`
/// forces every parallel-capable path onto today's sequential code.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Resolve a caller-supplied thread knob: `0` means "use the global
/// default", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        max_threads()
    } else {
        threads
    }
}

/// Map `f` over `items` on up to `threads` scoped workers, returning the
/// results **in input order** — the output is identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` for any
/// thread count, including the unit-sum folds callers do over it.
///
/// Work is distributed dynamically (chunked atomic counter), so skewed
/// per-item costs — one CHARM branch exploring a deep subtree while its
/// siblings finish instantly — still balance. `threads <= 1` or a single
/// item runs inline with no thread spawned.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Hand out small index chunks to keep contention low while still
    // load-balancing skewed items.
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            local.push((i, f(i, &items[i])));
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Scatter worker-local results back to input order.
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            debug_assert!(out[i].is_none());
            out[i] = Some(r);
        }
    }
    out.into_iter().map(|r| r.expect("every index computed")).collect()
}

/// [`parallel_map`] for item functions that also produce a metric — cost
/// units, execution counters ([`crate::metrics::Meter`]) — folding the
/// metric halves **in input order** into one accumulator. The result is
/// identical to mapping sequentially and summing left-to-right at any
/// thread count, which is what keeps operator unit totals and metric
/// counters bit-exact under parallelism.
pub fn parallel_map_fold<T, R, M, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, M)
where
    T: Sync,
    R: Send,
    M: Send + Default + std::ops::AddAssign<M>,
    F: Fn(usize, &T) -> (R, M) + Sync,
{
    let pairs = parallel_map(items, threads, f);
    let mut acc = M::default();
    let mut out = Vec::with_capacity(pairs.len());
    for (r, m) in pairs {
        acc += m;
        out.push(r);
    }
    (out, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i as u32, x);
                x * 2
            });
            assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u8], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn skewed_workloads_balance() {
        // One item 1000× heavier than the rest must not serialize the rest
        // behind it; correctness (ordering) is what we assert.
        let items: Vec<usize> = (0..64).collect();
        let got = parallel_map(&items, 4, |_, &x| {
            let spins = if x == 0 { 100_000 } else { 100 };
            (0..spins).fold(x, |acc, _| std::hint::black_box(acc))
        });
        assert_eq!(got, items);
    }

    #[test]
    fn map_fold_matches_sequential_sum_at_any_thread_count() {
        let items: Vec<u64> = (0..500).collect();
        let reference: u64 = items.iter().map(|&x| x * 3).sum();
        for threads in [1, 2, 5, 16] {
            let (out, total) = parallel_map_fold(&items, threads, |_, &x| (x, x * 3));
            assert_eq!(out, items);
            assert_eq!(total, reference);
        }
    }

    #[test]
    fn thread_knob_round_trips() {
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        assert_eq!(resolve_threads(0), 3);
        assert_eq!(resolve_threads(7), 7);
        set_max_threads(0); // clamps to 1
        assert_eq!(max_threads(), 1);
        set_max_threads(2);
        assert_eq!(max_threads(), 2);
    }
}
