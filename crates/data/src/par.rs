//! Deterministic fork-join parallelism over a persistent worker pool.
//!
//! The operator loops of the COLARM plans (ELIMINATE's per-candidate
//! support checks, VERIFY's per-candidate rule generation) and the
//! offline index build are embarrassingly parallel, but the system
//! promises *bit-identical* results at every thread count — mined rule
//! sets, `OpTrace` unit accounting, even CFI numbering must not depend on
//! scheduling. The helpers here therefore return results **in input
//! order** regardless of which worker computed what; callers fold unit
//! counters and merge outputs in that order, which makes thread count an
//! invisible knob.
//!
//! No external thread-pool dependency. Workers are spawned lazily on the
//! first parallel region that needs them and then *persist*, parked on a
//! condvar between regions — an interactive session issuing many queries
//! pays the thread-spawn cost once, not per `parallel_map` call. Work
//! distribution inside a region is a chunked atomic cursor (identical to
//! the original scoped-thread design), so chunk boundaries — and with
//! them every fold order — depend only on the input size, never on which
//! thread ran first.
//!
//! ## Soundness of borrowed work
//!
//! A parallel region's closure may borrow from the submitting thread's
//! stack even though pool workers are `'static` threads. This is sound
//! because `Pool::run` never returns *or unwinds* until the region is
//! over: the submitting thread participates in its own region (so
//! progress never depends on a pool worker being free — nested regions
//! from inside a worker stay deadlock-free), then revokes all unclaimed
//! worker slots and blocks until every claimed slot has finished. That
//! teardown runs from a drop guard, so a panic in the submitter's own
//! share of the work performs the same revoke-and-wait before the job
//! descriptor leaves the stack. On the worker side every region closure
//! runs under `catch_unwind`: a panicking closure still lowers `pending`
//! and wakes the submitter (no hang, no dead accounting), and the first
//! captured payload is re-thrown on the submitting thread once the
//! region is fully quiesced — matching the join-propagation semantics of
//! the scoped executor this pool replaced. The job descriptor and
//! closure therefore strictly outlive every access from the pool.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Explicit [`set_max_threads`] override; `0` = no override set.
static OVERRIDE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Environment default, resolved exactly once per process. Single-shot
/// resolution means a mid-session `COLARM_THREADS` change cannot flip the
/// resolved default between two operators of one query.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

fn env_default() -> usize {
    std::env::var("COLARM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The session-wide default thread count: the last `set_max_threads`
/// value, else `COLARM_THREADS` (read once), else the machine's available
/// parallelism. Always ≥ 1.
pub fn max_threads() -> usize {
    let v = OVERRIDE_THREADS.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    *DEFAULT_THREADS.get_or_init(env_default)
}

/// Set the session-wide default thread count (clamped to ≥ 1). `1`
/// forces every parallel-capable path onto the sequential code.
pub fn set_max_threads(n: usize) {
    OVERRIDE_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Resolve a caller-supplied thread knob: `0` means "use the global
/// default", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        max_threads()
    } else {
        threads
    }
}

/// Hard cap on persistent pool workers; regions asking for more run with
/// the submitting thread plus however many workers exist.
const POOL_MAX_WORKERS: usize = 64;

/// When set, parallel regions run on freshly spawned scoped threads — the
/// executor the persistent pool replaced — instead of pool workers.
static SCOPED_EXECUTOR: AtomicBool = AtomicBool::new(false);

/// Route parallel regions through the per-call `std::thread::scope`
/// executor (`true`) or the persistent pool (`false`, the default).
///
/// Both executors drain the same chunked cursor, so results are
/// bit-identical either way; only the region setup cost differs (a
/// spawn + join per worker per region on the scoped path). Kept as a
/// kill switch for the pool and as the baseline side of `bench_session`,
/// which measures the pool against the executor it replaced.
pub fn set_scoped_executor(on: bool) {
    SCOPED_EXECUTOR.store(on, Ordering::Relaxed);
}

/// Whether regions currently run on the scoped fallback executor.
pub fn scoped_executor() -> bool {
    SCOPED_EXECUTOR.load(Ordering::Relaxed)
}

/// The pre-pool executor: spawn `extra` scoped threads for this one
/// region and join them all before returning. Same work closure and
/// cursor as the pooled path, strictly more setup cost.
fn scoped_run(extra: usize, work: &(dyn Fn() + Sync)) {
    std::thread::scope(|scope| {
        for _ in 0..extra {
            scope.spawn(work);
        }
        work();
    });
}

/// Snapshot of the persistent pool's process-wide counters, taken with
/// [`pool_stats`]. All-zero until the first parallel region starts the
/// pool. `workers` is a level (current pool size); the rest are monotonic
/// counters — diff two snapshots with [`PoolStats::delta_since`] to
/// attribute activity to a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PoolStats {
    /// Persistent workers spawned so far (workers never exit).
    pub workers: u64,
    /// Parallel regions submitted to the pool.
    pub tasks_submitted: u64,
    /// Worker slots claimed by pool workers. The submitting thread always
    /// participates in its own region and is not counted here.
    pub steals: u64,
    /// Times a worker parked on the condvar with no work queued.
    pub parks: u64,
    /// Times a parked worker woke up.
    pub unparks: u64,
}

impl PoolStats {
    /// Counter movement since `earlier`. `workers` reports the current
    /// level rather than a difference.
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            workers: self.workers,
            tasks_submitted: self.tasks_submitted.saturating_sub(earlier.tasks_submitted),
            steals: self.steals.saturating_sub(earlier.steals),
            parks: self.parks.saturating_sub(earlier.parks),
            unparks: self.unparks.saturating_sub(earlier.unparks),
        }
    }
}

/// Current pool counters (all zero if no parallel region has run yet).
pub fn pool_stats() -> PoolStats {
    match POOL.get() {
        None => PoolStats::default(),
        Some(pool) => PoolStats {
            workers: pool.lock_state().spawned as u64,
            tasks_submitted: pool.tasks_submitted.load(Ordering::Relaxed),
            steals: pool.steals.load(Ordering::Relaxed),
            parks: pool.parks.load(Ordering::Relaxed),
            unparks: pool.unparks.load(Ordering::Relaxed),
        },
    }
}

/// One parallel region, living on the submitting thread's stack for the
/// duration of [`Pool::run`]. All field accesses happen under the pool
/// mutex except the immutable `func` read.
struct JobCore {
    /// The region's work closure, lifetime-erased. Valid until `Pool::run`
    /// returns, which waits for `pending == 0` first.
    func: *const (dyn Fn() + Sync),
    /// Worker slots not yet claimed.
    slots: usize,
    /// Claimed slots still executing.
    pending: usize,
    /// First panic payload caught on a pool worker, re-thrown by the
    /// submitter once the region has quiesced.
    panicked: Option<Box<dyn Any + Send>>,
}

/// Queue entry pointing at a `JobCore` on a submitter's stack.
struct JobRef(*mut JobCore);

// SAFETY: the pointee is only dereferenced under the pool mutex (slot
// accounting) or after a claim made under it (the `func` call), and
// `Pool::run` keeps the pointee alive until `pending == 0`.
unsafe impl Send for JobRef {}

struct PoolState {
    queue: VecDeque<JobRef>,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Doubles as "work available" (workers park here) and "slot
    /// finished" (submitters wait here); spurious wakeups just re-scan.
    cv: Condvar,
    tasks_submitted: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                spawned: 0,
            }),
            cv: Condvar::new(),
            tasks_submitted: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
        })
    }

    /// Lock the pool state. The pool's invariants never depend on a
    /// poison-free mutex (panics in region closures are caught before
    /// the lock is retaken), so a poisoned guard is safe to adopt — and
    /// must be, because the teardown in [`RegionGuard::drop`] cannot be
    /// allowed to double-panic.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Grow the pool to at least `want` workers (capped). The worker
    /// count is *reserved* under the lock but the spawn syscalls happen
    /// outside it, so concurrent submitters and finishing workers are
    /// not serialized behind thread creation. If the OS refuses a spawn,
    /// the unfilled reservation is returned and the pool simply runs
    /// with fewer workers — regions still complete because the
    /// submitting thread always participates in its own region.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(POOL_MAX_WORKERS);
        let (first, target) = {
            let mut st = self.lock_state();
            if st.spawned >= want {
                return;
            }
            let first = st.spawned;
            st.spawned = want;
            (first, want)
        };
        for id in first..target {
            let spawned = std::thread::Builder::new()
                .name(format!("colarm-pool-{id}"))
                .spawn(move || self.worker_loop());
            if spawned.is_err() {
                self.lock_state().spawned -= target - id;
                break;
            }
        }
    }

    /// Claim one worker slot from the front job, dropping the job from
    /// the queue once its last slot is taken.
    fn try_claim(st: &mut PoolState) -> Option<*mut JobCore> {
        let job = st.queue.front()?.0;
        // SAFETY: entries stay queued only while their submitter blocks in
        // `run`, and accounting fields are only touched under this mutex.
        unsafe {
            (*job).slots -= 1;
            (*job).pending += 1;
            if (*job).slots == 0 {
                st.queue.pop_front();
            }
        }
        Some(job)
    }

    fn worker_loop(&'static self) {
        let mut st = self.lock_state();
        loop {
            match Self::try_claim(&mut st) {
                Some(job) => {
                    drop(st);
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    // SAFETY: `pending` was raised under the lock, so the
                    // submitter cannot return (and the closure cannot die)
                    // until we lower it again below.
                    let func = unsafe { &*(*job).func };
                    // Catch panics so an unwinding closure cannot kill
                    // this worker with `pending` still raised — that
                    // would leave the submitter waiting forever. The
                    // payload is handed to the submitter instead.
                    let outcome = panic::catch_unwind(AssertUnwindSafe(func));
                    st = self.lock_state();
                    // SAFETY: accounting under the mutex, as above.
                    unsafe {
                        (*job).pending -= 1;
                        if let Err(payload) = outcome {
                            if (*job).panicked.is_none() {
                                (*job).panicked = Some(payload);
                            }
                        }
                    }
                    // Wake the submitter possibly waiting on completion.
                    self.cv.notify_all();
                }
                None => {
                    self.parks.fetch_add(1, Ordering::Relaxed);
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    self.unparks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Run `work` on the calling thread plus up to `extra` pool workers.
    /// Every participant drains the same chunked cursor, so the region is
    /// over exactly when every claimed slot returns. Blocks until then,
    /// which is what lets `work` borrow from the caller's stack.
    ///
    /// Panic protocol: if `work` unwinds on the calling thread, the
    /// [`RegionGuard`] still revokes unclaimed slots and waits out every
    /// claimed one before the unwind may pass this frame — the `JobCore`
    /// and closure never die while the pool can reach them. If `work`
    /// unwinds on a pool worker, the caught payload is re-thrown here
    /// after the region quiesces (the caller's own panic wins if both
    /// happen).
    fn run(&'static self, extra: usize, work: &(dyn Fn() + Sync)) {
        if extra == 0 {
            work();
            return;
        }
        self.ensure_workers(extra);
        // SAFETY: only erases the borrow lifetime; the revoke-and-wait
        // protocol below keeps `work` alive past every pool access.
        let func = unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work)
        };
        let mut core = JobCore {
            func,
            slots: extra,
            pending: 0,
            panicked: None,
        };
        let core_ptr: *mut JobCore = &mut core;
        self.lock_state().queue.push_back(JobRef(core_ptr));
        self.tasks_submitted.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
        {
            // Armed before the first local `work()` call: teardown must
            // run on the unwind path too, or the pool would outlive the
            // stack memory it points at.
            let _quiesce = RegionGuard {
                pool: self,
                core: core_ptr,
            };
            // Participate: progress never depends on a free pool worker.
            work();
        }
        // Fully quiesced; nothing else references `core`. Propagate the
        // first worker panic like the scoped executor's join would have.
        if let Some(payload) = core.panicked.take() {
            panic::resume_unwind(payload);
        }
    }
}

/// Teardown for one parallel region: revoke every unclaimed worker slot,
/// then block until every claimed slot has finished. Runs from `Drop` so
/// the same quiesce happens whether the submitter's share of the work
/// returns or unwinds — only after it may the `JobCore` leave the stack.
struct RegionGuard {
    pool: &'static Pool,
    core: *mut JobCore,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let mut st = self.pool.lock_state();
        // SAFETY: `core` outlives this guard on the submitter's stack;
        // accounting fields are only touched under the pool mutex.
        unsafe {
            if (*self.core).slots > 0 {
                // Revoke slots nobody claimed — the cursor is drained, so
                // late claimers would only spin on an empty range anyway.
                (*self.core).slots = 0;
                st.queue.retain(|j| j.0 != self.core);
            }
        }
        // Condvar wait loop: `pending` is decremented by workers under the
        // pool mutex, so each wakeup re-reads it under fresh `st`.
        loop {
            if unsafe { (*self.core).pending } == 0 {
                break;
            }
            st = self.pool.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Shared output slots for [`parallel_map`]. Chunk indices from the
/// atomic cursor are disjoint, so each slot is written exactly once.
struct SharedSlots<R>(*mut Option<R>);

impl<R> Clone for SharedSlots<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SharedSlots<R> {}

// SAFETY: writes target disjoint indices and are published to the
// submitter by the pool's mutex handoff; `R: Send` bounds the transfer.
unsafe impl<R: Send> Sync for SharedSlots<R> {}

impl<R> SharedSlots<R> {
    /// Write slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds, claimed by exactly one region participant,
    /// and the backing vector must outlive the region. Going through a
    /// method (rather than touching `.0` in the worker closure) also keeps
    /// closures capturing the `Sync` wrapper, not the raw pointer field.
    unsafe fn write(&self, i: usize, r: R) {
        unsafe { *self.0.add(i) = Some(r) };
    }
}

/// Map `f` over `items` on up to `threads` workers, returning the
/// results **in input order** — the output is identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` for any
/// thread count, including the unit-sum folds callers do over it.
///
/// Work is distributed dynamically (chunked atomic counter), so skewed
/// per-item costs — one CHARM branch exploring a deep subtree while its
/// siblings finish instantly — still balance. `threads <= 1` or a single
/// item runs inline with no pool interaction.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Hand out small index chunks to keep contention low while still
    // load-balancing skewed items. Chunking depends only on the input
    // size and requested width, never on scheduling.
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let slots = SharedSlots(out.as_mut_ptr());
    let work = move || loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        for (i, item) in (start..end).zip(&items[start..end]) {
            let r = f(i, item);
            // SAFETY: `i` comes from a chunk this participant claimed, so
            // no other write targets this slot, and `out` outlives the
            // region (`Pool::run` blocks until every slot finishes).
            unsafe { slots.write(i, r) };
        }
    };
    if scoped_executor() {
        scoped_run(workers - 1, &work);
    } else {
        Pool::global().run(workers - 1, &work);
    }
    out.into_iter().map(|r| r.expect("every index computed")).collect()
}

/// [`parallel_map`] for item functions that also produce a metric — cost
/// units, execution counters ([`crate::metrics::Meter`]) — folding the
/// metric halves **in input order** into one accumulator. The result is
/// identical to mapping sequentially and summing left-to-right at any
/// thread count, which is what keeps operator unit totals and metric
/// counters bit-exact under parallelism.
pub fn parallel_map_fold<T, R, M, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, M)
where
    T: Sync,
    R: Send,
    M: Send + Default + std::ops::AddAssign<M>,
    F: Fn(usize, &T) -> (R, M) + Sync,
{
    let pairs = parallel_map(items, threads, f);
    let mut acc = M::default();
    let mut out = Vec::with_capacity(pairs.len());
    for (r, m) in pairs {
        acc += m;
        out.push(r);
    }
    (out, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Held by every test that either flips the global executor toggle or
    /// asserts on pool counters: regions routed to the scoped executor
    /// don't move `tasks_submitted`/`workers`, so those two kinds of test
    /// must not interleave under the default parallel test harness.
    static EXECUTOR_LOCK: Mutex<()> = Mutex::new(());

    fn executor_lock() -> MutexGuard<'static, ()> {
        EXECUTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i as u32, x);
                x * 2
            });
            assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u8], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn skewed_workloads_balance() {
        // One item 1000× heavier than the rest must not serialize the rest
        // behind it; correctness (ordering) is what we assert.
        let items: Vec<usize> = (0..64).collect();
        let got = parallel_map(&items, 4, |_, &x| {
            let spins = if x == 0 { 100_000 } else { 100 };
            (0..spins).fold(x, |acc, _| std::hint::black_box(acc))
        });
        assert_eq!(got, items);
    }

    #[test]
    fn map_fold_matches_sequential_sum_at_any_thread_count() {
        let items: Vec<u64> = (0..500).collect();
        let reference: u64 = items.iter().map(|&x| x * 3).sum();
        for threads in [1, 2, 5, 16] {
            let (out, total) = parallel_map_fold(&items, threads, |_, &x| (x, x * 3));
            assert_eq!(out, items);
            assert_eq!(total, reference);
        }
    }

    #[test]
    fn thread_knob_round_trips() {
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        assert_eq!(resolve_threads(0), 3);
        assert_eq!(resolve_threads(7), 7);
        set_max_threads(0); // clamps to 1
        assert_eq!(max_threads(), 1);
        set_max_threads(2);
        assert_eq!(max_threads(), 2);
    }

    #[test]
    fn scoped_fallback_matches_pool_bit_for_bit() {
        // The kill-switch executor must be an invisible knob: same results
        // in the same order at every thread count. Results are
        // executor-independent for any concurrent region too, but the
        // lock keeps the toggle from starving counter assertions in
        // `pool_persists_across_regions_and_counts_tasks`.
        let _fence = executor_lock();
        let items: Vec<u64> = (0..777).collect();
        let pooled = parallel_map(&items, 8, |i, &x| x * 7 + i as u64);
        set_scoped_executor(true);
        assert!(scoped_executor());
        let scoped = parallel_map(&items, 8, |i, &x| x * 7 + i as u64);
        set_scoped_executor(false);
        assert_eq!(pooled, scoped);
    }

    #[test]
    fn pool_persists_across_regions_and_counts_tasks() {
        let _fence = executor_lock();
        let before = pool_stats();
        let items: Vec<u64> = (0..512).collect();
        for _ in 0..4 {
            let got = parallel_map(&items, 4, |_, &x| x + 1);
            assert_eq!(got.len(), items.len());
        }
        let after = pool_stats();
        let delta = after.delta_since(&before);
        assert!(delta.tasks_submitted >= 4, "regions went through the pool");
        assert!(after.workers >= 3, "workers persist between regions");
    }

    #[test]
    fn submitter_panic_quiesces_region_before_unwinding() {
        // Index 0 belongs to the first chunk, which the submitter may
        // claim; whoever hits it panics. The RegionGuard must revoke and
        // drain the region before the unwind passes `Pool::run` — if it
        // did not, workers would read the dead JobCore and the next
        // region would crash or corrupt. Surviving many iterations plus
        // the health-check region below is the observable contract.
        for _ in 0..8 {
            let items: Vec<u32> = (0..256).collect();
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                parallel_map(&items, 4, |_, &x| {
                    if x == 0 {
                        panic!("boom in region closure");
                    }
                    x
                })
            }));
            assert!(caught.is_err(), "panic must propagate to the caller");
        }
        let items: Vec<u32> = (0..256).collect();
        assert_eq!(parallel_map(&items, 4, |_, &x| x + 1).len(), items.len());
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        // Force the panic onto a pool worker: the submitter claims the
        // first chunks while workers wake, so panic on the *last* index
        // only after burning time on every item — some claimed slot
        // (often a worker's) hits it. Pre-fix, a worker panic killed the
        // worker with `pending` raised and the submitter waited forever;
        // now the payload must surface as a caller-visible panic and the
        // pool must stay healthy.
        for _ in 0..8 {
            let items: Vec<u32> = (0..512).collect();
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                parallel_map(&items, 8, |_, &x| {
                    std::hint::black_box((0..200).fold(x, |a, _| std::hint::black_box(a)));
                    if x == 511 {
                        panic!("boom on a claimed slot");
                    }
                    x
                })
            }));
            assert!(caught.is_err(), "panic must propagate, not hang");
        }
        let items: Vec<u32> = (0..512).collect();
        assert_eq!(parallel_map(&items, 8, |_, &x| x).len(), items.len());
    }

    #[test]
    fn nested_regions_are_deadlock_free() {
        // A pool worker's item function submits its own parallel region;
        // the submitter always participates, so this cannot deadlock even
        // with every other worker busy.
        let outer: Vec<u32> = (0..16).collect();
        let got = parallel_map(&outer, 8, |_, &x| {
            let inner: Vec<u32> = (0..64).collect();
            parallel_map(&inner, 4, |_, &y| y + x).iter().sum::<u32>()
        });
        let want: Vec<u32> = outer.iter().map(|&x| (0..64).map(|y| y + x).sum()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_submitters_each_get_ordered_results() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    let items: Vec<u64> = (0..700).collect();
                    let got = parallel_map(&items, 4, move |_, &x| x * (t + 1));
                    let want: Vec<u64> = items.iter().map(|&x| x * (t + 1)).collect();
                    assert_eq!(got, want);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
