//! Per-chunk physical containers for the chunked [`super::Tidset`] layout.
//!
//! A tidset partitions the u32 tid universe into 64k-aligned chunks
//! (chunk key = `tid >> 16`); each non-empty chunk stores its low 16 bits
//! in whichever of three layouts is smallest for its contents:
//!
//! * **Array** — a strictly sorted `Vec<u16>` (2 bytes per tid);
//! * **Bitmap** — packed `u64` words, trailing zero words trimmed
//!   (8 bytes per word, at most 1024 words);
//! * **Runs** — sorted maximal `(start, end)` intervals, inclusive, with
//!   a gap of at least one tid between consecutive runs (4 bytes per run).
//!
//! The canonical choice is the byte-smallest layout, ties broken Runs >
//! Array > Bitmap. Because the rule is a pure function of the chunk's
//! *contents* — never of the operation or schedule that produced it —
//! two executions computing the same set always hold the same physical
//! shape, which is what keeps parallel runs and drill-down derivations
//! bit-identical (and lets the snapshot codec reject a flipped container
//! type byte as corruption).
//!
//! Every pairwise operation ([`intersect`], [`intersect_count`],
//! [`union`], [`subtract`], [`is_subset`]) has a kernel specialized to
//! its operand layouts: sorted-u16 merge/gallop for array pairs, word
//! `AND`/`OR`/`ANDNOT` for bitmap pairs, interval merges for run pairs,
//! and probe/mask kernels for the mixed combinations.

use std::cmp::Ordering;
use std::fmt;

use crate::view::SliceView;

/// Number of low bits addressed inside one chunk: chunks span 2^16 tids.
pub(crate) const CHUNK_BITS: u32 = 16;

/// Words of a full chunk bitmap (2^16 bits / 64).
const MAX_WORDS: usize = 1 << (CHUNK_BITS - 6);

/// How lopsided two arrays must be before intersection switches from a
/// linear merge to a gallop over the larger side (inherited from the
/// PR 1 sorted-vector kernel, where the ratio was tuned).
const GALLOP_RATIO: usize = 16;

/// The physical layout of one chunk of a [`super::Tidset`].
///
/// Exposed for instrumentation: the execution-metrics layer classifies
/// each intersection by the container kinds its per-chunk kernels
/// dispatched on, and the cost model summarizes an index's container
/// histogram. The kind is a deterministic function of the chunk's
/// contents, never of scheduling, so totals built from it reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContainerKind {
    /// Strictly sorted `Vec<u16>` of low bits.
    Array,
    /// Packed `u64` bitmap, trailing zero words trimmed.
    Bitmap,
    /// Sorted inclusive `(start, end)` intervals.
    Runs,
}

impl fmt::Display for ContainerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ContainerKind::Array => "array",
            ContainerKind::Bitmap => "bitmap",
            ContainerKind::Runs => "runs",
        })
    }
}

/// One chunk's payload. Invariants (upheld by every constructor here):
/// non-empty; arrays strictly sorted; bitmaps have no trailing zero word,
/// at most [`MAX_WORDS`] words, and `card` equal to the popcount; runs
/// are sorted, satisfy `start <= end`, and leave a gap of at least one
/// tid between consecutive runs.
///
/// The `ArrayView`/`BitmapView` variants are the `Cow`-style borrowed
/// form of the zero-copy snapshot path: the same invariants, but the
/// payload lives in externally owned memory (a mapped COLARMIX v4 file)
/// reached through a [`SliceView`]. A view's *logical* kind — what
/// [`Container::kind`] reports, what equality/hashing/serde observe — is
/// the kind of the layout it views; the owned/borrowed distinction is
/// invisible to every consumer. Runs are always owned (they are tiny and
/// decode is a handful of varints), and any mutation of a view
/// materializes it first ([`Container::make_owned`]).
#[derive(Debug, Clone)]
pub(crate) enum Container {
    /// Strictly sorted low bits.
    Array(Vec<u16>),
    /// Packed bitmap with cached population count.
    Bitmap { words: Vec<u64>, card: u32 },
    /// Sorted maximal inclusive intervals.
    Runs(Vec<(u16, u16)>),
    /// Borrowed `Array` over externally owned memory.
    ArrayView(SliceView<u16>),
    /// Borrowed `Bitmap` over externally owned memory.
    BitmapView { words: SliceView<u64>, card: u32 },
}

/// Borrowed payload of a container, erasing owned-vs-view. All kernels
/// and read-only methods dispatch on this, so borrowed chunks flow
/// through every operation without copying.
#[derive(Clone, Copy)]
pub(crate) enum Repr<'a> {
    Array(&'a [u16]),
    Bitmap { words: &'a [u64], card: u32 },
    Runs(&'a [(u16, u16)]),
}

/// The canonical (byte-smallest) layout for a chunk with `card` tids,
/// `n_runs` maximal runs and highest low-bits `last`: runs cost 4 bytes
/// each, array entries 2 bytes each, and a bitmap 8 bytes per word up to
/// `last`. Ties prefer Runs, then Array — any fixed rule works, as long
/// as it is a pure function of the contents.
pub(crate) fn canonical_kind(card: usize, n_runs: usize, last: u16) -> ContainerKind {
    let run_bytes = 4 * n_runs;
    let array_bytes = 2 * card;
    let bitmap_bytes = 8 * (last as usize / 64 + 1);
    if run_bytes <= array_bytes && run_bytes <= bitmap_bytes {
        ContainerKind::Runs
    } else if array_bytes <= bitmap_bytes {
        ContainerKind::Array
    } else {
        ContainerKind::Bitmap
    }
}

impl Container {
    /// The borrowed payload, erasing owned-vs-view.
    #[inline]
    pub(crate) fn repr(&self) -> Repr<'_> {
        match self {
            Container::Array(v) => Repr::Array(v),
            Container::Bitmap { words, card } => Repr::Bitmap { words, card: *card },
            Container::Runs(r) => Repr::Runs(r),
            Container::ArrayView(v) => Repr::Array(v.as_slice()),
            Container::BitmapView { words, card } => Repr::Bitmap {
                words: words.as_slice(),
                card: *card,
            },
        }
    }

    /// Number of tids stored.
    pub(crate) fn card(&self) -> usize {
        match self.repr() {
            Repr::Array(v) => v.len(),
            Repr::Bitmap { card, .. } => card as usize,
            Repr::Runs(r) => r.iter().map(|&(s, e)| (e - s) as usize + 1).sum(),
        }
    }

    /// The *logical* layout in use: a view reports the kind of the layout
    /// it borrows, so shape-derived statistics and costing never observe
    /// the owned/borrowed distinction.
    pub(crate) fn kind(&self) -> ContainerKind {
        match self.repr() {
            Repr::Array(_) => ContainerKind::Array,
            Repr::Bitmap { .. } => ContainerKind::Bitmap,
            Repr::Runs(_) => ContainerKind::Runs,
        }
    }

    /// True when the payload borrows externally owned memory.
    pub(crate) fn is_view(&self) -> bool {
        matches!(
            self,
            Container::ArrayView(_) | Container::BitmapView { .. }
        )
    }

    /// Highest stored value. Containers are never empty, and bitmaps
    /// never end in a zero word (view constructors check that one word).
    pub(crate) fn last(&self) -> u16 {
        match self.repr() {
            Repr::Array(v) => *v.last().expect("container is never empty"),
            Repr::Bitmap { words, .. } => {
                let i = words.len() - 1;
                (i as u32 * 64 + 63 - words[i].leading_zeros()) as u16
            }
            Repr::Runs(r) => r.last().expect("container is never empty").1,
        }
    }

    /// Number of maximal runs of consecutive values.
    pub(crate) fn n_runs(&self) -> usize {
        match self.repr() {
            Repr::Array(v) => {
                let mut n = usize::from(!v.is_empty());
                for w in v.windows(2) {
                    if w[1] - w[0] > 1 {
                        n += 1;
                    }
                }
                n
            }
            Repr::Bitmap { words, .. } => {
                // A set bit starts a run iff its predecessor bit is clear;
                // the carry threads bit 63 across word boundaries.
                let mut n = 0usize;
                let mut carry = 0u64;
                for &w in words {
                    n += (w & !((w << 1) | carry)).count_ones() as usize;
                    carry = w >> 63;
                }
                n
            }
            Repr::Runs(r) => r.len(),
        }
    }

    /// Membership test.
    pub(crate) fn contains(&self, low: u16) -> bool {
        match self.repr() {
            Repr::Array(v) => v.binary_search(&low).is_ok(),
            Repr::Bitmap { words, .. } => word_test(words, low),
            Repr::Runs(r) => r
                .binary_search_by(|&(s, e)| {
                    if e < low {
                        Ordering::Less
                    } else if s > low {
                        Ordering::Greater
                    } else {
                        Ordering::Equal
                    }
                })
                .is_ok(),
        }
    }

    /// Iterate stored values in ascending order.
    pub(crate) fn iter(&self) -> ContainerIter<'_> {
        match self.repr() {
            Repr::Array(v) => ContainerIter::Array(v.iter()),
            Repr::Bitmap { words, .. } => ContainerIter::Bitmap {
                words,
                word_idx: 0,
                current: words.first().copied().unwrap_or(0),
            },
            Repr::Runs(r) => ContainerIter::Runs {
                runs: r.iter(),
                cur: None,
            },
        }
    }

    /// Replace a borrowed payload with an owned copy of the same layout;
    /// owned containers are untouched. Mutation entry points call this
    /// first, so views stay immutable snapshots of the mapped file.
    pub(crate) fn make_owned(&mut self) {
        match self {
            Container::ArrayView(v) => *self = Container::Array(v.as_slice().to_vec()),
            Container::BitmapView { words, card } => {
                *self = Container::Bitmap {
                    words: words.as_slice().to_vec(),
                    card: *card,
                }
            }
            _ => {}
        }
    }

    /// Append a value strictly greater than every present value, without
    /// re-normalizing (callers batch-construct and normalize once, or are
    /// test-only like [`super::Tidset::push_monotonic`]).
    pub(crate) fn push_monotonic(&mut self, low: u16) {
        self.make_owned();
        match self {
            Container::Array(v) => v.push(low),
            Container::Bitmap { words, card } => {
                let wi = low as usize / 64;
                if words.len() <= wi {
                    words.resize(wi + 1, 0);
                }
                words[wi] |= 1u64 << (low & 63);
                *card += 1;
            }
            Container::Runs(r) => {
                let last = r.last_mut().expect("container is never empty");
                if last.1 as u32 + 1 == low as u32 {
                    last.1 = low;
                } else {
                    r.push((low, low));
                }
            }
            Container::ArrayView(_) | Container::BitmapView { .. } => {
                unreachable!("make_owned materialized the view")
            }
        }
    }

    /// Convert to the canonical layout for the current contents. Views
    /// are canonical by construction — the v4 writer only persists
    /// canonical shapes, and the section CRC (validated before any
    /// answer is produced) pins them — so they pass through unchanged.
    pub(crate) fn normalized(self) -> Container {
        debug_assert!(self.card() > 0, "normalize of an empty container");
        if self.is_view() {
            return self;
        }
        let target = canonical_kind(self.card(), self.n_runs(), self.last());
        if self.kind() == target {
            return self;
        }
        match target {
            ContainerKind::Array => Container::Array(self.iter().collect()),
            ContainerKind::Bitmap => bitmap_from_iter(self.iter()),
            ContainerKind::Runs => Container::Runs(runs_from_iter(self.iter())),
        }
    }
}

/// Equality is representation-independent across owned/borrowed forms:
/// two containers are equal iff they view the same logical layout with
/// the same payload. (Canonicalization guarantees equal *sets* share a
/// layout, so this still never compares across kinds.)
impl PartialEq for Container {
    fn eq(&self, other: &Self) -> bool {
        match (self.repr(), other.repr()) {
            (Repr::Array(x), Repr::Array(y)) => x == y,
            (Repr::Bitmap { words: x, .. }, Repr::Bitmap { words: y, .. }) => x == y,
            (Repr::Runs(x), Repr::Runs(y)) => x == y,
            _ => false,
        }
    }
}

impl Eq for Container {}

/// Ascending iterator over any container layout.
pub(crate) enum ContainerIter<'a> {
    Array(std::slice::Iter<'a, u16>),
    Bitmap {
        words: &'a [u64],
        word_idx: usize,
        current: u64,
    },
    Runs {
        runs: std::slice::Iter<'a, (u16, u16)>,
        /// Next value to yield and the (inclusive) end of the current run,
        /// widened to u32 so `end + 1` cannot wrap at 65535.
        cur: Option<(u32, u32)>,
    },
}

impl Iterator for ContainerIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(it) => it.next().copied(),
            ContainerIter::Bitmap {
                words,
                word_idx,
                current,
            } => {
                while *current == 0 {
                    *word_idx += 1;
                    if *word_idx >= words.len() {
                        return None;
                    }
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros();
                *current &= *current - 1;
                Some((*word_idx as u32 * 64 + bit) as u16)
            }
            ContainerIter::Runs { runs, cur } => loop {
                if let Some((next, end)) = cur {
                    if *next <= *end {
                        let v = *next as u16;
                        *next += 1;
                        return Some(v);
                    }
                    *cur = None;
                }
                let &(s, e) = runs.next()?;
                *cur = Some((s as u32, e as u32));
            },
        }
    }
}

/// Chunk-pair intersection kernel; `None` when the result is empty,
/// otherwise the canonical container of the intersection. Kernels
/// dispatch on [`Repr`], so borrowed (mapped) chunks run the same
/// specialized paths as owned ones, and results are always owned.
pub(crate) fn intersect(a: &Container, b: &Container) -> Option<Container> {
    use Repr::*;
    let raw = match (a.repr(), b.repr()) {
        (Array(x), Array(y)) => Container::Array(array_intersect(x, y)),
        (Array(x), Bitmap { words, .. }) | (Bitmap { words, .. }, Array(x)) => {
            Container::Array(x.iter().copied().filter(|&v| word_test(words, v)).collect())
        }
        (Array(x), Runs(r)) | (Runs(r), Array(x)) => Container::Array(array_run_intersect(x, r)),
        (Bitmap { words: x, .. }, Bitmap { words: y, .. }) => bitmap_and(x, y),
        (Bitmap { words, .. }, Runs(r)) | (Runs(r), Bitmap { words, .. }) => {
            bitmap_run_and(words, r)
        }
        (Runs(x), Runs(y)) => Container::Runs(run_intersect(x, y)),
    };
    (raw.card() > 0).then(|| raw.normalized())
}

/// Chunk-pair `|a ∩ b|` without materializing. Never allocates.
pub(crate) fn intersect_count(a: &Container, b: &Container) -> usize {
    use Repr::*;
    match (a.repr(), b.repr()) {
        (Array(x), Array(y)) => array_intersect_count(x, y),
        (Array(x), Bitmap { words, .. }) | (Bitmap { words, .. }, Array(x)) => {
            x.iter().filter(|&&v| word_test(words, v)).count()
        }
        (Array(x), Runs(r)) | (Runs(r), Array(x)) => array_run_count(x, r),
        (Bitmap { words: x, .. }, Bitmap { words: y, .. }) => x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum(),
        (Bitmap { words, .. }, Runs(r)) | (Runs(r), Bitmap { words, .. }) => {
            let cap = words.len() * 64;
            let mut n = 0usize;
            for &(s, e) in r {
                if s as usize >= cap {
                    break;
                }
                let e = (e as usize).min(cap - 1);
                for_each_run_word(s as usize, e, |wi, mask| {
                    n += (words[wi] & mask).count_ones() as usize;
                });
            }
            n
        }
        (Runs(x), Runs(y)) => {
            let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
            while i < x.len() && j < y.len() {
                let s = x[i].0.max(y[j].0) as u32;
                let e = (x[i].1 as u32).min(y[j].1 as u32);
                if s <= e {
                    n += (e - s + 1) as usize;
                }
                match x[i].1.cmp(&y[j].1) {
                    Ordering::Less => i += 1,
                    Ordering::Greater => j += 1,
                    Ordering::Equal => {
                        i += 1;
                        j += 1;
                    }
                }
            }
            n
        }
    }
}

/// Chunk-pair union kernel; always non-empty, canonical.
pub(crate) fn union(a: &Container, b: &Container) -> Container {
    use Repr::*;
    let raw = match (a.repr(), b.repr()) {
        (Array(x), Array(y)) => Container::Array(array_union(x, y)),
        (Bitmap { words: x, .. }, Bitmap { words: y, .. }) => {
            let (long, short) = if x.len() >= y.len() { (x, y) } else { (y, x) };
            let mut w = long.to_vec();
            for (o, &s) in w.iter_mut().zip(short.iter()) {
                *o |= s;
            }
            bitmap_recount(w)
        }
        (Bitmap { words, .. }, Array(x)) | (Array(x), Bitmap { words, .. }) => {
            let mut w = words.to_vec();
            grow_words(&mut w, *x.last().expect("non-empty") as usize);
            for &v in x {
                w[v as usize / 64] |= 1u64 << (v & 63);
            }
            bitmap_recount(w)
        }
        (Bitmap { words, .. }, Runs(r)) | (Runs(r), Bitmap { words, .. }) => {
            let mut w = words.to_vec();
            grow_words(&mut w, r.last().expect("non-empty").1 as usize);
            for &(s, e) in r {
                for_each_run_word(s as usize, e as usize, |wi, mask| w[wi] |= mask);
            }
            bitmap_recount(w)
        }
        (Runs(x), Runs(y)) => Container::Runs(run_union(x, y)),
        (Array(x), Runs(r)) | (Runs(r), Array(x)) => {
            Container::Runs(run_union(&runs_of_array(x), r))
        }
    };
    raw.normalized()
}

/// Chunk-pair difference kernel `a \ b`; `None` when empty, else canonical.
pub(crate) fn subtract(a: &Container, b: &Container) -> Option<Container> {
    use Repr::*;
    let raw = match (a.repr(), b.repr()) {
        (Array(x), Array(y)) => Container::Array(array_subtract(x, y)),
        (Array(x), Bitmap { words, .. }) => {
            Container::Array(x.iter().copied().filter(|&v| !word_test(words, v)).collect())
        }
        (Array(x), Runs(r)) => Container::Array(array_run_subtract(x, r)),
        (Bitmap { words, .. }, Array(y)) => {
            let mut w = words.to_vec();
            for &v in y {
                if let Some(slot) = w.get_mut(v as usize / 64) {
                    *slot &= !(1u64 << (v & 63));
                }
            }
            bitmap_recount(w)
        }
        (Bitmap { words: x, .. }, Bitmap { words: y, .. }) => {
            let w = x
                .iter()
                .enumerate()
                .map(|(i, &a)| a & !y.get(i).copied().unwrap_or(0))
                .collect();
            bitmap_recount(w)
        }
        (Bitmap { words, .. }, Runs(r)) => {
            let mut w = words.to_vec();
            let cap = w.len() * 64;
            for &(s, e) in r {
                if s as usize >= cap {
                    break;
                }
                let e = (e as usize).min(cap - 1);
                for_each_run_word(s as usize, e, |wi, mask| w[wi] &= !mask);
            }
            bitmap_recount(w)
        }
        (Runs(r), Array(y)) => Container::Runs(run_array_subtract(r, y)),
        (Runs(r), Bitmap { words, .. }) => {
            // Expand the runs into words once, then one ANDNOT pass.
            let mut w = vec![0u64; r.last().expect("non-empty").1 as usize / 64 + 1];
            for &(s, e) in r {
                for_each_run_word(s as usize, e as usize, |wi, mask| w[wi] |= mask);
            }
            for (i, slot) in w.iter_mut().enumerate() {
                *slot &= !words.get(i).copied().unwrap_or(0);
            }
            bitmap_recount(w)
        }
        (Runs(x), Runs(y)) => Container::Runs(run_subtract(x, y)),
    };
    (raw.card() > 0).then(|| raw.normalized())
}

/// Chunk-pair subset test `a ⊆ b`; never materializes.
pub(crate) fn is_subset(a: &Container, b: &Container) -> bool {
    use Repr::*;
    if a.card() > b.card() {
        return false;
    }
    match (a.repr(), b.repr()) {
        (Array(x), Bitmap { words, .. }) => x.iter().all(|&v| word_test(words, v)),
        (Array(x), Runs(r)) => {
            let mut j = 0usize;
            x.iter().all(|&v| {
                while j < r.len() && r[j].1 < v {
                    j += 1;
                }
                j < r.len() && r[j].0 <= v
            })
        }
        (Bitmap { words: x, .. }, Bitmap { words: y, .. }) => x
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !y.get(i).copied().unwrap_or(0) == 0),
        (Runs(x), Runs(y)) => {
            let mut j = 0usize;
            x.iter().all(|&(s, e)| {
                while j < y.len() && y[j].1 < e {
                    j += 1;
                }
                j < y.len() && y[j].0 <= s && e <= y[j].1
            })
        }
        (Runs(x), Bitmap { words, .. }) => {
            let cap = words.len() * 64;
            x.iter().all(|&(s, e)| {
                if e as usize >= cap {
                    return false;
                }
                ((s as usize / 64)..=(e as usize / 64)).all(|wi| {
                    let m = run_word_mask(s as usize, e as usize, wi);
                    words[wi] & m == m
                })
            })
        }
        // Remaining pairs (array ⊆ array, bitmap ⊆ array, bitmap ⊆ runs,
        // runs ⊆ array): count the intersection, which never allocates.
        _ => intersect_count(a, b) == a.card(),
    }
}

#[inline]
fn word_test(words: &[u64], low: u16) -> bool {
    words
        .get(low as usize / 64)
        .is_some_and(|&w| w & (1u64 << (low & 63)) != 0)
}

/// Bits of word `wi` that fall inside the inclusive value range `[s, e]`.
#[inline]
fn run_word_mask(s: usize, e: usize, wi: usize) -> u64 {
    let lo = s.max(wi * 64) - wi * 64;
    let hi = e.min(wi * 64 + 63) - wi * 64;
    let top = if hi == 63 { u64::MAX } else { (1u64 << (hi + 1)) - 1 };
    top & !((1u64 << lo) - 1)
}

/// Visit each word index the inclusive value run `[s, e]` overlaps,
/// paired with that word's in-run bit mask.
#[inline]
fn for_each_run_word(s: usize, e: usize, mut f: impl FnMut(usize, u64)) {
    for wi in (s / 64)..=(e / 64) {
        f(wi, run_word_mask(s, e, wi));
    }
}

/// Trim trailing zero words and recount population.
fn bitmap_recount(mut words: Vec<u64>) -> Container {
    while words.last() == Some(&0) {
        words.pop();
    }
    let card: u32 = words.iter().map(|w| w.count_ones()).sum();
    Container::Bitmap { words, card }
}

/// AND two (possibly different-length, trimmed) bitmaps.
fn bitmap_and(x: &[u64], y: &[u64]) -> Container {
    let n = x.len().min(y.len());
    let words: Vec<u64> = x[..n].iter().zip(&y[..n]).map(|(&a, &b)| a & b).collect();
    bitmap_recount(words)
}

/// AND a bitmap with a run list (mask out everything outside the runs).
fn bitmap_run_and(words: &[u64], r: &[(u16, u16)]) -> Container {
    let cap = words.len() * 64;
    let mut out = vec![0u64; words.len()];
    for &(s, e) in r {
        if s as usize >= cap {
            break;
        }
        let e = (e as usize).min(cap - 1);
        for_each_run_word(s as usize, e, |wi, mask| out[wi] |= words[wi] & mask);
    }
    bitmap_recount(out)
}

/// Grow `words` to cover value `last` (bit index), zero-filled.
fn grow_words(words: &mut Vec<u64>, last: usize) {
    let need = last / 64 + 1;
    if words.len() < need {
        words.resize(need, 0);
    }
}

fn bitmap_from_iter(it: impl Iterator<Item = u16>) -> Container {
    let mut words = vec![0u64; MAX_WORDS];
    let mut card = 0u32;
    let mut last = 0usize;
    for v in it {
        words[v as usize / 64] |= 1u64 << (v & 63);
        card += 1;
        last = v as usize;
    }
    words.truncate(last / 64 + 1);
    Container::Bitmap { words, card }
}

/// Coalesce an ascending value iterator into maximal runs.
fn runs_from_iter(it: impl Iterator<Item = u16>) -> Vec<(u16, u16)> {
    let mut runs: Vec<(u16, u16)> = Vec::new();
    for v in it {
        match runs.last_mut() {
            Some(last) if last.1 as u32 + 1 == v as u32 => last.1 = v,
            _ => runs.push((v, v)),
        }
    }
    runs
}

/// View a sorted array as (coalesced) runs.
fn runs_of_array(x: &[u16]) -> Vec<(u16, u16)> {
    runs_from_iter(x.iter().copied())
}

/// Sorted-u16 intersection: linear merge, or galloping when lopsided.
fn array_intersect(a: &[u16], b: &[u16]) -> Vec<u16> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    if small.is_empty() {
        return out;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        let mut base = 0usize;
        for &t in small {
            match gallop(&large[base..], t) {
                Ok(off) => {
                    out.push(t);
                    base += off + 1;
                }
                Err(off) => base += off,
            }
            if base >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// `|a ∩ b|` for sorted u16 slices, merge or gallop, no allocation.
fn array_intersect_count(a: &[u16], b: &[u16]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    if large.len() / small.len() >= GALLOP_RATIO {
        let mut base = 0usize;
        for &t in small {
            match gallop(&large[base..], t) {
                Ok(off) => {
                    count += 1;
                    base += off + 1;
                }
                Err(off) => base += off,
            }
            if base >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

fn array_union(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn array_subtract(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// Keep the array values that fall inside some run.
fn array_run_intersect(x: &[u16], r: &[(u16, u16)]) -> Vec<u16> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for &v in x {
        while j < r.len() && r[j].1 < v {
            j += 1;
        }
        if j >= r.len() {
            break;
        }
        if r[j].0 <= v {
            out.push(v);
        }
    }
    out
}

fn array_run_count(x: &[u16], r: &[(u16, u16)]) -> usize {
    let mut n = 0usize;
    let mut j = 0usize;
    for &v in x {
        while j < r.len() && r[j].1 < v {
            j += 1;
        }
        if j >= r.len() {
            break;
        }
        if r[j].0 <= v {
            n += 1;
        }
    }
    n
}

/// Keep the array values that fall inside no run.
fn array_run_subtract(x: &[u16], r: &[(u16, u16)]) -> Vec<u16> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for &v in x {
        while j < r.len() && r[j].1 < v {
            j += 1;
        }
        if j >= r.len() || r[j].0 > v {
            out.push(v);
        }
    }
    out
}

/// Interval intersection of two sorted run lists.
fn run_intersect(x: &[(u16, u16)], y: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < x.len() && j < y.len() {
        let s = x[i].0.max(y[j].0);
        let e = x[i].1.min(y[j].1);
        if s <= e {
            out.push((s, e));
        }
        match x[i].1.cmp(&y[j].1) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Interval union of two sorted run lists (coalesces touching runs).
fn run_union(x: &[(u16, u16)], y: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out: Vec<(u16, u16)> = Vec::with_capacity(x.len() + y.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < x.len() || j < y.len() {
        let next = if j >= y.len() || (i < x.len() && x[i].0 <= y[j].0) {
            let r = x[i];
            i += 1;
            r
        } else {
            let r = y[j];
            j += 1;
            r
        };
        match out.last_mut() {
            Some(last) if next.0 as u32 <= last.1 as u32 + 1 => last.1 = last.1.max(next.1),
            _ => out.push(next),
        }
    }
    out
}

/// Interval difference `x \ y` of two sorted run lists.
fn run_subtract(x: &[(u16, u16)], y: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    for &(s, e) in x {
        let (s, e) = (s as u32, e as u32);
        while i < y.len() && (y[i].1 as u32) < s {
            i += 1;
        }
        let mut cur = s;
        let mut k = i;
        while k < y.len() && (y[k].0 as u32) <= e {
            let (bs, be) = (y[k].0 as u32, y[k].1 as u32);
            if bs > cur {
                out.push((cur as u16, (bs - 1) as u16));
            }
            cur = cur.max(be + 1);
            if be >= e {
                break;
            }
            k += 1;
        }
        if cur <= e {
            out.push((cur as u16, e as u16));
        }
    }
    out
}

/// Punch sorted points out of a run list, splitting runs as needed.
fn run_array_subtract(r: &[(u16, u16)], pts: &[u16]) -> Vec<(u16, u16)> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for &(s, e) in r {
        let (s, e) = (s as u32, e as u32);
        while j < pts.len() && (pts[j] as u32) < s {
            j += 1;
        }
        let mut cur = s;
        while j < pts.len() && (pts[j] as u32) <= e {
            let p = pts[j] as u32;
            if p > cur {
                out.push((cur as u16, (p - 1) as u16));
            }
            cur = p + 1;
            j += 1;
        }
        if cur <= e {
            out.push((cur as u16, e as u16));
        }
    }
    out
}

/// Binary-search `slice` for `x` with an exponential (galloping) prefix
/// probe; returns `Ok(pos)` / `Err(insertion_pos)` like `binary_search`.
fn gallop(slice: &[u16], x: u16) -> Result<usize, usize> {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi] < x {
        hi <<= 1;
    }
    let lo = hi >> 1;
    // `slice[lo] < x` (for lo > 0) and either `hi ≥ len` or `slice[hi] ≥ x`,
    // so the first candidate position is in `[lo, hi]` — inclusive of `hi`.
    let hi = (hi + 1).min(slice.len());
    slice[lo..hi].binary_search(&x).map(|p| p + lo).map_err(|p| p + lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Build the canonical container of a value set.
    fn c(vals: &[u16]) -> Container {
        let mut v: Vec<u16> = vals.to_vec();
        v.sort_unstable();
        v.dedup();
        assert!(!v.is_empty());
        Container::Array(v).normalized()
    }

    fn vals(c: &Container) -> BTreeSet<u16> {
        c.iter().collect()
    }

    #[test]
    fn canonical_rule_picks_smallest_encoding() {
        // Singleton: array (2 bytes) beats one run (4 bytes).
        assert_eq!(c(&[7]).kind(), ContainerKind::Array);
        // A pair of adjacent values ties runs vs array; runs wins ties.
        assert_eq!(c(&[7, 8]).kind(), ContainerKind::Runs);
        // Scattered values: array.
        assert_eq!(c(&[1, 5, 9, 200]).kind(), ContainerKind::Array);
        // A long consecutive block: one run.
        let block: Vec<u16> = (100..5000).collect();
        assert_eq!(c(&block).kind(), ContainerKind::Runs);
        // Half-density noise over a wide span: bitmap.
        let noise: Vec<u16> = (0..30_000).step_by(2).map(|v| v as u16).collect();
        assert_eq!(c(&noise).kind(), ContainerKind::Bitmap);
        // On a *narrow* span the trimmed-bitmap rule promotes much
        // earlier: 100 values below 1000 cost 200 array bytes but only a
        // 128-byte (16-word) trimmed bitmap.
        let narrow: Vec<u16> = (0..1000).step_by(10).map(|v| v as u16).collect();
        assert_eq!(narrow.len(), 100);
        assert_eq!(c(&narrow).kind(), ContainerKind::Bitmap);
    }

    #[test]
    fn normalization_is_content_pure() {
        // The same logical set reaches one canonical shape from any
        // starting layout.
        let set: Vec<u16> = (0..4000).step_by(3).map(|v| v as u16).collect();
        let from_array = Container::Array(set.clone()).normalized();
        let from_bitmap = bitmap_from_iter(set.iter().copied()).normalized();
        let from_runs = Container::Runs(runs_from_iter(set.iter().copied())).normalized();
        assert_eq!(from_array, from_bitmap);
        assert_eq!(from_bitmap, from_runs);
    }

    #[test]
    fn n_runs_counts_word_boundary_runs() {
        // Runs straddling 64-bit word edges in bitmap form.
        let set: Vec<u16> = (60..70).chain(128..130).chain([300]).collect();
        let bm = bitmap_from_iter(set.iter().copied());
        assert_eq!(bm.n_runs(), 3);
        assert_eq!(Container::Array(set).n_runs(), 3);
    }

    #[test]
    fn all_nine_kernel_pairs_match_reference() {
        // One representative per kind, with chunk-edge values present.
        let reps = [
            c(&[0, 17, 65, 900, 65535]),                                    // array
            {
                let v: Vec<u16> = (0..20000).step_by(2).map(|v| v as u16).collect();
                c(&v)
            }, // bitmap
            {
                let v: Vec<u16> = (0..9).flat_map(|r| (r * 700)..(r * 700 + 650)).collect();
                c(&v)
            }, // runs
        ];
        assert_eq!(reps[0].kind(), ContainerKind::Array);
        assert_eq!(reps[1].kind(), ContainerKind::Bitmap);
        assert_eq!(reps[2].kind(), ContainerKind::Runs);
        for a in &reps {
            for b in &reps {
                let (sa, sb) = (vals(a), vals(b));
                let inter: BTreeSet<u16> = sa.intersection(&sb).copied().collect();
                let uni: BTreeSet<u16> = sa.union(&sb).copied().collect();
                let diff: BTreeSet<u16> = sa.difference(&sb).copied().collect();
                match intersect(a, b) {
                    Some(got) => assert_eq!(vals(&got), inter),
                    None => assert!(inter.is_empty()),
                }
                assert_eq!(intersect_count(a, b), inter.len());
                assert_eq!(vals(&union(a, b)), uni);
                match subtract(a, b) {
                    Some(got) => assert_eq!(vals(&got), diff),
                    None => assert!(diff.is_empty()),
                }
                assert_eq!(is_subset(a, b), sa.is_subset(&sb));
            }
        }
    }

    #[test]
    fn kernel_results_are_canonical() {
        // A bitmap∩bitmap result whose population collapses must demote.
        let a = c(&(0..20000).step_by(2).map(|v| v as u16).collect::<Vec<_>>());
        let b = c(&(0..20000).step_by(1024).map(|v| v as u16).collect::<Vec<_>>());
        assert_eq!(a.kind(), ContainerKind::Bitmap);
        let i = intersect(&a, &a).unwrap();
        assert_eq!(i.kind(), ContainerKind::Bitmap);
        let small = intersect(&a, &b).unwrap();
        assert_eq!(small.kind(), ContainerKind::Array);
        // A run-heavy union of arrays promotes to runs.
        let left = c(&(0..2000).map(|v| v as u16).collect::<Vec<_>>());
        let right = c(&(2000..4000).map(|v| v as u16).collect::<Vec<_>>());
        assert_eq!(union(&left, &right), c(&(0..4000).map(|v| v as u16).collect::<Vec<_>>()));
        assert_eq!(union(&left, &right).kind(), ContainerKind::Runs);
    }

    #[test]
    fn run_word_masks_cover_edges() {
        assert_eq!(run_word_mask(0, 63, 0), u64::MAX);
        assert_eq!(run_word_mask(0, 0, 0), 1);
        assert_eq!(run_word_mask(63, 63, 0), 1u64 << 63);
        assert_eq!(run_word_mask(60, 70, 0), !0u64 << 60);
        assert_eq!(run_word_mask(60, 70, 1), (1u64 << 7) - 1);
    }

    proptest::proptest! {
        #[test]
        fn kernels_match_btreeset_reference(
            a in proptest::collection::vec(0u16..2048, 1..300),
            b in proptest::collection::vec(0u16..2048, 1..300),
            // Widen some values into blocks so runs containers appear.
            blocks in proptest::collection::vec((0u16..2000, 1u16..60), 0..4),
        ) {
            let mut av: Vec<u16> = a;
            for &(s, l) in &blocks {
                av.extend(s..s.saturating_add(l));
            }
            av.sort_unstable();
            av.dedup();
            let bv: Vec<u16> = {
                let mut v = b;
                v.sort_unstable();
                v.dedup();
                v
            };
            let ca = Container::Array(av.clone()).normalized();
            let cb = Container::Array(bv.clone()).normalized();
            let sa: BTreeSet<u16> = av.iter().copied().collect();
            let sb: BTreeSet<u16> = bv.iter().copied().collect();
            let inter: BTreeSet<u16> = sa.intersection(&sb).copied().collect();
            match intersect(&ca, &cb) {
                Some(got) => proptest::prop_assert_eq!(vals(&got), inter.clone()),
                None => proptest::prop_assert!(inter.is_empty()),
            }
            proptest::prop_assert_eq!(intersect_count(&ca, &cb), inter.len());
            proptest::prop_assert_eq!(
                vals(&union(&ca, &cb)),
                sa.union(&sb).copied().collect::<BTreeSet<u16>>()
            );
            let diff: BTreeSet<u16> = sa.difference(&sb).copied().collect();
            match subtract(&ca, &cb) {
                Some(got) => proptest::prop_assert_eq!(vals(&got), diff.clone()),
                None => proptest::prop_assert!(diff.is_empty()),
            }
            proptest::prop_assert_eq!(is_subset(&ca, &cb), sa.is_subset(&sb));
            proptest::prop_assert_eq!(is_subset(&cb, &ca), sb.is_subset(&sa));
        }
    }
}
