//! Itemsets: sorted sets of global item ids.
//!
//! In the relational model an itemset holds at most one item per attribute
//! (a record has exactly one value per attribute, so two items on the same
//! attribute can never co-occur). Itemsets are kept as sorted `ItemId`
//! vectors, which — because item ids are assigned contiguously attribute by
//! attribute — also keeps them sorted by attribute.

use crate::attribute::ItemId;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sorted, deduplicated set of items (paper §2.1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Itemset(Vec<ItemId>);

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset(Vec::new())
    }

    /// Singleton itemset.
    pub fn singleton(item: ItemId) -> Self {
        Itemset(vec![item])
    }

    /// Build from any iterator (sorts and deduplicates).
    pub fn from_items(items: impl IntoIterator<Item = ItemId>) -> Self {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Itemset(v)
    }

    /// Build from a vector known to be sorted and deduplicated.
    pub fn from_sorted(v: Vec<ItemId>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]));
        Itemset(v)
    }

    /// Number of items — the itemset's *length* `C_I` (paper Table 3), which
    /// is also the level at which it lives in the IT-tree (Lemma 4.3).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The items in ascending id order.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.0
    }

    /// Membership test.
    pub fn contains(&self, item: ItemId) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// True when `self ⊆ other` (merge scan).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut j = 0usize;
        for &x in &self.0 {
            while j < other.0.len() && other.0[j] < x {
                j += 1;
            }
            if j >= other.0.len() || other.0[j] != x {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Itemset(out)
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &Itemset) -> Itemset {
        Itemset(
            self.0
                .iter()
                .copied()
                .filter(|i| !other.contains(*i))
                .collect(),
        )
    }

    /// Itemset with one extra item inserted (no-op if already present).
    pub fn with_item(&self, item: ItemId) -> Itemset {
        match self.0.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.clone();
                v.insert(pos, item);
                Itemset(v)
            }
        }
    }

    /// All nonempty proper subsets (for brute-force rule generation in
    /// tests; exponential — only call on small itemsets).
    pub fn proper_subsets(&self) -> Vec<Itemset> {
        let n = self.0.len();
        assert!(n <= 20, "proper_subsets is exponential; itemset too large");
        let mut out = Vec::new();
        for mask in 1..((1u32 << n) - 1) {
            let items = (0..n)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| self.0[b])
                .collect();
            out.push(Itemset(items));
        }
        out
    }

    /// True when the itemset respects the relational invariant: at most one
    /// item per attribute of `schema`.
    pub fn is_relational(&self, schema: &Schema) -> bool {
        let mut prev = None;
        for &item in &self.0 {
            let a = schema.item_attribute(item);
            if prev == Some(a) {
                return false;
            }
            prev = Some(a);
        }
        true
    }

    /// Render with attribute/value names from the schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> ItemsetDisplay<'a> {
        ItemsetDisplay {
            itemset: self,
            schema,
        }
    }
}

impl std::borrow::Borrow<[ItemId]> for Itemset {
    fn borrow(&self) -> &[ItemId] {
        &self.0
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        Itemset::from_items(iter)
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, ")")
    }
}

/// Schema-aware pretty printer returned by [`Itemset::display`].
pub struct ItemsetDisplay<'a> {
    itemset: &'a Itemset,
    schema: &'a Schema,
}

impl fmt::Display for ItemsetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &item) in self.itemset.items().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.schema.item_label(item))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    fn is(v: &[u32]) -> Itemset {
        Itemset::from_items(v.iter().map(|&x| ItemId(x)))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        assert_eq!(is(&[5, 1, 3, 1]), is(&[1, 3, 5]));
        assert_eq!(is(&[5, 1, 3, 1]).len(), 3);
    }

    #[test]
    fn subset_and_union() {
        let a = is(&[1, 3]);
        let b = is(&[1, 2, 3, 4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Itemset::empty().is_subset_of(&a));
        assert_eq!(a.union(&is(&[2, 3])), is(&[1, 2, 3]));
        assert_eq!(b.minus(&a), is(&[2, 4]));
    }

    #[test]
    fn with_item_inserts_in_order() {
        let a = is(&[1, 5]);
        assert_eq!(a.with_item(ItemId(3)), is(&[1, 3, 5]));
        assert_eq!(a.with_item(ItemId(5)), a);
    }

    #[test]
    fn proper_subsets_enumerates_all() {
        let subs = is(&[1, 2, 3]).proper_subsets();
        assert_eq!(subs.len(), 6); // 2^3 - 2
        assert!(subs.contains(&is(&[1])));
        assert!(subs.contains(&is(&[2, 3])));
        assert!(!subs.contains(&is(&[1, 2, 3])));
        assert!(!subs.contains(&Itemset::empty()));
    }

    #[test]
    fn relational_invariant_checks_one_item_per_attribute() {
        let s = SchemaBuilder::new()
            .attribute("A", ["a0", "a1"])
            .attribute("B", ["b0", "b1"])
            .build()
            .unwrap();
        assert!(is(&[0, 2]).is_relational(&s)); // A=a0, B=b0
        assert!(!is(&[0, 1]).is_relational(&s)); // two A values
    }

    #[test]
    fn display_with_schema() {
        let s = SchemaBuilder::new()
            .attribute("Age", ["20-30", "30-40"])
            .attribute("Salary", ["90K-120K"])
            .build()
            .unwrap();
        let i = is(&[0, 2]);
        assert_eq!(i.display(&s).to_string(), "(Age=20-30, Salary=90K-120K)");
    }
}
