//! Textual dataset formats.
//!
//! * A simple self-describing TSV format for relational datasets: a header
//!   of attribute names, then one record per line of value labels. Reading
//!   infers each attribute's domain from the values seen, in order of first
//!   appearance.
//! * FIMI `.dat` export (one line of space-separated item ids per record),
//!   the format the UCI benchmark mining literature uses.

use crate::attribute::Attribute;
use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::DataError;
use crate::schema::Schema;
use std::fmt::Write as _;
use std::sync::Arc;

/// Serialize a dataset to the TSV format.
pub fn to_tsv(dataset: &Dataset) -> String {
    let schema = dataset.schema();
    let mut out = String::new();
    let names: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
    out.push_str(&names.join("\t"));
    out.push('\n');
    for (_, record) in dataset.iter() {
        for (a, &v) in record.iter().enumerate() {
            if a > 0 {
                out.push('\t');
            }
            let attr = &schema.attributes()[a];
            out.push_str(attr.value_label(v).unwrap_or("?"));
        }
        out.push('\n');
    }
    out
}

/// Parse a dataset from the TSV format, inferring domains from the data.
pub fn from_tsv(text: &str) -> Result<Dataset, DataError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(DataError::Parse {
        line: 1,
        message: "missing header".into(),
    })?;
    let names: Vec<&str> = header.split('\t').collect();
    if names.iter().any(|n| n.is_empty()) {
        return Err(DataError::Parse {
            line: 1,
            message: "empty attribute name in header".into(),
        });
    }
    let mut domains: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    let mut rows: Vec<Vec<usize>> = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != names.len() {
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!("expected {} fields, got {}", names.len(), fields.len()),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (a, field) in fields.iter().enumerate() {
            let code = match domains[a].iter().position(|v| v == field) {
                Some(c) => c,
                None => {
                    domains[a].push(field.to_string());
                    domains[a].len() - 1
                }
            };
            row.push(code);
        }
        rows.push(row);
    }
    let attributes: Vec<Attribute> = names
        .iter()
        .zip(domains)
        .map(|(n, d)| Attribute::new(*n, d))
        .collect();
    let schema = Arc::new(Schema::new(attributes)?);
    let mut builder = DatasetBuilder::new(schema);
    for row in rows {
        let codes: Vec<u16> = row.iter().map(|&c| c as u16).collect();
        builder.push(&codes)?;
    }
    Ok(builder.build())
}

/// Export as FIMI `.dat`: each record becomes its `n` global item ids
/// (1-based, as is conventional in the FIMI repository dumps).
pub fn to_fimi(dataset: &Dataset) -> String {
    let mut out = String::new();
    for (tid, _) in dataset.iter() {
        let itemset = dataset.record_as_itemset(tid);
        for (i, item) in itemset.items().iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{}", item.0 + 1);
        }
        out.push('\n');
    }
    out
}

/// Import a FIMI `.dat` transactional file (one line of space-separated
/// 1-based item ids per transaction) as a relational dataset: each
/// distinct transactional item becomes a binary `present/absent`
/// attribute. This is the adapter for running COLARM on market-basket
/// benchmarks — the paper's relational model subsumes the transactional
/// one this way (at the cost of one attribute per distinct item, so it is
/// only practical for moderate vocabularies).
pub fn from_fimi(text: &str) -> Result<Dataset, DataError> {
    let mut transactions: Vec<Vec<u32>> = Vec::new();
    let mut max_item = 0u32;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut tx = Vec::new();
        for tok in line.split_whitespace() {
            let id: u32 = tok.parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                message: format!("invalid item id `{tok}`"),
            })?;
            if id == 0 {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: "FIMI item ids are 1-based".into(),
                });
            }
            max_item = max_item.max(id);
            tx.push(id - 1);
        }
        tx.sort_unstable();
        tx.dedup();
        transactions.push(tx);
    }
    if max_item == 0 {
        return Err(DataError::Parse {
            line: 1,
            message: "no transactions".into(),
        });
    }
    let attributes: Vec<Attribute> = (0..max_item)
        .map(|i| Attribute::new(format!("item{}", i + 1), ["absent", "present"]))
        .collect();
    let schema = Arc::new(Schema::new(attributes)?);
    let mut builder = DatasetBuilder::new(schema);
    let mut row = vec![0u16; max_item as usize];
    for tx in transactions {
        row.iter_mut().for_each(|v| *v = 0);
        for item in tx {
            row[item as usize] = 1;
        }
        builder.push(&row)?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::salary;

    #[test]
    fn tsv_round_trip_preserves_records() {
        let d = salary();
        let text = to_tsv(&d);
        let back = from_tsv(&text).unwrap();
        assert_eq!(back.num_records(), d.num_records());
        // Compare via labels since inferred domain orders can differ.
        for tid in 0..d.num_records() as u32 {
            let orig: Vec<String> = d
                .record(tid)
                .iter()
                .enumerate()
                .map(|(a, &v)| d.schema().attributes()[a].value_label(v).unwrap().to_string())
                .collect();
            let round: Vec<String> = back
                .record(tid)
                .iter()
                .enumerate()
                .map(|(a, &v)| back.schema().attributes()[a].value_label(v).unwrap().to_string())
                .collect();
            assert_eq!(orig, round);
        }
    }

    #[test]
    fn tsv_rejects_ragged_rows() {
        let err = from_tsv("A\tB\nx\n").unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }));
    }

    #[test]
    fn tsv_rejects_duplicate_attributes() {
        let err = from_tsv("A\tA\nx\ty\n").unwrap_err();
        assert!(matches!(err, DataError::DuplicateAttribute(_)));
    }

    #[test]
    fn tsv_rejects_missing_header() {
        assert!(from_tsv("").is_err());
    }

    #[test]
    fn fimi_import_builds_binary_attributes() {
        let d = from_fimi("1 3\n2\n1 2 3\n\n3 3 3\n").unwrap();
        assert_eq!(d.num_records(), 4);
        assert_eq!(d.schema().num_attributes(), 3);
        // Transaction 0 = {1,3}: item1 present, item2 absent, item3 present.
        assert_eq!(d.record(0), &[1, 0, 1]);
        assert_eq!(d.record(1), &[0, 1, 0]);
        assert_eq!(d.record(2), &[1, 1, 1]);
        assert_eq!(d.record(3), &[0, 0, 1]); // duplicates collapse
    }

    #[test]
    fn fimi_import_rejects_bad_input() {
        assert!(matches!(
            from_fimi("1 x 3\n"),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_fimi("0 1\n"),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(from_fimi("").is_err());
    }

    #[test]
    fn fimi_lines_match_record_count_and_arity() {
        let d = salary();
        let text = to_fimi(&d);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), d.num_records());
        for line in lines {
            assert_eq!(
                line.split(' ').count(),
                d.schema().num_attributes(),
                "one item per attribute per record"
            );
        }
    }
}
