//! Focal-subset selection: the `Arange` algebra of paper §2.2.
//!
//! A localized mining query selects a *focal subset* `DQ` by listing, for
//! some attributes, the set of admissible values; unconstrained attributes
//! default to their full domain. Following the paper's simplifying
//! assumption, selections align with the prestored value cells (no sub-cell
//! ranges), so a [`RangeSpec`] is exactly a product of per-attribute value
//! sets.
//!
//! The module also implements the contained / partially-overlapped /
//! disjoint classification of MIP bounding boxes against `DQ` (paper §3.4,
//! Figure 4): an itemset's box spans the single selected value on its item
//! attributes and the whole domain elsewhere, so
//!
//! * it is **disjoint** from `DQ` iff some item's value is excluded by the
//!   range;
//! * it is **contained** iff every *constrained* attribute is either pinned
//!   by an item to an admissible value or constrained to its full domain
//!   (Lemma 4.5 then gives `supp_Q = supp_G`);
//! * otherwise it **partially overlaps** and needs a record-level check.

use crate::attribute::{AttributeId, ValueId};
use crate::dataset::{Dataset, VerticalIndex};
use crate::error::DataError;
use crate::itemset::Itemset;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Relationship between an itemset's bounding box and the focal subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Overlap {
    /// `box(I) ⊆ region(DQ)` — local support equals global support.
    Contained,
    /// Boxes intersect but containment fails — record-level check needed.
    Partial,
    /// No record of `DQ` can support the itemset.
    Disjoint,
}

/// A product of per-attribute value selections defining `DQ`.
///
/// Attributes absent from the map are unconstrained (full domain).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RangeSpec {
    selections: BTreeMap<AttributeId, BTreeSet<ValueId>>,
}

impl RangeSpec {
    /// The unconstrained range (selects the whole dataset).
    pub fn all() -> Self {
        RangeSpec::default()
    }

    /// Constrain `attribute` to the given values. Replaces any previous
    /// selection for that attribute. Empty selections are rejected at
    /// [`RangeSpec::validate`] / resolution time.
    pub fn with(mut self, attribute: AttributeId, values: impl IntoIterator<Item = ValueId>) -> Self {
        self.selections
            .insert(attribute, values.into_iter().collect());
        self
    }

    /// Constrain using attribute / value names.
    pub fn with_named(
        self,
        schema: &Schema,
        attribute: &str,
        values: &[&str],
    ) -> Result<Self, DataError> {
        let aid = schema.attribute_by_name(attribute)?;
        let attr = schema.attribute(aid);
        let mut codes = BTreeSet::new();
        for v in values {
            codes.insert(attr.value_code(v).ok_or_else(|| DataError::UnknownValue {
                attribute: attribute.to_string(),
                value: v.to_string(),
            })?);
        }
        let mut spec = self;
        spec.selections.insert(aid, codes);
        Ok(spec)
    }

    /// The constrained attributes and their value sets.
    pub fn selections(&self) -> &BTreeMap<AttributeId, BTreeSet<ValueId>> {
        &self.selections
    }

    /// Number of constrained attributes (`k` in the paper's query `Q`).
    pub fn num_constrained(&self) -> usize {
        self.selections.len()
    }

    /// True when nothing is constrained.
    pub fn is_all(&self) -> bool {
        self.selections.is_empty()
    }

    /// Check the spec against a schema: attributes in range of the schema,
    /// value codes within domains, no empty selections.
    pub fn validate(&self, schema: &Schema) -> Result<(), DataError> {
        for (&aid, values) in &self.selections {
            if aid.index() >= schema.num_attributes() {
                return Err(DataError::UnknownAttribute(format!("{aid}")));
            }
            let attr = schema.attribute(aid);
            if values.is_empty() {
                return Err(DataError::EmptyRange(attr.name().to_string()));
            }
            for &v in values {
                if v as usize >= attr.domain_size() {
                    return Err(DataError::ValueOutOfDomain {
                        attribute: attr.name().to_string(),
                        code: v,
                        domain: attr.domain_size(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The admissible-value test for one attribute.
    #[inline]
    pub fn admits(&self, attribute: AttributeId, value: ValueId) -> bool {
        self.selections
            .get(&attribute)
            .is_none_or(|s| s.contains(&value))
    }

    /// True when the selection for `attribute` covers its entire domain
    /// (explicitly or by being absent).
    pub fn covers_domain(&self, schema: &Schema, attribute: AttributeId) -> bool {
        match self.selections.get(&attribute) {
            None => true,
            Some(s) => s.len() == schema.attribute(attribute).domain_size(),
        }
    }

    /// True when record `tid` of `dataset` falls inside the range.
    pub fn admits_record(&self, dataset: &Dataset, tid: u32) -> bool {
        self.selections
            .iter()
            .all(|(&aid, s)| s.contains(&dataset.value(tid, aid)))
    }

    /// Classify an itemset's bounding box against this range (paper §3.4).
    pub fn classify(&self, schema: &Schema, itemset: &Itemset) -> Overlap {
        // Disjoint: some item's value is excluded.
        for &item in itemset.items() {
            let it = schema.decode(item);
            if !self.admits(it.attribute, it.value) {
                return Overlap::Disjoint;
            }
        }
        // Contained: every constrained attribute is pinned by an item (to an
        // admitted value, checked above) or covers its whole domain.
        let mut item_attrs: Vec<AttributeId> = itemset
            .items()
            .iter()
            .map(|&i| schema.item_attribute(i))
            .collect();
        item_attrs.sort_unstable();
        for (&aid, values) in &self.selections {
            if values.len() == schema.attribute(aid).domain_size() {
                continue;
            }
            if item_attrs.binary_search(&aid).is_err() {
                return Overlap::Partial;
            }
        }
        Overlap::Contained
    }

    /// Per-attribute hull `[lo, hi]` of the selection over the full schema:
    /// the rectangle handed to the R-tree range search (exact per-value sets
    /// are re-checked afterwards via [`RangeSpec::classify`]).
    pub fn hull(&self, schema: &Schema) -> Vec<(ValueId, ValueId)> {
        schema
            .dimensions()
            .map(|(aid, dom)| match self.selections.get(&aid) {
                None => (0, (dom - 1) as ValueId),
                Some(s) => (
                    *s.first().expect("validated non-empty"),
                    *s.last().expect("validated non-empty"),
                ),
            })
            .collect()
    }

    /// Average normalized extent of the selection per attribute: the
    /// `D^Q_avg` statistic of the paper's cost model (Table 3), i.e. the
    /// mean over dimensions of `|selected values| / |domain|`.
    pub fn avg_extent(&self, schema: &Schema) -> f64 {
        let n = schema.num_attributes();
        if n == 0 {
            return 0.0;
        }
        let total: f64 = schema
            .dimensions()
            .map(|(aid, dom)| match self.selections.get(&aid) {
                None => 1.0,
                Some(s) => s.len() as f64 / dom as f64,
            })
            .sum();
        total / n as f64
    }

    /// Render with names from the schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> RangeSpecDisplay<'a> {
        RangeSpecDisplay { spec: self, schema }
    }

    /// If `self` *refines* `parent` — every attribute `parent` constrains
    /// is constrained by `self` to a subset of `parent`'s values — return
    /// the **delta**: the selections of `self` that actually narrow
    /// `parent` (newly constrained attributes plus strictly shrunk ones).
    /// `None` when `self` relaxes or shifts any of `parent`'s selections.
    ///
    /// The delta is what drill-down reuse intersects into `parent`'s
    /// already-resolved tidset: for `c ⊆ p`, `(X ∩ p) ∩ c = X ∩ c`, so
    /// applying only the delta to the parent subset yields exactly the
    /// fresh resolution of `self`. An identical spec has an empty delta.
    pub fn refinement_delta<'a>(
        &'a self,
        parent: &RangeSpec,
    ) -> Option<Vec<(AttributeId, &'a BTreeSet<ValueId>)>> {
        let mut delta = Vec::new();
        for (aid, pvals) in &parent.selections {
            match self.selections.get(aid) {
                // `self` dropped a constraint `parent` had: not a refinement.
                None => return None,
                Some(svals) => {
                    if !svals.is_subset(pvals) {
                        return None;
                    }
                    if svals.len() < pvals.len() {
                        delta.push((*aid, svals));
                    }
                }
            }
        }
        for (aid, svals) in &self.selections {
            if !parent.selections.contains_key(aid) {
                delta.push((*aid, svals));
            }
        }
        Some(delta)
    }
}

/// Schema-aware pretty printer returned by [`RangeSpec::display`].
pub struct RangeSpecDisplay<'a> {
    spec: &'a RangeSpec,
    schema: &'a Schema,
}

impl fmt::Display for RangeSpecDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.spec.is_all() {
            return write!(f, "*");
        }
        for (i, (&aid, values)) in self.spec.selections.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            let attr = self.schema.attribute(aid);
            write!(f, "{}={{", attr.name())?;
            for (j, &v) in values.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", attr.value_label(v).unwrap_or("?"))?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A resolved focal subset: the range spec plus the tidset of records it
/// selects (`DQ` and `|DQ|` of the paper).
#[derive(Debug, Clone)]
pub struct FocalSubset {
    spec: RangeSpec,
    tids: crate::tidset::Tidset,
    universe: u32,
}

impl FocalSubset {
    /// Resolve a range spec against a dataset using its vertical index:
    /// intersect, across constrained attributes, the union of the selected
    /// values' tid-lists. This is the SELECT (`σ`) machinery reused by all
    /// plans.
    pub fn resolve(
        spec: RangeSpec,
        dataset: &Dataset,
        vertical: &VerticalIndex,
    ) -> Result<Self, DataError> {
        let schema = dataset.schema();
        spec.validate(schema)?;
        let mut tids: Option<crate::tidset::Tidset> = None;
        for (&aid, values) in spec.selections() {
            if spec.covers_domain(schema, aid) {
                continue;
            }
            let mut union = crate::tidset::Tidset::new();
            for &v in values {
                union = union.union(vertical.tids(schema.encode(aid, v)));
            }
            tids = Some(match tids {
                None => union,
                Some(acc) => acc.intersect(&union),
            });
        }
        let universe = dataset.num_records() as u32;
        Ok(FocalSubset {
            spec,
            tids: tids.unwrap_or_else(|| crate::tidset::Tidset::full(universe)),
            universe,
        })
    }

    /// Derive a refinement's subset from an already-resolved parent:
    /// intersect the parent's tidset with only the *delta* selections'
    /// tid-lists instead of rescanning every constrained attribute.
    /// Returns `Ok(None)` when `spec` is not a refinement of the parent's
    /// spec. The result is **bit-identical** to
    /// [`FocalSubset::resolve`]`(spec, …)` — tidset representations are a
    /// pure function of content (see `tidset`), so even the hybrid
    /// Sparse/Dense choice matches the fresh scan.
    pub fn derive_refinement(
        parent: &FocalSubset,
        spec: RangeSpec,
        dataset: &Dataset,
        vertical: &VerticalIndex,
    ) -> Result<Option<Self>, DataError> {
        let schema = dataset.schema();
        spec.validate(schema)?;
        let Some(delta) = spec.refinement_delta(&parent.spec) else {
            return Ok(None);
        };
        let mut tids = parent.tids.clone();
        for (aid, values) in delta {
            // Full-domain extra conjuncts select nothing; `resolve` skips
            // them, so the derivation must too.
            if spec.covers_domain(schema, aid) {
                continue;
            }
            let mut union = crate::tidset::Tidset::new();
            for &v in values {
                union = union.union(vertical.tids(schema.encode(aid, v)));
            }
            tids = tids.intersect(&union);
        }
        Ok(Some(FocalSubset {
            spec,
            tids,
            universe: parent.universe,
        }))
    }

    /// The originating range spec.
    pub fn spec(&self) -> &RangeSpec {
        &self.spec
    }

    /// Records of `DQ` as a tidset.
    pub fn tids(&self) -> &crate::tidset::Tidset {
        &self.tids
    }

    /// `|DQ|`.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True when no record matches the range.
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// `|DQ| / |D|` — the focal fraction used throughout the experiments.
    pub fn fraction(&self) -> f64 {
        if self.universe == 0 {
            0.0
        } else {
            self.len() as f64 / self.universe as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::schema::SchemaBuilder;
    use std::sync::Arc;

    fn dataset() -> (Dataset, VerticalIndex) {
        let schema = SchemaBuilder::new()
            .attribute("Loc", ["Boston", "SFO", "Seattle"])
            .attribute("Gender", ["M", "F"])
            .attribute("Age", ["20-30", "30-40"])
            .build()
            .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for rec in [
            [0u16, 0, 1],
            [0, 1, 0],
            [1, 0, 0],
            [2, 1, 1],
            [2, 1, 1],
            [2, 1, 0],
        ] {
            b.push(&rec).unwrap();
        }
        let d = b.build();
        let v = VerticalIndex::build(&d);
        (d, v)
    }

    fn schema_of(d: &Dataset) -> Arc<Schema> {
        d.schema().clone()
    }

    #[test]
    fn resolve_intersects_across_attributes() {
        let (d, v) = dataset();
        let s = schema_of(&d);
        let spec = RangeSpec::all()
            .with_named(&s, "Loc", &["Seattle"])
            .unwrap()
            .with_named(&s, "Gender", &["F"])
            .unwrap();
        let fs = FocalSubset::resolve(spec, &d, &v).unwrap();
        assert_eq!(fs.tids().to_vec(), &[3, 4, 5]);
        assert!((fs.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unconstrained_selects_everything() {
        let (d, v) = dataset();
        let fs = FocalSubset::resolve(RangeSpec::all(), &d, &v).unwrap();
        assert_eq!(fs.len(), d.num_records());
        assert!(fs.spec().is_all());
    }

    #[test]
    fn multi_value_selection_unions() {
        let (d, v) = dataset();
        let s = schema_of(&d);
        let spec = RangeSpec::all()
            .with_named(&s, "Loc", &["Boston", "SFO"])
            .unwrap();
        let fs = FocalSubset::resolve(spec, &d, &v).unwrap();
        assert_eq!(fs.tids().to_vec(), &[0, 1, 2]);
    }

    #[test]
    fn empty_selection_rejected() {
        let (d, v) = dataset();
        let spec = RangeSpec::all().with(AttributeId(0), []);
        assert!(matches!(
            FocalSubset::resolve(spec, &d, &v),
            Err(DataError::EmptyRange(_))
        ));
    }

    #[test]
    fn out_of_domain_value_rejected() {
        let (d, v) = dataset();
        let spec = RangeSpec::all().with(AttributeId(1), [9u16]);
        assert!(matches!(
            FocalSubset::resolve(spec, &d, &v),
            Err(DataError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn classification_matches_paper_cases() {
        let (d, _) = dataset();
        let s = schema_of(&d);
        let spec = RangeSpec::all()
            .with_named(&s, "Loc", &["Seattle"])
            .unwrap()
            .with_named(&s, "Gender", &["F"])
            .unwrap();
        // Itemset pinned inside the range on all constrained attrs → contained.
        let inside = Itemset::from_items([
            s.encode_named("Loc", "Seattle").unwrap(),
            s.encode_named("Gender", "F").unwrap(),
        ]);
        assert_eq!(spec.classify(&s, &inside), Overlap::Contained);
        // Itemset on an excluded value → disjoint.
        let out = Itemset::singleton(s.encode_named("Loc", "Boston").unwrap());
        assert_eq!(spec.classify(&s, &out), Overlap::Disjoint);
        // Itemset free on a constrained attribute → partial.
        let free = Itemset::singleton(s.encode_named("Age", "20-30").unwrap());
        assert_eq!(spec.classify(&s, &free), Overlap::Partial);
        // Pinned on one constrained attr but free on the other → partial.
        let half = Itemset::singleton(s.encode_named("Gender", "F").unwrap());
        assert_eq!(spec.classify(&s, &half), Overlap::Partial);
    }

    #[test]
    fn full_domain_constraint_is_no_constraint() {
        let (d, _) = dataset();
        let s = schema_of(&d);
        let spec = RangeSpec::all()
            .with_named(&s, "Gender", &["M", "F"])
            .unwrap()
            .with_named(&s, "Loc", &["Seattle"])
            .unwrap();
        let pinned = Itemset::singleton(s.encode_named("Loc", "Seattle").unwrap());
        // Gender spans its whole domain, so containment should hold.
        assert_eq!(spec.classify(&s, &pinned), Overlap::Contained);
    }

    #[test]
    fn contained_implies_local_equals_global_support() {
        // Lemma 4.5 sanity: every record supporting a contained itemset is
        // inside DQ.
        let (d, v) = dataset();
        let s = schema_of(&d);
        let spec = RangeSpec::all().with_named(&s, "Loc", &["Seattle"]).unwrap();
        let iset = Itemset::singleton(s.encode_named("Loc", "Seattle").unwrap());
        assert_eq!(spec.classify(&s, &iset), Overlap::Contained);
        let fs = FocalSubset::resolve(spec, &d, &v).unwrap();
        let global = v.itemset_tids(&iset);
        assert_eq!(global.intersect_count(fs.tids()), global.len());
    }

    #[test]
    fn hull_and_extent() {
        let (d, _) = dataset();
        let s = schema_of(&d);
        let spec = RangeSpec::all()
            .with_named(&s, "Loc", &["Boston", "Seattle"])
            .unwrap();
        assert_eq!(spec.hull(&s), vec![(0, 2), (0, 1), (0, 1)]);
        // extents: Loc 2/3, Gender 1, Age 1 → avg (2/3 + 1 + 1)/3
        assert!((spec.avg_extent(&s) - (2.0 / 3.0 + 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn refinement_delta_accepts_narrowing_and_rejects_relaxing() {
        let (d, _) = dataset();
        let s = schema_of(&d);
        let parent = RangeSpec::all()
            .with_named(&s, "Loc", &["Boston", "Seattle"])
            .unwrap();
        // Extra conjunct → delta is just the new attribute.
        let child = parent.clone().with_named(&s, "Gender", &["F"]).unwrap();
        let delta = child.refinement_delta(&parent).unwrap();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].0, s.attribute_by_name("Gender").unwrap());
        // Shrinking an existing selection → delta is the shrunk set.
        let narrower = RangeSpec::all().with_named(&s, "Loc", &["Seattle"]).unwrap();
        let delta = narrower.refinement_delta(&parent).unwrap();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].1.len(), 1);
        // Identical spec → empty delta.
        assert!(parent.clone().refinement_delta(&parent).unwrap().is_empty());
        // Relaxing (dropping Loc) or shifting (disjoint values) → None.
        assert!(RangeSpec::all().refinement_delta(&parent).is_none());
        let shifted = RangeSpec::all().with_named(&s, "Loc", &["SFO"]).unwrap();
        assert!(shifted.refinement_delta(&parent).is_none());
        // Everything refines the unconstrained range.
        assert_eq!(parent.refinement_delta(&RangeSpec::all()).unwrap().len(), 1);
    }

    #[test]
    fn derived_subset_is_bit_identical_to_fresh_resolution() {
        let (d, v) = dataset();
        let s = schema_of(&d);
        let parent_spec = RangeSpec::all().with_named(&s, "Loc", &["Seattle"]).unwrap();
        let parent = FocalSubset::resolve(parent_spec.clone(), &d, &v).unwrap();
        let child_spec = parent_spec.with_named(&s, "Gender", &["F"]).unwrap();
        let derived = FocalSubset::derive_refinement(&parent, child_spec.clone(), &d, &v)
            .unwrap()
            .expect("child refines parent");
        let fresh = FocalSubset::resolve(child_spec, &d, &v).unwrap();
        assert_eq!(derived.tids(), fresh.tids());
        assert_eq!(derived.tids().kind(), fresh.tids().kind());
        assert_eq!(derived.spec(), fresh.spec());
        assert_eq!(derived.len(), 3); // Seattle ∧ F = records {3, 4, 5}
        // Non-refinements don't derive.
        let unrelated = RangeSpec::all().with_named(&s, "Loc", &["Boston"]).unwrap();
        assert!(FocalSubset::derive_refinement(&parent, unrelated, &d, &v)
            .unwrap()
            .is_none());
    }

    #[test]
    fn display_renders_names() {
        let (d, _) = dataset();
        let s = schema_of(&d);
        let spec = RangeSpec::all()
            .with_named(&s, "Gender", &["F"])
            .unwrap()
            .with_named(&s, "Loc", &["Seattle"])
            .unwrap();
        assert_eq!(
            spec.display(&s).to_string(),
            "Loc={Seattle} AND Gender={F}"
        );
        assert_eq!(RangeSpec::all().display(&s).to_string(), "*");
    }
}
