//! Row-store datasets and the per-item vertical (tid-list) index.

use crate::attribute::{AttributeId, ItemId, ValueId};
use crate::error::DataError;
use crate::itemset::Itemset;
use crate::schema::Schema;
use crate::tidset::Tidset;
use crate::view::SliceView;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The physical record storage behind a [`Dataset`]: either owned rows
/// (the builder / decode path) or a borrowed row-major value matrix (the
/// zero-copy snapshot-mapping path). Both expose records as `&[ValueId]`
/// slices, so everything above this enum is representation-independent.
#[derive(Debug, Clone)]
enum RecordStore {
    /// `rows[t][a]` = value code of attribute `a` in record `t`.
    Rows(Vec<Box<[ValueId]>>),
    /// Row-major `m × arity` matrix borrowed from a mapped snapshot.
    Flat {
        values: SliceView<ValueId>,
        arity: usize,
        count: usize,
    },
}

impl RecordStore {
    fn len(&self) -> usize {
        match self {
            RecordStore::Rows(rows) => rows.len(),
            RecordStore::Flat { count, .. } => *count,
        }
    }

    #[inline]
    fn row(&self, tid: u32) -> &[ValueId] {
        match self {
            RecordStore::Rows(rows) => &rows[tid as usize],
            RecordStore::Flat { values, arity, .. } => {
                &values.as_slice()[tid as usize * arity..][..*arity]
            }
        }
    }
}

/// A relational dataset: a schema plus `m` records, each holding exactly one
/// value code per attribute (paper §2.1).
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Arc<Schema>,
    records: RecordStore,
}

// Serde preserves the legacy JSON shape (`records` as a list of rows)
// regardless of the physical store, so flat-backed datasets serialize
// identically to owned ones and old snapshots keep deserializing.
impl Serialize for Dataset {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("Dataset", 2)?;
        st.serialize_field("schema", &self.schema)?;
        let rows: Vec<&[ValueId]> = (0..self.num_records() as u32)
            .map(|t| self.record(t))
            .collect();
        st.serialize_field("records", &rows)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Dataset {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Dataset, D::Error> {
        #[derive(Deserialize)]
        struct DatasetDe {
            schema: Arc<Schema>,
            records: Vec<Box<[ValueId]>>,
        }
        let de = DatasetDe::deserialize(deserializer)?;
        Ok(Dataset {
            schema: de.schema,
            records: RecordStore::Rows(de.records),
        })
    }
}

impl Dataset {
    /// Wrap a borrowed row-major `count × arity` value matrix (the
    /// zero-copy snapshot-mapping path). Every value code is validated
    /// against its attribute's domain up front — a flat dataset must be
    /// as panic-free under indexing as a builder-validated one — but no
    /// per-record allocation happens, which is what makes mapped loading
    /// O(values) compares instead of O(records) heap traffic.
    pub fn from_flat(
        schema: Arc<Schema>,
        values: SliceView<ValueId>,
        count: usize,
    ) -> Result<Dataset, DataError> {
        let dataset = Self::from_flat_deferred(schema, values, count)?;
        dataset.validate_domains()?;
        Ok(dataset)
    }

    /// [`Dataset::from_flat`] with the per-value domain sweep deferred:
    /// only the shape (`count × arity == len`) is checked here, and the
    /// caller promises to run [`Dataset::validate_domains`] before any
    /// record value is read. The checksummed snapshot-mapping path uses
    /// this to fold the sweep into its deferred section validation, so a
    /// lazily-validated load never scans bytes the first query does not
    /// touch.
    pub fn from_flat_deferred(
        schema: Arc<Schema>,
        values: SliceView<ValueId>,
        count: usize,
    ) -> Result<Dataset, DataError> {
        let arity = schema.num_attributes();
        let expected = count
            .checked_mul(arity)
            .ok_or(DataError::ArityMismatch { expected: arity, got: usize::MAX })?;
        if values.len() != expected {
            return Err(DataError::ArityMismatch {
                expected,
                got: values.len(),
            });
        }
        Ok(Dataset {
            schema,
            records: RecordStore::Flat {
                values,
                arity,
                count,
            },
        })
    }

    /// Check every stored value code against its attribute's domain.
    /// Always true for builder-constructed row storage (values are
    /// validated at insert); for a flat matrix wrapped with
    /// [`Dataset::from_flat_deferred`] this is the deferred sweep.
    pub fn validate_domains(&self) -> Result<(), DataError> {
        let RecordStore::Flat { values, arity, .. } = &self.records else {
            return Ok(());
        };
        let arity = *arity;
        let domains: Vec<usize> = (0..arity)
            .map(|a| self.schema.attribute(AttributeId(a as u16)).domain_size())
            .collect();
        // Fast path first: one branch-free compare against the smallest
        // domain vectorizes to a SIMD sweep over the whole matrix and
        // accepts almost every valid snapshot without touching the
        // per-attribute table. Only when some value clears that bar does
        // the exact per-column scan run to locate (or clear) it.
        let vals = values.as_slice();
        let min_domain = domains.iter().copied().min().unwrap_or(0);
        let fast_ok = match ValueId::try_from(min_domain) {
            // A max-reduction has no early exit, so it vectorizes; the
            // rare failure falls through to the exact per-attribute scan.
            Ok(limit) => vals.iter().copied().max().unwrap_or(0) < limit,
            // The smallest domain covers the whole ValueId range.
            Err(_) => true,
        };
        if !fast_ok {
            for row in vals.chunks_exact(arity) {
                for (a, (&v, &domain)) in row.iter().zip(&domains).enumerate() {
                    if v as usize >= domain {
                        let attr = self.schema.attribute(AttributeId(a as u16));
                        return Err(DataError::ValueOutOfDomain {
                            attribute: attr.name().to_string(),
                            code: v,
                            domain: attr.domain_size(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of records (`m` in the paper).
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Value code of attribute `a` in record `tid`.
    #[inline]
    pub fn value(&self, tid: u32, attribute: AttributeId) -> ValueId {
        self.records.row(tid)[attribute.index()]
    }

    /// The full record, as value codes in schema order.
    pub fn record(&self, tid: u32) -> &[ValueId] {
        self.records.row(tid)
    }

    /// Iterate `(tid, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[ValueId])> {
        (0..self.num_records() as u32).map(move |t| (t, self.records.row(t)))
    }

    /// True when record `tid` supports (contains) every item of `itemset`.
    pub fn record_supports(&self, tid: u32, itemset: &Itemset) -> bool {
        itemset.items().iter().all(|&item| {
            let it = self.schema.decode(item);
            self.value(tid, it.attribute) == it.value
        })
    }

    /// Global absolute support count of an itemset by scanning all records
    /// (reference implementation used by tests and the ARM baseline).
    pub fn count_support(&self, itemset: &Itemset) -> usize {
        (0..self.num_records() as u32)
            .filter(|&t| self.record_supports(t, itemset))
            .count()
    }

    /// Materialize a new dataset containing only the given records (tids
    /// must be in range). The schema is shared.
    pub fn select_records(&self, tids: &crate::tidset::Tidset) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            records: RecordStore::Rows(
                tids.iter().map(|t| self.records.row(t).into()).collect(),
            ),
        }
    }

    /// Materialize a projection onto a subset of attributes (given in the
    /// desired order). Returns an error for unknown attributes.
    pub fn project(&self, attributes: &[AttributeId]) -> Result<Dataset, DataError> {
        for &a in attributes {
            if a.index() >= self.schema.num_attributes() {
                return Err(DataError::UnknownAttribute(format!("{a}")));
            }
        }
        let schema = Arc::new(Schema::new(
            attributes
                .iter()
                .map(|&a| self.schema.attribute(a).clone())
                .collect(),
        )?);
        let records = (0..self.num_records() as u32)
            .map(|t| {
                let r = self.records.row(t);
                attributes
                    .iter()
                    .map(|&a| r[a.index()])
                    .collect::<Vec<_>>()
                    .into()
            })
            .collect();
        Ok(Dataset {
            schema,
            records: RecordStore::Rows(records),
        })
    }

    /// The record encoded as a sorted itemset of its `n` items.
    pub fn record_as_itemset(&self, tid: u32) -> Itemset {
        Itemset::from_sorted(
            self.record(tid)
                .iter()
                .enumerate()
                .map(|(a, &v)| self.schema.encode(AttributeId(a as u16), v))
                .collect(),
        )
    }
}

/// Builder validating record arity and value domains.
#[derive(Debug)]
pub struct DatasetBuilder {
    schema: Arc<Schema>,
    records: Vec<Box<[ValueId]>>,
}

impl DatasetBuilder {
    /// Start building a dataset over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        DatasetBuilder {
            schema,
            records: Vec::new(),
        }
    }

    /// Append a record given as value codes in schema order.
    pub fn push(&mut self, values: &[ValueId]) -> Result<(), DataError> {
        if values.len() != self.schema.num_attributes() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.num_attributes(),
                got: values.len(),
            });
        }
        for (a, &v) in values.iter().enumerate() {
            let attr = self.schema.attribute(AttributeId(a as u16));
            if v as usize >= attr.domain_size() {
                return Err(DataError::ValueOutOfDomain {
                    attribute: attr.name().to_string(),
                    code: v,
                    domain: attr.domain_size(),
                });
            }
        }
        self.records.push(values.into());
        Ok(())
    }

    /// Append a record given as value *labels* in schema order.
    pub fn push_named(&mut self, labels: &[&str]) -> Result<(), DataError> {
        if labels.len() != self.schema.num_attributes() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.num_attributes(),
                got: labels.len(),
            });
        }
        let mut codes = Vec::with_capacity(labels.len());
        for (a, label) in labels.iter().enumerate() {
            let attr = self.schema.attribute(AttributeId(a as u16));
            let v = attr.value_code(label).ok_or_else(|| DataError::UnknownValue {
                attribute: attr.name().to_string(),
                value: label.to_string(),
            })?;
            codes.push(v);
        }
        self.records.push(codes.into());
        Ok(())
    }

    /// Finish building.
    pub fn build(self) -> Dataset {
        Dataset {
            schema: self.schema,
            records: RecordStore::Rows(self.records),
        }
    }
}

/// Vertical index: one sorted tid-list per global item id.
///
/// This is both the input format of the CHARM/Eclat miners and the engine of
/// focal-subset resolution — the tidset of a range selection is a union of
/// per-value tid-lists intersected across attributes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerticalIndex {
    tidlists: Vec<Tidset>,
    num_records: u32,
}

impl VerticalIndex {
    /// Build the vertical index with one pass over the dataset.
    pub fn build(dataset: &Dataset) -> Self {
        let schema = dataset.schema();
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); schema.num_items()];
        for (tid, record) in dataset.iter() {
            for (a, &v) in record.iter().enumerate() {
                let item = schema.encode(AttributeId(a as u16), v);
                lists[item.index()].push(tid);
            }
        }
        VerticalIndex {
            tidlists: lists.into_iter().map(Tidset::from_sorted).collect(),
            num_records: dataset.num_records() as u32,
        }
    }

    /// Reassemble a vertical index from persisted per-item tid-lists —
    /// the snapshot load path, which skips the O(records × arity)
    /// rebuild of [`VerticalIndex::build`]. The caller (the snapshot
    /// loader) is responsible for supplying one tid-list per item of the
    /// accompanying schema, each bounded by `num_records`.
    pub fn from_parts(tidlists: Vec<Tidset>, num_records: u32) -> Self {
        VerticalIndex {
            tidlists,
            num_records,
        }
    }

    /// Number of records in the underlying dataset.
    pub fn num_records(&self) -> u32 {
        self.num_records
    }

    /// Number of items covered.
    pub fn num_items(&self) -> usize {
        self.tidlists.len()
    }

    /// Tid-list of a single item.
    #[inline]
    pub fn tids(&self, item: ItemId) -> &Tidset {
        &self.tidlists[item.index()]
    }

    /// Tidset of an itemset: the intersection of its items' tid-lists,
    /// intersecting smallest-first to keep intermediates small.
    pub fn itemset_tids(&self, itemset: &Itemset) -> Tidset {
        let mut items: Vec<&Tidset> = itemset.items().iter().map(|&i| self.tids(i)).collect();
        if items.is_empty() {
            return Tidset::full(self.num_records);
        }
        items.sort_by_key(|t| t.len());
        let mut acc = items[0].clone();
        for t in &items[1..] {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(t);
        }
        acc
    }

    /// Absolute global support count of an itemset.
    pub fn support(&self, itemset: &Itemset) -> usize {
        self.itemset_tids(itemset).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    fn small() -> Dataset {
        let schema = SchemaBuilder::new()
            .attribute("A", ["a0", "a1"])
            .attribute("B", ["b0", "b1", "b2"])
            .build()
            .unwrap();
        let mut b = DatasetBuilder::new(schema);
        b.push(&[0, 0]).unwrap();
        b.push(&[0, 1]).unwrap();
        b.push(&[1, 1]).unwrap();
        b.push(&[0, 0]).unwrap();
        b.build()
    }

    #[test]
    fn builder_validates() {
        let schema = SchemaBuilder::new().attribute("A", ["a0"]).build().unwrap();
        let mut b = DatasetBuilder::new(schema);
        assert!(matches!(
            b.push(&[0, 1]),
            Err(DataError::ArityMismatch { expected: 1, got: 2 })
        ));
        assert!(matches!(
            b.push(&[7]),
            Err(DataError::ValueOutOfDomain { .. })
        ));
        b.push(&[0]).unwrap();
        assert_eq!(b.build().num_records(), 1);
    }

    #[test]
    fn push_named_resolves_labels() {
        let schema = SchemaBuilder::new()
            .attribute("A", ["a0", "a1"])
            .attribute("B", ["b0"])
            .build()
            .unwrap();
        let mut b = DatasetBuilder::new(schema);
        b.push_named(&["a1", "b0"]).unwrap();
        assert!(matches!(
            b.push_named(&["zz", "b0"]),
            Err(DataError::UnknownValue { .. })
        ));
        let d = b.build();
        assert_eq!(d.value(0, AttributeId(0)), 1);
    }

    #[test]
    fn vertical_index_matches_scan_counts() {
        let d = small();
        let v = VerticalIndex::build(&d);
        let schema = d.schema();
        // Item A=a0 appears in records 0,1,3.
        let a0 = schema.encode_named("A", "a0").unwrap();
        assert_eq!(v.tids(a0).to_vec(), &[0, 1, 3]);
        // Itemset (A=a0, B=b0) in records 0 and 3.
        let iset = Itemset::from_items([a0, schema.encode_named("B", "b0").unwrap()]);
        assert_eq!(v.itemset_tids(&iset).to_vec(), &[0, 3]);
        assert_eq!(v.support(&iset), d.count_support(&iset));
        // Empty itemset supported by every record.
        assert_eq!(v.support(&Itemset::empty()), 4);
    }

    #[test]
    fn select_records_materializes_a_subset() {
        let d = small();
        let sub = d.select_records(&crate::tidset::Tidset::from_sorted(vec![1, 3]));
        assert_eq!(sub.num_records(), 2);
        assert_eq!(sub.record(0), d.record(1));
        assert_eq!(sub.record(1), d.record(3));
        assert!(Arc::ptr_eq(sub.schema(), d.schema()));
    }

    #[test]
    fn project_keeps_and_reorders_attributes() {
        let d = small();
        let b = d.schema().attribute_by_name("B").unwrap();
        let a = d.schema().attribute_by_name("A").unwrap();
        let p = d.project(&[b, a]).unwrap();
        assert_eq!(p.schema().num_attributes(), 2);
        assert_eq!(p.schema().attributes()[0].name(), "B");
        for tid in 0..d.num_records() as u32 {
            assert_eq!(p.value(tid, AttributeId(0)), d.value(tid, b));
            assert_eq!(p.value(tid, AttributeId(1)), d.value(tid, a));
        }
        assert!(d.project(&[AttributeId(9)]).is_err());
    }

    #[test]
    fn record_as_itemset_has_one_item_per_attribute() {
        let d = small();
        let i = d.record_as_itemset(2);
        assert_eq!(i.len(), 2);
        assert!(i.is_relational(d.schema()));
        assert!(d.record_supports(2, &i));
        assert!(!d.record_supports(0, &i));
    }
}
