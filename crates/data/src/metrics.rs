//! Execution-metrics value types shared by the mining operators.
//!
//! COLARM promises that everything a plan reports — rules, unit totals,
//! and now the per-operator counters here — is **bit-identical at every
//! thread count**. That rules out sampling or per-thread registries:
//! metrics are plain values produced alongside each unit of work and
//! folded **in input order** through [`crate::par::parallel_map_fold`],
//! exactly like the exact-integer `f64` unit sums of PR 1. Collection is
//! a handful of integer increments riding on operations (tidset
//! intersections, R-tree node visits, memo probes) that each cost orders
//! of magnitude more, so it is unconditionally on; whether the counters
//! are *reported* is the executor's choice.

use crate::tidset::{Tidset, TidsetKind};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counters of one operator execution (or one slice of it, before the
/// in-order fold). All fields are exact `u64` tallies, so sums are
/// associative and scheduling-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMetrics {
    /// Input elements examined (candidate itemsets, records, tree entries).
    pub scanned: u64,
    /// Output elements produced (surviving candidates, rules, columns).
    pub emitted: u64,
    /// Tidset intersections with two sparse operands (merge or gallop).
    pub isect_sparse: u64,
    /// Tidset intersections with two dense operands (word-AND + popcount).
    pub isect_dense: u64,
    /// Mixed sparse/dense intersections (bitmap probe per id).
    pub isect_mixed: u64,
    /// R-tree nodes visited by a range search.
    pub rtree_nodes: u64,
    /// Support-oracle lookups issued (memo hits included).
    pub support_lookups: u64,
    /// Work answered without touching records: support-oracle memo hits
    /// plus Lemma 4.5 contained candidates whose local count is free.
    pub cache_hits: u64,
}

impl OpMetrics {
    /// Total tidset intersections of any kind.
    pub fn intersections(&self) -> u64 {
        self.isect_sparse + self.isect_dense + self.isect_mixed
    }

    /// Record one intersection, classified by operand representation.
    #[inline]
    pub fn note_intersection(&mut self, a: &Tidset, b: &Tidset) {
        match (a.kind(), b.kind()) {
            (TidsetKind::Sparse, TidsetKind::Sparse) => self.isect_sparse += 1,
            (TidsetKind::Dense, TidsetKind::Dense) => self.isect_dense += 1,
            _ => self.isect_mixed += 1,
        }
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == OpMetrics::default()
    }

    /// Fold a sequence of counter blocks into one total — the batch-
    /// boundary fold of the plan engine. Fieldwise `u64` addition is
    /// associative, so any contiguous batching of the same per-item
    /// blocks folds to the same bits as one monolithic pass.
    pub fn fold<'a>(blocks: impl IntoIterator<Item = &'a OpMetrics>) -> OpMetrics {
        let mut total = OpMetrics::default();
        for b in blocks {
            total += *b;
        }
        total
    }
}

impl AddAssign for OpMetrics {
    fn add_assign(&mut self, rhs: OpMetrics) {
        self.scanned += rhs.scanned;
        self.emitted += rhs.emitted;
        self.isect_sparse += rhs.isect_sparse;
        self.isect_dense += rhs.isect_dense;
        self.isect_mixed += rhs.isect_mixed;
        self.rtree_nodes += rhs.rtree_nodes;
        self.support_lookups += rhs.support_lookups;
        self.cache_hits += rhs.cache_hits;
    }
}

impl Add for OpMetrics {
    type Output = OpMetrics;
    fn add(mut self, rhs: OpMetrics) -> OpMetrics {
        self += rhs;
        self
    }
}

/// The per-item charge an operator accumulates: raw cost units (the
/// quantity the cost formulae count — an exact integer-valued `f64`, so
/// in-order sums are bit-exact) plus the counter block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Meter {
    /// Raw cost units consumed.
    pub units: f64,
    /// Counters.
    pub metrics: OpMetrics,
}

impl Meter {
    /// A charge of `units` with no counters.
    pub fn units(units: f64) -> Meter {
        Meter {
            units,
            metrics: OpMetrics::default(),
        }
    }
}

impl AddAssign for Meter {
    fn add_assign(&mut self, rhs: Meter) {
        self.units += rhs.units;
        self.metrics += rhs.metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_are_fieldwise() {
        let a = OpMetrics {
            scanned: 1,
            emitted: 2,
            isect_sparse: 3,
            isect_dense: 4,
            isect_mixed: 5,
            rtree_nodes: 6,
            support_lookups: 7,
            cache_hits: 8,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.scanned, 2);
        assert_eq!(c.intersections(), 24);
        assert!(!c.is_zero());
        assert!(OpMetrics::default().is_zero());
    }

    #[test]
    fn intersections_classify_by_representation() {
        let sparse = Tidset::from_sorted(vec![1, 2, 3]);
        let dense = Tidset::full(1024);
        let mut m = OpMetrics::default();
        m.note_intersection(&sparse, &sparse);
        m.note_intersection(&dense, &dense);
        m.note_intersection(&sparse, &dense);
        m.note_intersection(&dense, &sparse);
        assert_eq!((m.isect_sparse, m.isect_dense, m.isect_mixed), (1, 1, 2));
    }

    #[test]
    fn meter_folds_units_and_metrics() {
        let mut acc = Meter::default();
        acc += Meter::units(3.0);
        acc += Meter {
            units: 4.0,
            metrics: OpMetrics {
                scanned: 2,
                ..OpMetrics::default()
            },
        };
        assert_eq!(acc.units, 7.0);
        assert_eq!(acc.metrics.scanned, 2);
    }

    #[test]
    fn serde_round_trips() {
        let m = OpMetrics {
            scanned: 10,
            cache_hits: 3,
            ..OpMetrics::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: OpMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
