//! Execution-metrics value types shared by the mining operators.
//!
//! COLARM promises that everything a plan reports — rules, unit totals,
//! and now the per-operator counters here — is **bit-identical at every
//! thread count**. That rules out sampling or per-thread registries:
//! metrics are plain values produced alongside each unit of work and
//! folded **in input order** through [`crate::par::parallel_map_fold`],
//! exactly like the exact-integer `f64` unit sums of PR 1. Collection is
//! a handful of integer increments riding on operations (tidset
//! intersections, R-tree node visits, memo probes) that each cost orders
//! of magnitude more, so it is unconditionally on; whether the counters
//! are *reported* is the executor's choice.

use crate::tidset::{ContainerKind, Tidset};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counters of one operator execution (or one slice of it, before the
/// in-order fold). All fields are exact `u64` tallies, so sums are
/// associative and scheduling-independent.
///
/// Intersections are attributed at *chunk-kernel* granularity: one
/// whole-set intersection over chunked operands counts one tick per
/// chunk-level kernel it dispatches (see
/// [`Tidset::for_each_kernel_pair`]), classified by the unordered
/// container-kind pair. A set-level intersection where the operands share
/// no chunk keys therefore contributes zero kernel ticks — the kernel
/// never ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMetrics {
    /// Input elements examined (candidate itemsets, records, tree entries).
    pub scanned: u64,
    /// Output elements produced (surviving candidates, rules, columns).
    pub emitted: u64,
    /// Chunk kernels over two sorted-u16 array containers (merge/gallop).
    pub isect_array_array: u64,
    /// Chunk kernels pairing an array with a bitmap (per-id bit probe).
    pub isect_array_bitmap: u64,
    /// Chunk kernels pairing an array with a run list (interval probe).
    pub isect_array_runs: u64,
    /// Chunk kernels over two bitmaps (word-AND + popcount).
    pub isect_bitmap_bitmap: u64,
    /// Chunk kernels pairing a bitmap with a run list (masked words).
    pub isect_bitmap_runs: u64,
    /// Chunk kernels over two run lists (interval intersection).
    pub isect_runs_runs: u64,
    /// R-tree nodes visited by a range search.
    pub rtree_nodes: u64,
    /// Support-oracle lookups issued (memo hits included).
    pub support_lookups: u64,
    /// Work answered without touching records: support-oracle memo hits
    /// plus Lemma 4.5 contained candidates whose local count is free.
    pub cache_hits: u64,
}

impl OpMetrics {
    /// Total chunk-level intersection kernels of any container pairing.
    pub fn intersections(&self) -> u64 {
        self.isect_array_array
            + self.isect_array_bitmap
            + self.isect_array_runs
            + self.isect_bitmap_bitmap
            + self.isect_bitmap_runs
            + self.isect_runs_runs
    }

    /// Record one set-level intersection as the chunk kernels it
    /// dispatches, each classified by its unordered container-kind pair.
    #[inline]
    pub fn note_intersection(&mut self, a: &Tidset, b: &Tidset) {
        a.for_each_kernel_pair(b, |x, y| {
            use ContainerKind::{Array, Bitmap, Runs};
            let slot = match (x, y) {
                (Array, Array) => &mut self.isect_array_array,
                (Array, Bitmap) | (Bitmap, Array) => &mut self.isect_array_bitmap,
                (Array, Runs) | (Runs, Array) => &mut self.isect_array_runs,
                (Bitmap, Bitmap) => &mut self.isect_bitmap_bitmap,
                (Bitmap, Runs) | (Runs, Bitmap) => &mut self.isect_bitmap_runs,
                (Runs, Runs) => &mut self.isect_runs_runs,
            };
            *slot += 1;
        });
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == OpMetrics::default()
    }

    /// Fold a sequence of counter blocks into one total — the batch-
    /// boundary fold of the plan engine. Fieldwise `u64` addition is
    /// associative, so any contiguous batching of the same per-item
    /// blocks folds to the same bits as one monolithic pass.
    pub fn fold<'a>(blocks: impl IntoIterator<Item = &'a OpMetrics>) -> OpMetrics {
        let mut total = OpMetrics::default();
        for b in blocks {
            total += *b;
        }
        total
    }
}

impl AddAssign for OpMetrics {
    fn add_assign(&mut self, rhs: OpMetrics) {
        self.scanned += rhs.scanned;
        self.emitted += rhs.emitted;
        self.isect_array_array += rhs.isect_array_array;
        self.isect_array_bitmap += rhs.isect_array_bitmap;
        self.isect_array_runs += rhs.isect_array_runs;
        self.isect_bitmap_bitmap += rhs.isect_bitmap_bitmap;
        self.isect_bitmap_runs += rhs.isect_bitmap_runs;
        self.isect_runs_runs += rhs.isect_runs_runs;
        self.rtree_nodes += rhs.rtree_nodes;
        self.support_lookups += rhs.support_lookups;
        self.cache_hits += rhs.cache_hits;
    }
}

impl Add for OpMetrics {
    type Output = OpMetrics;
    fn add(mut self, rhs: OpMetrics) -> OpMetrics {
        self += rhs;
        self
    }
}

/// The per-item charge an operator accumulates: raw cost units (the
/// quantity the cost formulae count — an exact integer-valued `f64`, so
/// in-order sums are bit-exact) plus the counter block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Meter {
    /// Raw cost units consumed.
    pub units: f64,
    /// Counters.
    pub metrics: OpMetrics,
}

impl Meter {
    /// A charge of `units` with no counters.
    pub fn units(units: f64) -> Meter {
        Meter {
            units,
            metrics: OpMetrics::default(),
        }
    }
}

impl AddAssign for Meter {
    fn add_assign(&mut self, rhs: Meter) {
        self.units += rhs.units;
        self.metrics += rhs.metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_are_fieldwise() {
        let a = OpMetrics {
            scanned: 1,
            emitted: 2,
            isect_array_array: 3,
            isect_array_bitmap: 4,
            isect_array_runs: 5,
            isect_bitmap_bitmap: 6,
            isect_bitmap_runs: 7,
            isect_runs_runs: 8,
            rtree_nodes: 9,
            support_lookups: 10,
            cache_hits: 11,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.scanned, 2);
        assert_eq!(c.intersections(), 66);
        assert!(!c.is_zero());
        assert!(OpMetrics::default().is_zero());
    }

    #[test]
    fn intersections_classify_by_container_pair() {
        // Scattered low ids: a single array chunk. Dense even ids over
        // 0..20000: a bitmap chunk. 0..=1023 contiguous: a run chunk.
        let array = Tidset::from_sorted(vec![1, 5, 9]);
        let bitmap = Tidset::from_sorted((0..20_000).step_by(2).collect());
        let runs = Tidset::full(1024);
        assert_eq!(array.kind(), crate::tidset::TidsetKind::Array);
        assert_eq!(bitmap.kind(), crate::tidset::TidsetKind::Bitmap);
        assert_eq!(runs.kind(), crate::tidset::TidsetKind::Runs);

        let mut m = OpMetrics::default();
        m.note_intersection(&array, &array);
        m.note_intersection(&bitmap, &bitmap);
        m.note_intersection(&runs, &runs);
        m.note_intersection(&array, &bitmap);
        m.note_intersection(&bitmap, &array); // unordered: same counter
        m.note_intersection(&array, &runs);
        m.note_intersection(&runs, &bitmap);
        assert_eq!(
            (
                m.isect_array_array,
                m.isect_array_bitmap,
                m.isect_array_runs,
                m.isect_bitmap_bitmap,
                m.isect_bitmap_runs,
                m.isect_runs_runs,
            ),
            (1, 2, 1, 1, 1, 1)
        );
        assert_eq!(m.intersections(), 7);
    }

    #[test]
    fn disjoint_chunk_keys_dispatch_no_kernels() {
        // Operands living in different 64k chunks never reach a chunk
        // kernel, so nothing is counted.
        let lo = Tidset::from_sorted(vec![1, 2, 3]);
        let hi = Tidset::from_sorted(vec![1 << 16, (1 << 16) + 1]);
        let mut m = OpMetrics::default();
        m.note_intersection(&lo, &hi);
        assert_eq!(m.intersections(), 0);
    }

    #[test]
    fn multi_chunk_operands_count_per_chunk_kernel() {
        // Two chunks in common: chunk 0 is bitmap x bitmap, chunk 1 is
        // array x array — one tick each from a single set intersection.
        let a = Tidset::from_unsorted((0..40_000u32).step_by(2).chain([70_000, 70_004]));
        let b = Tidset::from_unsorted((0..40_000u32).step_by(4).chain([70_000, 70_008]));
        let mut m = OpMetrics::default();
        m.note_intersection(&a, &b);
        assert_eq!((m.isect_bitmap_bitmap, m.isect_array_array), (1, 1));
        assert_eq!(m.intersections(), 2);
    }

    #[test]
    fn meter_folds_units_and_metrics() {
        let mut acc = Meter::default();
        acc += Meter::units(3.0);
        acc += Meter {
            units: 4.0,
            metrics: OpMetrics {
                scanned: 2,
                ..OpMetrics::default()
            },
        };
        assert_eq!(acc.units, 7.0);
        assert_eq!(acc.metrics.scanned, 2);
    }

    #[test]
    fn serde_round_trips() {
        let m = OpMetrics {
            scanned: 10,
            cache_hits: 3,
            ..OpMetrics::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: OpMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
