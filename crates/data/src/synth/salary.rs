//! The example salary dataset of paper Table 1, verbatim.
//!
//! Eleven anonymized IT-employee records over six attributes. This dataset
//! drives the paper's §1.1 walkthrough: the global rule
//! `RG = (Age=20-30 → Salary=90K-120K)` holds with 45 % support and 83 %
//! confidence, while the localized query "female employees in Seattle"
//! surfaces `RL = (Age=30-40 → Salary=90K-120K)` at 75 % support and 100 %
//! confidence — a rule hidden in the global context (Simpson's paradox).

use crate::dataset::{Dataset, DatasetBuilder};
use crate::schema::{Schema, SchemaBuilder};
use std::sync::Arc;

/// Schema of the salary dataset (Table 1's six columns).
pub fn salary_schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .attribute("Company", ["IBM", "Google", "Microsoft", "Facebook"])
        .attribute(
            "Title",
            [
                "QA Lead", "Sw Engg", "Engg Mgr", "Tech Arch", "QA Mgr", "QA Engg",
            ],
        )
        .attribute("Location", ["Boston", "SFO", "Seattle"])
        .attribute("Gender", ["M", "F"])
        .attribute("Age", ["20-30", "30-40", "40-50"])
        .attribute(
            "Salary",
            ["30K-60K", "60K-90K", "90K-120K", "120K-150K"],
        )
        .build()
        .expect("static schema is valid")
}

/// The eleven records of paper Table 1, in order.
pub fn salary() -> Dataset {
    let mut b = DatasetBuilder::new(salary_schema());
    let rows: [[&str; 6]; 11] = [
        ["IBM", "QA Lead", "Boston", "M", "30-40", "60K-90K"],
        ["IBM", "Sw Engg", "Boston", "F", "20-30", "90K-120K"],
        ["IBM", "Engg Mgr", "SFO", "M", "20-30", "90K-120K"],
        ["Google", "Sw Engg", "SFO", "F", "20-30", "90K-120K"],
        ["Google", "Sw Engg", "Boston", "F", "20-30", "90K-120K"],
        ["Google", "Sw Engg", "Boston", "M", "20-30", "90K-120K"],
        ["Google", "Tech Arch", "Boston", "M", "40-50", "120K-150K"],
        ["Microsoft", "Engg Mgr", "Seattle", "F", "30-40", "90K-120K"],
        ["Microsoft", "Sw Engg", "Seattle", "F", "30-40", "90K-120K"],
        ["Facebook", "QA Mgr", "Seattle", "F", "30-40", "90K-120K"],
        ["Facebook", "QA Engg", "Seattle", "F", "20-30", "30K-60K"],
    ];
    for row in rows {
        b.push_named(&row).expect("static data matches schema");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::VerticalIndex;
    use crate::itemset::Itemset;

    #[test]
    fn eleven_records_six_attributes() {
        let d = salary();
        assert_eq!(d.num_records(), 11);
        assert_eq!(d.schema().num_attributes(), 6);
    }

    #[test]
    fn global_rule_rg_numbers_match_paper() {
        // RG = (A0 → S2): support 5/11 ≈ 45 %, confidence 5/6 ≈ 83 %.
        let d = salary();
        let v = VerticalIndex::build(&d);
        let s = d.schema();
        let a0 = s.encode_named("Age", "20-30").unwrap();
        let s2 = s.encode_named("Salary", "90K-120K").unwrap();
        let body = Itemset::from_items([a0, s2]);
        assert_eq!(v.support(&body), 5);
        assert_eq!(v.support(&Itemset::singleton(a0)), 6);
    }

    #[test]
    fn local_rule_rl_numbers_match_paper() {
        // In the Seattle-female subset (last four records): RL = (A1 → S2)
        // with support 3/4 = 75 % and confidence 3/3 = 100 %.
        let d = salary();
        let v = VerticalIndex::build(&d);
        let s = d.schema();
        let spec = crate::subset::RangeSpec::all()
            .with_named(s, "Location", &["Seattle"])
            .unwrap()
            .with_named(s, "Gender", &["F"])
            .unwrap();
        let fs = crate::subset::FocalSubset::resolve(spec, &d, &v).unwrap();
        assert_eq!(fs.tids().to_vec(), &[7, 8, 9, 10]);
        let a1 = s.encode_named("Age", "30-40").unwrap();
        let s2 = s.encode_named("Salary", "90K-120K").unwrap();
        let body = Itemset::from_items([a1, s2]);
        let local_body = v.itemset_tids(&body).intersect_count(fs.tids());
        let local_ante = v
            .itemset_tids(&Itemset::singleton(a1))
            .intersect_count(fs.tids());
        assert_eq!(local_body, 3);
        assert_eq!(local_ante, 3);
        // And the global rule RG does NOT hold in this subset (1/4 support).
        let a0 = s.encode_named("Age", "20-30").unwrap();
        let rg_body = Itemset::from_items([a0, s2]);
        assert_eq!(v.itemset_tids(&rg_body).intersect_count(fs.tids()), 0);
    }
}
