//! Dataset generators: the paper's Table 1 salary example plus seeded
//! synthetic analogs of the UCI chess / mushroom / PUMSB benchmarks.
//!
//! The machine this reproduction runs on is offline, so the UCI files
//! themselves are unavailable. The experiments, however, depend only on
//! *structural* dataset properties — record/attribute/item counts, value
//! skew (density) and correlation structure — which the [`generator`]
//! module reproduces with a seeded latent-cluster + pattern-template model.
//! See DESIGN.md ("Substitutions") for the full rationale.

pub mod generator;
mod salary;

pub use generator::{SynthConfig, generate};
pub use salary::{salary, salary_schema};

use crate::dataset::Dataset;

/// Analog of UCI **chess** (kr-vs-kp): 3 196 records, 37 attributes,
/// 76 distinct items, very dense (the paper uses primary support 60 % and
/// minsupp 80–90 %). One latent regime, heavily top-weighted binary
/// attributes, a handful of strong templates.
pub fn chess_like() -> Dataset {
    generate(&chess_config())
}

/// Configuration behind [`chess_like`] (exposed for scaled experiments).
pub fn chess_config() -> SynthConfig {
    SynthConfig {
        name: "chess-analog".into(),
        seed: 0xC4E55,
        records: 3196,
        // 35 binary attributes + 2 ternary = 76 items, matching UCI chess.
        domains: std::iter::repeat_n(2, 35).chain([3, 3]).collect(),
        top_mass: 0.86,
        skew: 1.0,
        clusters: 1,
        cluster_focus: 0.35,
        focus_strength: 0.88,
        templates: 6,
        template_len: 4,
        template_prob: 0.35,
    }
}

/// Analog of UCI **mushroom**: 8 124 records, 23 attributes, ~120 items,
/// bi-modal closed-itemset structure (the paper uses primary support 5 %
/// and minsupp 70–80 %). Two strong latent clusters (edible / poisonous).
pub fn mushroom_like() -> Dataset {
    generate(&mushroom_config())
}

/// Configuration behind [`mushroom_like`].
pub fn mushroom_config() -> SynthConfig {
    SynthConfig {
        name: "mushroom-analog".into(),
        seed: 0x3057,
        records: 8124,
        // 23 attributes totalling 120 items, like UCI mushroom.
        domains: vec![
            2, 6, 4, 10, 2, 9, 2, 2, 2, 12, 2, 4, 4, 4, 9, 9, 2, 4, 3, 5, 9, 6, 8,
        ],
        top_mass: 0.55,
        skew: 1.2,
        clusters: 2,
        cluster_focus: 0.55,
        focus_strength: 0.9,
        templates: 8,
        template_len: 4,
        template_prob: 0.25,
    }
}

/// Analog of UCI **PUMSB** (census): extremely dense, the paper's largest
/// dataset (49 046 records, 7 117 items; primary support 80 %, minsupp
/// 85–91 %). The default is generated at reduced scale (`scale = 4`) so
/// the full figure sweeps finish in CI time; `pumsb_like_scaled(1)`
/// regenerates at paper scale.
pub fn pumsb_like() -> Dataset {
    pumsb_like_scaled(4)
}

/// PUMSB analog with an explicit down-scale factor (1 = paper scale).
pub fn pumsb_like_scaled(scale: u32) -> Dataset {
    generate(&pumsb_config(scale))
}

/// Configuration behind [`pumsb_like_scaled`].
pub fn pumsb_config(scale: u32) -> SynthConfig {
    let scale = scale.max(1);
    // 74 attributes; at scale 1 domains total ≈ 7100 items. Domain sizes are
    // skewed like census data: many small categorical attributes plus a few
    // enormous coded ones.
    let mut domains = Vec::with_capacity(74);
    for i in 0..74usize {
        let full = match i % 10 {
            0 => 800,
            1 => 400,
            2 => 120,
            3..=5 => 40,
            _ => 8,
        };
        domains.push(((full / scale as usize).max(2)).min(u16::MAX as usize));
    }
    SynthConfig {
        name: format!("pumsb-analog-x{scale}"),
        seed: 0x9053B,
        records: (49046 / scale) as usize,
        domains,
        top_mass: 0.93,
        skew: 1.3,
        clusters: 3,
        cluster_focus: 0.18,
        focus_strength: 0.92,
        templates: 10,
        template_len: 4,
        template_prob: 0.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chess_analog_matches_uci_shape() {
        let d = chess_like();
        assert_eq!(d.num_records(), 3196);
        assert_eq!(d.schema().num_attributes(), 37);
        assert_eq!(d.schema().num_items(), 76);
    }

    #[test]
    fn mushroom_analog_matches_uci_shape() {
        let d = mushroom_like();
        assert_eq!(d.num_records(), 8124);
        assert_eq!(d.schema().num_attributes(), 23);
        assert_eq!(d.schema().num_items(), 120);
    }

    #[test]
    fn pumsb_analog_scales() {
        let d = pumsb_like_scaled(16);
        assert_eq!(d.num_records(), 49046 / 16);
        assert_eq!(d.schema().num_attributes(), 74);
        assert!(d.schema().num_items() > 300);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = chess_like();
        let b = chess_like();
        for tid in [0u32, 17, 3195] {
            assert_eq!(a.record(tid), b.record(tid));
        }
    }

    #[test]
    fn chess_analog_is_dense() {
        // The whole point of the chess analog: single items must routinely
        // exceed the 60 % primary threshold the paper uses.
        let d = chess_like();
        let v = crate::dataset::VerticalIndex::build(&d);
        let m = d.num_records() as f64;
        let dense_items = (0..d.schema().num_items() as u32)
            .filter(|&i| v.tids(crate::attribute::ItemId(i)).len() as f64 / m >= 0.6)
            .count();
        assert!(
            dense_items >= 20,
            "expected ≥20 items above 60% support, got {dense_items}"
        );
    }
}
