//! Seeded latent-cluster + pattern-template dataset generator.
//!
//! The model, per record:
//!
//! 1. Draw a latent **cluster**. Each cluster *focuses* a random subset of
//!    attributes on a preferred value; a record in the cluster takes the
//!    preferred value with probability `focus_strength`. Clusters create the
//!    regime structure behind Simpson's paradox — different subsets of the
//!    data genuinely obey different rules — and, with more than one cluster,
//!    multi-modal closed-itemset length distributions (mushroom).
//! 2. For every unfocused attribute, draw a value from a **top-heavy**
//!    distribution: probability `top_mass` for the attribute's first value,
//!    the remainder Zipf(`skew`)-distributed over the rest. `top_mass`
//!    controls density — how quickly closed-itemset counts explode as the
//!    primary threshold drops (paper Figure 8).
//! 3. With probability `template_prob`, overlay one of a fixed pool of
//!    **templates** (random partial assignments), creating the correlated
//!    itemsets the MIP-index prestores.
//!
//! Everything is driven by a single seed, so datasets are bit-reproducible
//! across runs and platforms (rand's `StdRng` is a portable PRNG).

use crate::attribute::ValueId;
use crate::dataset::{Dataset, DatasetBuilder};
use crate::schema::{Schema, SchemaBuilder};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the synthetic relational dataset generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset name; attribute `i` is named `"{name[0..2]}{i}"`-style.
    pub name: String,
    /// PRNG seed — generation is fully deterministic given the config.
    pub seed: u64,
    /// Number of records to generate.
    pub records: usize,
    /// Domain size of each attribute (defines the schema).
    pub domains: Vec<usize>,
    /// Probability mass of each attribute's first (modal) value.
    pub top_mass: f64,
    /// Zipf exponent spreading the remaining mass over the other values.
    pub skew: f64,
    /// Number of latent clusters (≥ 1).
    pub clusters: usize,
    /// Probability that a cluster focuses any given attribute.
    pub cluster_focus: f64,
    /// Probability that a focused attribute takes its preferred value.
    pub focus_strength: f64,
    /// Number of pattern templates in the pool.
    pub templates: usize,
    /// Items per template.
    pub template_len: usize,
    /// Probability that a record gets one template overlaid.
    pub template_prob: f64,
}

impl SynthConfig {
    fn build_schema(&self) -> std::sync::Arc<Schema> {
        let mut builder = SchemaBuilder::new();
        for (i, &d) in self.domains.iter().enumerate() {
            let values: Vec<String> = (0..d).map(|v| format!("v{v}")).collect();
            builder = builder.attribute(format!("a{i}"), values);
        }
        builder.build().expect("generated names are unique")
    }
}

/// One latent cluster: preferred values for its focused attributes.
struct Cluster {
    /// `preferred[a] = Some(v)` when attribute `a` is focused on value `v`.
    preferred: Vec<Option<ValueId>>,
}

/// Cumulative distribution over one attribute's domain.
struct ValueDist {
    cumulative: Vec<f64>,
}

impl ValueDist {
    fn new(domain: usize, top_mass: f64, skew: f64) -> Self {
        let mut weights = Vec::with_capacity(domain);
        if domain == 1 {
            weights.push(1.0);
        } else {
            weights.push(top_mass);
            let rest: Vec<f64> = (1..domain).map(|v| 1.0 / (v as f64).powf(skew)).collect();
            let rest_total: f64 = rest.iter().sum();
            let scale = (1.0 - top_mass) / rest_total;
            weights.extend(rest.iter().map(|w| w * scale));
        }
        let mut cumulative = Vec::with_capacity(domain);
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall on the last bucket.
        *cumulative.last_mut().expect("domain ≥ 1") = f64::INFINITY;
        ValueDist { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> ValueId {
        let x: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < x) as ValueId
    }
}

/// Generate a dataset from `config`. Deterministic in the config.
pub fn generate(config: &SynthConfig) -> Dataset {
    assert!(!config.domains.is_empty(), "at least one attribute");
    assert!(config.clusters >= 1, "at least one cluster");
    assert!(
        config.domains.iter().all(|&d| (1..=u16::MAX as usize).contains(&d)),
        "domain sizes must fit value codes"
    );
    let schema = config.build_schema();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_attrs = config.domains.len();

    let dists: Vec<ValueDist> = config
        .domains
        .iter()
        .map(|&d| ValueDist::new(d, config.top_mass.clamp(0.0, 1.0), config.skew))
        .collect();

    let clusters: Vec<Cluster> = (0..config.clusters)
        .map(|_| Cluster {
            preferred: config
                .domains
                .iter()
                .map(|&d| {
                    if rng.gen::<f64>() < config.cluster_focus {
                        Some(rng.gen_range(0..d) as ValueId)
                    } else {
                        None
                    }
                })
                .collect(),
        })
        .collect();

    // Templates: partial assignments of `template_len` random attributes.
    let templates: Vec<Vec<(usize, ValueId)>> = (0..config.templates)
        .map(|_| {
            let mut attrs: Vec<usize> = (0..n_attrs).collect();
            attrs.shuffle(&mut rng);
            attrs
                .into_iter()
                .take(config.template_len.min(n_attrs))
                .map(|a| (a, rng.gen_range(0..config.domains[a]) as ValueId))
                .collect()
        })
        .collect();

    let mut builder = DatasetBuilder::new(schema);
    let mut record = vec![0 as ValueId; n_attrs];
    for _ in 0..config.records {
        let cluster = &clusters[rng.gen_range(0..clusters.len())];
        for a in 0..n_attrs {
            record[a] = match cluster.preferred[a] {
                Some(p) if rng.gen::<f64>() < config.focus_strength => p,
                _ => dists[a].sample(&mut rng),
            };
        }
        if !templates.is_empty() && rng.gen::<f64>() < config.template_prob {
            for &(a, v) in &templates[rng.gen_range(0..templates.len())] {
                record[a] = v;
            }
        }
        builder.push(&record).expect("generated values are in domain");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::ItemId;
    use crate::dataset::VerticalIndex;

    fn tiny_config() -> SynthConfig {
        SynthConfig {
            name: "tiny".into(),
            seed: 42,
            records: 500,
            domains: vec![2, 3, 4],
            top_mass: 0.7,
            skew: 1.0,
            clusters: 2,
            cluster_focus: 0.5,
            focus_strength: 0.9,
            templates: 2,
            template_len: 2,
            template_prob: 0.2,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&tiny_config());
        let b = generate(&tiny_config());
        for tid in 0..a.num_records() as u32 {
            assert_eq!(a.record(tid), b.record(tid));
        }
    }

    #[test]
    fn different_seed_different_data() {
        let a = generate(&tiny_config());
        let mut cfg = tiny_config();
        cfg.seed = 43;
        let b = generate(&cfg);
        let same = (0..a.num_records() as u32).filter(|&t| a.record(t) == b.record(t)).count();
        assert!(same < a.num_records(), "seeds should change the data");
    }

    #[test]
    fn top_mass_controls_density() {
        let mut dense = tiny_config();
        dense.top_mass = 0.95;
        dense.clusters = 1;
        dense.cluster_focus = 0.0;
        dense.template_prob = 0.0;
        let d = generate(&dense);
        let v = VerticalIndex::build(&d);
        // First value of attribute 0 is item 0 and should dominate.
        let share = v.tids(ItemId(0)).len() as f64 / d.num_records() as f64;
        assert!(share > 0.85, "modal value share {share} too low");
    }

    #[test]
    fn every_tid_appears_exactly_once_per_attribute() {
        let d = generate(&tiny_config());
        let v = VerticalIndex::build(&d);
        let schema = d.schema();
        for (aid, dom) in schema.dimensions() {
            let total: usize = (0..dom as u16)
                .map(|val| v.tids(schema.encode(aid, val)).len())
                .sum();
            assert_eq!(total, d.num_records());
        }
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn rejects_empty_schema() {
        let mut cfg = tiny_config();
        cfg.domains.clear();
        generate(&cfg);
    }
}
