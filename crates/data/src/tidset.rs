//! Sorted transaction-id lists with merge / galloping set algebra.
//!
//! Every support computation in COLARM is a tidset operation: the global
//! support of an itemset is the length of the intersection of its items'
//! tid-lists, and the *local* support w.r.t. a focal subset `DQ` is
//! `|tids(I) ∩ tids(DQ)|` (paper §2.2). Tidsets are stored as sorted,
//! deduplicated `u32` vectors; intersections switch from linear merging to
//! galloping (exponential) search when the operand sizes are lopsided,
//! which is the common case when intersecting a large itemset tid-list with
//! a small focal subset.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How lopsided two tidsets must be before intersection switches from a
/// linear merge to a gallop over the larger side.
const GALLOP_RATIO: usize = 16;

/// A sorted, deduplicated set of transaction (record) ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tidset(Vec<u32>);

impl Tidset {
    /// The empty tidset.
    pub fn new() -> Self {
        Tidset(Vec::new())
    }

    /// Tidset of the full universe `0..n`.
    pub fn full(n: u32) -> Self {
        Tidset((0..n).collect())
    }

    /// Build from a vector that is already sorted and deduplicated.
    ///
    /// Sortedness is checked with a debug assertion only; callers on hot
    /// paths (the vertical index, CHARM) construct tidsets in order.
    pub fn from_sorted(v: Vec<u32>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "tidset must be strictly sorted");
        Tidset(v)
    }

    /// Build from an arbitrary iterator (sorts and deduplicates).
    pub fn from_unsorted(it: impl IntoIterator<Item = u32>) -> Self {
        let mut v: Vec<u32> = it.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Tidset(v)
    }

    /// Number of tids — i.e. the absolute support count.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no tids are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, tid: u32) -> bool {
        self.0.binary_search(&tid).is_ok()
    }

    /// Borrow the underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Iterate tids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }

    /// Append a tid that is strictly greater than every present tid.
    ///
    /// # Panics
    /// Panics in debug builds if `tid` is not strictly greater.
    pub fn push_monotonic(&mut self, tid: u32) {
        debug_assert!(self.0.last().is_none_or(|&last| last < tid));
        self.0.push(tid);
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Tidset) -> Tidset {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return Tidset::new();
        }
        let mut out = Vec::with_capacity(small.len());
        if large.len() / small.len().max(1) >= GALLOP_RATIO {
            // Gallop each element of the small side through the large side.
            let mut base = 0usize;
            for &t in &small.0 {
                match gallop(&large.0[base..], t) {
                    Ok(off) => {
                        out.push(t);
                        base += off + 1;
                    }
                    Err(off) => base += off,
                }
                if base >= large.0.len() {
                    break;
                }
            }
        } else {
            let (mut i, mut j) = (0usize, 0usize);
            while i < small.0.len() && j < large.0.len() {
                match small.0[i].cmp(&large.0[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(small.0[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        Tidset(out)
    }

    /// `|self ∩ other|` without materializing the intersection — the
    /// record-level support check of the ELIMINATE operator.
    pub fn intersect_count(&self, other: &Tidset) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return 0;
        }
        let mut count = 0usize;
        if large.len() / small.len().max(1) >= GALLOP_RATIO {
            let mut base = 0usize;
            for &t in &small.0 {
                match gallop(&large.0[base..], t) {
                    Ok(off) => {
                        count += 1;
                        base += off + 1;
                    }
                    Err(off) => base += off,
                }
                if base >= large.0.len() {
                    break;
                }
            }
        } else {
            let (mut i, mut j) = (0usize, 0usize);
            while i < small.0.len() && j < large.0.len() {
                match small.0[i].cmp(&large.0[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        count
    }

    /// Set union.
    pub fn union(&self, other: &Tidset) -> Tidset {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Tidset(out)
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &Tidset) -> Tidset {
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        Tidset(out)
    }

    /// True when `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Tidset) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.intersect_count(other) == self.len()
    }
}

impl FromIterator<u32> for Tidset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Tidset::from_unsorted(iter)
    }
}

impl fmt::Display for Tidset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Binary-search `slice` for `x` with an exponential (galloping) prefix
/// probe; returns `Ok(pos)` / `Err(insertion_pos)` like `binary_search`.
fn gallop(slice: &[u32], x: u32) -> Result<usize, usize> {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi] < x {
        hi <<= 1;
    }
    let lo = hi >> 1;
    // `slice[lo] < x` (for lo > 0) and either `hi ≥ len` or `slice[hi] ≥ x`,
    // so the first candidate position is in `[lo, hi]` — inclusive of `hi`.
    let hi = (hi + 1).min(slice.len());
    slice[lo..hi].binary_search(&x).map(|p| p + lo).map_err(|p| p + lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn ts(v: &[u32]) -> Tidset {
        Tidset::from_unsorted(v.iter().copied())
    }

    #[test]
    fn basic_ops() {
        let a = ts(&[1, 3, 5, 7, 9]);
        let b = ts(&[3, 4, 5, 6]);
        assert_eq!(a.intersect(&b), ts(&[3, 5]));
        assert_eq!(a.intersect_count(&b), 2);
        assert_eq!(a.union(&b), ts(&[1, 3, 4, 5, 6, 7, 9]));
        assert_eq!(a.minus(&b), ts(&[1, 7, 9]));
        assert!(ts(&[3, 5]).is_subset_of(&a));
        assert!(!ts(&[3, 4]).is_subset_of(&a));
        assert!(a.contains(7));
        assert!(!a.contains(8));
    }

    #[test]
    fn empty_and_full() {
        let e = Tidset::new();
        let f = Tidset::full(4);
        assert!(e.is_empty());
        assert_eq!(f.len(), 4);
        assert_eq!(e.intersect(&f), e);
        assert_eq!(e.union(&f), f);
        assert_eq!(f.minus(&e), f);
        assert!(e.is_subset_of(&f));
    }

    #[test]
    fn galloping_path_matches_merge_path() {
        // Small ∩ huge exercises the galloping branch.
        let small = ts(&[0, 999, 5000, 123456, 999999]);
        let large = Tidset::from_sorted((0..1_000_000).step_by(3).collect());
        let expected: Vec<u32> = small.iter().filter(|t| t % 3 == 0).collect();
        assert_eq!(small.intersect(&large).as_slice(), expected.as_slice());
        assert_eq!(small.intersect_count(&large), expected.len());
        assert_eq!(large.intersect_count(&small), expected.len());
    }

    #[test]
    fn push_monotonic_builds_sorted() {
        let mut t = Tidset::new();
        t.push_monotonic(2);
        t.push_monotonic(7);
        assert_eq!(t.as_slice(), &[2, 7]);
    }

    #[test]
    #[should_panic]
    fn push_monotonic_rejects_regression() {
        let mut t = Tidset::new();
        t.push_monotonic(7);
        t.push_monotonic(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ts(&[2, 5]).to_string(), "{2,5}");
        assert_eq!(Tidset::new().to_string(), "{}");
    }

    #[test]
    fn gallop_finds_exact_probe_boundaries() {
        // Regression: a match sitting exactly at the galloping probe index
        // (a power of two) used to be excluded from the binary-search
        // range, silently undercounting intersections.
        let large = Tidset::from_sorted((0..512).collect());
        for probe in [0u32, 1, 2, 4, 8, 16, 64, 256, 511] {
            let small = Tidset::from_sorted(vec![probe]);
            assert_eq!(small.intersect_count(&large), 1, "probe {probe}");
            assert!(small.is_subset_of(&large), "probe {probe}");
        }
    }

    proptest::proptest! {
        #[test]
        fn skewed_ops_match_btreeset_reference(
            a in proptest::collection::vec(0u32..4096, 0..6),
            b in proptest::collection::vec(0u32..4096, 200..400),
        ) {
            // Heavily lopsided sizes force the galloping path.
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(a);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            let got = ta.intersect(&tb);
            proptest::prop_assert_eq!(got.as_slice(), inter.as_slice());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(tb.intersect_count(&ta), inter.len());
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }

        #[test]
        fn ops_match_btreeset_reference(a in proptest::collection::vec(0u32..512, 0..80),
                                        b in proptest::collection::vec(0u32..512, 0..80)) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(a);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            let uni: Vec<u32> = sa.union(&sb).copied().collect();
            let diff: Vec<u32> = sa.difference(&sb).copied().collect();
            let (got_i, got_u, got_d) = (ta.intersect(&tb), ta.union(&tb), ta.minus(&tb));
            proptest::prop_assert_eq!(got_i.as_slice(), inter.as_slice());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(got_u.as_slice(), uni.as_slice());
            proptest::prop_assert_eq!(got_d.as_slice(), diff.as_slice());
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }
    }
}
